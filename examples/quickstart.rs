//! Quickstart: the paper’s running example (Figure 1) end to end.
//!
//! Sixteen students from two Portuguese schools are ranked by grade (ties
//! broken by past failures). We detect every most general group that is
//! under-represented in the top-k for k ∈ {4, 5}, under both fairness
//! measures, and print the enriched report.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use rankfair::core::render_report;
use rankfair::prelude::*;

fn main() {
    let ds = rankfair::data::examples::students_fig1();
    println!(
        "Dataset: {} students, {} attributes",
        ds.n_rows(),
        ds.n_cols()
    );
    for row in 0..3 {
        println!("  tuple {}: {}", row + 1, ds.display_row(row));
    }
    println!("  ...\n");

    // The ranker of Example 2.1: grade descending, failures ascending.
    let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
    let audit = Audit::builder(Arc::new(ds))
        .ranker(&ranker)
        .build()
        .unwrap();
    println!(
        "Ranking by `{}`; top-5: tuples {:?}\n",
        ranker.name(),
        audit
            .ranking()
            .top_k(5)
            .iter()
            .map(|&r| r + 1)
            .collect::<Vec<_>>()
    );

    // Problem 3.1 — global bounds (Example 4.6): τs = 4, k ∈ [4,5], L = 2.
    let cfg = DetectConfig::new(4, 4, 5);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    println!("=== Global bounds (L = 2), most general under-represented groups ===");
    print!("{}", render_report(&audit.report(&out, &task)));

    // Problem 3.2 — proportional representation (Example 4.9): τs = 5, α = 0.9.
    let cfg = DetectConfig::new(5, 4, 5);
    let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.9 });
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    println!("\n=== Proportional representation (α = 0.9) ===");
    print!("{}", render_report(&audit.report(&out, &task)));

    println!(
        "\nSearch statistics: {} patterns examined, {} fresh evaluations",
        out.stats.patterns_examined(),
        out.stats.nodes_evaluated
    );
}
