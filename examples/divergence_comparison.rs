//! The §VI-D case study: our detection algorithms vs. the divergence
//! framework of Pastor et al. on the Student workload.
//!
//! Setup mirrors the paper: first 4 attributes (school, sex, age,
//! address), τs = 50 (support 0.13), k = 10 only, lower bound 10 for the
//! global measure, α = 0.8 for the proportional one, outcome
//! `o(t) = 1{t ∈ top-10}` for the divergence method.
//!
//! Run with: `cargo run --release --example divergence_comparison`

use rankfair::divergence::{display_items, divergent_subgroups, DivergenceConfig};
use rankfair::prelude::*;

fn main() {
    let w = student_workload(0, 42);
    let attrs = ["school", "sex", "age", "address"];
    let audit = Audit::builder(w.detection.clone())
        .ranking(w.ranking.clone())
        .attributes(attrs)
        .build()
        .unwrap();
    let cfg = DetectConfig::new(50, 10, 10);

    // Our algorithms.
    let g_task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(10)));
    let p_task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
    let global = audit.run(&cfg, &g_task, Engine::Optimized).unwrap();
    let prop = audit.run(&cfg, &p_task, Engine::Optimized).unwrap();
    println!("=== GlobalBounds (L = 10, k = 10) ===");
    for p in &global.per_k[0].under {
        let (sd, count) = audit.index().counts(p, 10);
        println!("  {:35} s_D = {sd:>3}, top-10 = {count}", audit.describe(p));
    }
    println!("\n=== PropBounds (α = 0.8, k = 10) ===");
    for p in &prop.per_k[0].under {
        let (sd, count) = audit.index().counts(p, 10);
        println!("  {:35} s_D = {sd:>3}, top-10 = {count}", audit.describe(p));
    }

    // The divergence framework on the same attribute set.
    let cols: Vec<usize> = attrs
        .iter()
        .map(|a| w.detection.column_index(a).expect("attribute exists"))
        .collect();
    let div_cfg = DivergenceConfig {
        min_support: 0.13,
        max_len: 0,
        columns: Some(cols),
    };
    let subgroups = divergent_subgroups(&w.detection, &w.ranking, 10, &div_cfg);
    println!(
        "\n=== Divergence framework: {} subgroups with support ≥ 13% ===",
        subgroups.len()
    );
    println!("Five most negative (most under-represented):");
    for s in subgroups.iter().take(5) {
        println!(
            "  {:45} support = {:>3}, o(G) = {:.3}, divergence = {:+.3}",
            display_items(&w.detection, &s.items),
            s.support,
            s.outcome,
            s.divergence
        );
    }

    // The structural difference the paper highlights: the divergence
    // output contains subgroups subsumed by one another; ours only the
    // most general.
    let subsumed = subgroups
        .iter()
        .filter(|a| {
            subgroups.iter().any(|b| {
                b.items.len() < a.items.len() && b.items.iter().all(|i| a.items.contains(i))
            })
        })
        .count();
    println!(
        "\n{} of {} divergence subgroups are subsumed by another reported subgroup;",
        subsumed,
        subgroups.len()
    );
    println!(
        "our detectors return {} (global) and {} (proportional) most general groups instead.",
        global.per_k[0].under.len(),
        prop.per_k[0].under.len()
    );
}
