//! Creditworthiness-ranking audit on the German Credit workload,
//! combining lower bounds (under-representation), the upper-bound
//! extension (over-representation) and a Shapley explanation — the
//! Fig. 10c / 10f analysis of the paper.
//!
//! Run with: `cargo run --release --example credit_audit`

use rankfair::explain::distribution::compare_distributions;
use rankfair::prelude::*;

fn main() {
    let w = german_workload(0, 42); // 1,000 applicants
    let audit = w.audit().unwrap();
    println!(
        "Workload `{}`: {} applicants, {} pattern attributes, ranked by {}\n",
        w.name,
        w.detection.n_rows(),
        w.detection.categorical_columns().len(),
        w.ranker_name
    );

    // Combined lower + upper bounds at k = 49 (paper parameters L = 40;
    // upper bound picked symmetric at 45) — one task, both directions.
    let cfg = DetectConfig::new(50, 49, 49);
    let task = AuditTask::Combined {
        lower: Bounds::constant(40),
        upper: Bounds::constant(45),
    };
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let report = &out.per_k[0];
    println!("Under-represented at k = 49 (fewer than 40 seats):");
    for p in report.under.iter().take(8) {
        println!("  {}", audit.describe(p));
    }
    if report.under.len() > 8 {
        println!("  ... and {} more", report.under.len() - 8);
    }
    println!("\nOver-represented at k = 49 (more than 45 seats, most specific):");
    for p in report.over.iter().take(5) {
        println!("  {}", audit.describe(p));
    }

    // Explain the account-status group the paper analyzes (p3): if it is
    // detected, attribute its low ranking.
    let p3 = audit
        .space()
        .pattern(&[("status_checking", "0<=...<200 DM")])
        .expect("p3 exists in the space");
    let (sd, count) = audit.index().counts(&p3, 49);
    println!(
        "\nGroup p3 = {}: s_D = {sd}, top-49 = {count}",
        audit.describe(&p3)
    );

    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::default());
    println!("Surrogate R² = {:.3}", surrogate.fit_quality());
    let members = audit.group_members(&p3);
    let explanation = surrogate.explain_group(&members);
    println!("\nAggregated Shapley values (top 6, Fig. 10c style):");
    print!("{}", explanation.render(6));

    let top_attr = explanation.ranked_attributes()[0].0.clone();
    let topk: Vec<u32> = w.ranking.top_k(49).to_vec();
    let cmp = compare_distributions(&w.raw, &top_attr, &topk, &members);
    println!("\nValue distribution of `{top_attr}` (Fig. 10f style):");
    print!("{}", cmp.render());
}
