//! The serving layer end to end: register datasets, answer typed audit
//! requests with caching, and speak the JSONL wire protocol in-process.
//!
//! Run with: `cargo run --release --example service_demo`

use std::io::Cursor;
use std::sync::Arc;

use rankfair::json::ToJson;
use rankfair::prelude::*;
use rankfair::service::serve::{serve, ServeOptions};

fn main() {
    // One service holds any number of named datasets; audits built on them
    // are cached by (dataset, attributes, bucketization, ranking spec).
    let service = AuditService::new();
    service.register_dataset("fig1", Arc::new(rankfair::data::examples::students_fig1()));
    let students = rankfair::synth::student(rankfair::synth::SynthConfig::new(200, 7));
    service.register_dataset("students", Arc::new(students));

    // A typed request: the Figure 1 example, both directions at once.
    let request = AuditRequest {
        dataset: "fig1".into(),
        attributes: None,
        bucketize: Vec::new(),
        ranking: RankingSpec::ByColumn {
            column: "Grade".into(),
            ascending: false,
        },
        task: AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(2),
        },
        config: DetectConfig::new(4, 5, 5),
        engine: Engine::Optimized,
    };
    println!("wire form of the request:\n  {}\n", request.to_json());

    let cold = service.handle(&request).expect("valid request");
    println!(
        "cold query: cache hit = {}, {} group(s), {:.2} ms",
        cold.cache.hit,
        cold.outcome.total_groups(),
        cold.wall_ms
    );
    for report in &cold.reports {
        for g in &report.groups {
            println!(
                "  k={} {:5} {} (top-k {} vs required {})",
                report.k,
                g.direction.as_str(),
                g.display,
                g.size_in_topk,
                g.required
            );
        }
    }

    // The same key again: index construction is skipped.
    let warm = service.handle(&request).expect("valid request");
    println!(
        "\nwarm query: cache hit = {}, {:.2} ms (cache: {} audit(s), {} hit(s)/{} miss(es))",
        warm.cache.hit,
        warm.wall_ms,
        service.cache_len(),
        service.cache_stats().0,
        service.cache_stats().1,
    );

    // The same queries as a JSONL session — what `rankfair serve` runs
    // over stdin/stdout.
    let session = concat!(
        r#"{"id": 1, "dataset": "students", "ranking": {"rank_by": "G3"}, "#,
        r#""task": {"type": "under", "measure": {"type": "global", "lower": 3}}, "#,
        r#""config": {"tau": 20, "kmin": 5, "kmax": 10}, "#,
        r#""attributes": ["school", "sex", "address"]}"#,
        "\n",
        r#"{"id": 2, "op": "datasets"}"#,
        "\n",
    );
    let mut responses = Vec::new();
    let summary = serve(
        &service,
        Cursor::new(session),
        &mut responses,
        &ServeOptions {
            workers: 2,
            strip_timing: false,
        },
    )
    .expect("in-memory session");
    println!(
        "\nJSONL session ({} request(s), {} error(s)):",
        summary.requests, summary.errors
    );
    for line in String::from_utf8(responses).unwrap().lines() {
        let v = rankfair::json::parse(line).expect("responses are JSON");
        let summary_line = match v.get("per_k") {
            Some(per_k) => format!(
                "id {} → ok over {} k value(s)",
                v.get("id").unwrap(),
                per_k.as_arr().map_or(0, <[_]>::len)
            ),
            None => line.to_string(),
        };
        println!("  {summary_line}");
    }
}
