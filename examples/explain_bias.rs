//! Result analysis with Shapley values (§V / §VI-C, Figures 10a and 10d).
//!
//! We detect a group with biased representation in the Student ranking,
//! train a random-forest surrogate of the (black-box) ranker, compute the
//! group’s aggregated Shapley values, and compare the value distribution
//! of the strongest attribute between the top-k and the group — revealing
//! *why* the ranking under-represents the group.
//!
//! Run with: `cargo run --release --example explain_bias`

use rankfair::explain::distribution::compare_distributions;
use rankfair::prelude::*;

fn main() {
    let w = student_workload(0, 42);
    let audit = w.audit().unwrap();

    // Detect with the paper's Fig. 10 parameters: k = 49, L = 40.
    let cfg = DetectConfig::new(50, 49, 49);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(40)));
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let kr = out.at_k(49).expect("k = 49 computed");
    println!("Most general groups with < 40 of the top-49 seats:");
    for p in kr.under.iter().take(8) {
        println!("  {}", audit.describe(p));
    }
    if kr.under.len() > 8 {
        println!("  ... and {} more", kr.under.len() - 8);
    }
    let target = kr
        .under
        .iter()
        .find(|p| audit.describe(p).contains("Medu"))
        .unwrap_or_else(|| &kr.under[0]);
    println!("\nExplaining group {}:", audit.describe(target));

    // §V: train M_R on (tuple → rank) and aggregate Shapley values over
    // the group. Features come from the RAW dataset so the true scoring
    // attribute (G3) is visible to the surrogate.
    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::default());
    println!(
        "Surrogate quality: in-sample R² = {:.3} (how well M_R imitates the ranker)",
        surrogate.fit_quality()
    );
    let members = audit.group_members(target);
    let explanation = surrogate.explain_group(&members);
    println!(
        "\nAggregated Shapley values over {} group tuples (top 6, Fig. 10a style):",
        explanation.tuples_explained
    );
    print!("{}", explanation.render(6));

    // Figures 10d-f: value distribution of the strongest attribute.
    let top_attr = explanation.ranked_attributes()[0].0.clone();
    let topk: Vec<u32> = w.ranking.top_k(49).to_vec();
    let cmp = compare_distributions(&w.raw, &top_attr, &topk, &members);
    println!("\nValue distribution of `{top_attr}`, top-49 vs. detected group:");
    print!("{}", cmp.render());
    println!(
        "Total variation distance: {:.3} (1.0 = disjoint supports)",
        cmp.total_variation()
    );
}
