//! Recidivism-score audit on the COMPAS workload: who is missing from the
//! top of the risk ranking?
//!
//! This example runs the proportional-representation detector (Problem
//! 3.2) with the paper’s α = 0.8 and compares the cost of the baseline
//! `IterTD` against the optimized `PropBounds` — the experiment shape of
//! the paper’s Figures 5/7/9 — then reruns the optimized engine with the
//! k range fanned out over worker threads.
//!
//! Run with: `cargo run --release --example compas_audit`

use std::time::Instant;

use rankfair::prelude::*;

fn main() {
    let w = compas_workload(0, 42); // 6,889 defendants
    println!(
        "Workload `{}`: {} tuples, {} pattern attributes, ranked by {}\n",
        w.name,
        w.detection.n_rows(),
        w.detection.categorical_columns().len(),
        w.ranker_name
    );

    // Use the first 8 attributes (the scalability experiments vary this).
    let audit = w.audit_with_attrs(8).unwrap();

    let cfg = DetectConfig::new(50, 10, 49);
    let alpha = 0.8;
    let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha });

    let t0 = Instant::now();
    let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
    let t_base = t0.elapsed();

    let t0 = Instant::now();
    let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let t_opt = t0.elapsed();

    assert_eq!(base.per_k, opt.per_k, "engines must agree");

    println!("Groups with biased proportional representation (α = {alpha}):");
    if let Some(kr) = opt.at_k(49) {
        println!("  at k = 49:");
        for p in &kr.under {
            let (sd, count) = audit.index().counts(p, 49);
            println!(
                "    {:55} s_D = {sd:>4}, top-49 = {count:>2}, required ≥ {:.1}",
                audit.describe(p),
                alpha * sd as f64 * 49.0 / audit.dataset().n_rows() as f64
            );
        }
    }

    println!(
        "\nBaseline IterTD:    {:>10.1?}  ({} patterns examined)",
        t_base,
        base.stats.patterns_examined()
    );
    println!(
        "Optimized PropBounds: {:>8.1?}  ({} patterns examined)",
        t_opt,
        opt.stats.patterns_examined()
    );
    let gain = 100.0
        * (1.0 - opt.stats.patterns_examined() as f64 / base.stats.patterns_examined() as f64);
    println!("Search-space gain: {gain:.2}% (the paper reports up to 39.60% for COMPAS)");

    // The same audit, k range split across 4 scoped worker threads — the
    // result is byte-identical to the sequential run.
    let par_audit = Audit::builder(w.detection.clone())
        .ranking(w.ranking.clone())
        .attributes(w.attr_names().into_iter().take(8))
        .threads(4)
        .build()
        .unwrap();
    let t0 = Instant::now();
    let par = par_audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let t_par = t0.elapsed();
    assert_eq!(par.per_k, opt.per_k, "parallel run must be byte-identical");
    println!("Parallel (4 threads): {t_par:>8.1?}  — identical per-k results");
}
