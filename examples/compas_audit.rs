//! Recidivism-score audit on the COMPAS workload: who is missing from the
//! top of the risk ranking?
//!
//! This example runs the proportional-representation detector (Problem
//! 3.2) with the paper’s α = 0.8 and compares the cost of the baseline
//! `IterTD` against the optimized `PropBounds` — the experiment shape of
//! the paper’s Figures 5/7/9.
//!
//! Run with: `cargo run --release --example compas_audit`

use std::time::Instant;

use rankfair::prelude::*;

fn main() {
    let w = compas_workload(0, 42); // 6,889 defendants
    println!(
        "Workload `{}`: {} tuples, {} pattern attributes, ranked by {}\n",
        w.name,
        w.detection.n_rows(),
        w.detection.categorical_columns().len(),
        w.ranker_name
    );

    // Use the first 8 attributes (the scalability experiments vary this).
    let attrs = w.attr_names();
    let attr_refs: Vec<&str> = attrs.iter().take(8).map(String::as_str).collect();
    let detector =
        Detector::with_ranking_over(&w.detection, w.ranking.clone(), &attr_refs).unwrap();

    let cfg = DetectConfig::new(50, 10, 49);
    let alpha = 0.8;

    let t0 = Instant::now();
    let base = detector.detect_baseline(&cfg, &BiasMeasure::Proportional { alpha });
    let t_base = t0.elapsed();

    let t0 = Instant::now();
    let opt = detector.detect_proportional(&cfg, alpha);
    let t_opt = t0.elapsed();

    assert_eq!(base.per_k, opt.per_k, "algorithms must agree");

    println!("Groups with biased proportional representation (α = {alpha}):");
    if let Some(kr) = opt.at_k(49) {
        println!("  at k = 49:");
        for p in &kr.patterns {
            let (sd, count) = detector.index().counts(p, 49);
            println!(
                "    {:55} s_D = {sd:>4}, top-49 = {count:>2}, required ≥ {:.1}",
                detector.describe(p),
                alpha * sd as f64 * 49.0 / detector.dataset().n_rows() as f64
            );
        }
    }

    println!("\nBaseline IterTD:    {:>10.1?}  ({} patterns examined)",
        t_base, base.stats.patterns_examined());
    println!("Optimized PropBounds: {:>8.1?}  ({} patterns examined)",
        t_opt, opt.stats.patterns_examined());
    let gain = 100.0
        * (1.0 - opt.stats.patterns_examined() as f64 / base.stats.patterns_examined() as f64);
    println!("Search-space gain: {gain:.2}% (the paper reports up to 39.60% for COMPAS)");
}
