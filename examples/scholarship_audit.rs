//! Scholarship audit: the paper’s motivating scenario on the Student
//! Performance workload.
//!
//! A committee awards scholarships to the top-k students by final math
//! grade. We audit the ranking with the paper’s default parameters
//! (τs = 50, k ∈ [10, 49], step bounds 10/20/30/40) and also demonstrate
//! the automatic τs suggestion and the upper-bound (over-representation)
//! task in both scopes.
//!
//! Run with: `cargo run --release --example scholarship_audit`

use rankfair::core::{render_report, suggest_tau, upper, SearchStats};
use rankfair::prelude::*;

fn main() {
    let w = student_workload(0, 42); // 395 students, paper size
    println!(
        "Workload `{}`: {} students, {} pattern attributes, ranked by {}\n",
        w.name,
        w.detection.n_rows(),
        w.detection.categorical_columns().len(),
        w.ranker_name
    );
    let audit = w.audit().unwrap();

    // The paper suggests exploring thresholds automatically (§VIII).
    let suggested = suggest_tau(audit.index(), audit.space(), 0.25);
    println!("Suggested τs at the 25% quantile of level-1 group sizes: {suggested}");

    // Paper defaults: τs = 50, k ∈ [10, 49], L stepping 10/20/30/40.
    let cfg = DetectConfig::new(50, 10, 49);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::paper_default()));
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let reports = audit.report(&out, &task);

    // Print a few representative k values rather than all forty.
    println!("\n=== Under-represented groups (global bounds) ===");
    for r in reports.iter().filter(|r| [10, 25, 49].contains(&r.k)) {
        print!("{}", render_report(std::slice::from_ref(r)));
    }
    println!(
        "\n{} (k, group) pairs reported across k ∈ [10, 49]; search examined {} patterns.",
        out.total_groups(),
        out.stats.patterns_examined()
    );

    // Proportional variant, α = 0.8 (paper default).
    let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
    let out_prop = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    println!(
        "\nProportional (α = 0.8) reports {} (k, group) pairs; e.g. at k = 49:",
        out_prop.total_groups()
    );
    if let Some(kr) = out_prop.at_k(49) {
        for p in &kr.under {
            println!("  {}", audit.describe(p));
        }
    }

    // Over-representation task: groups exceeding U = 30 seats at k = 49
    // (most specific substantial patterns).
    let cfg49 = DetectConfig::new(50, 49, 49);
    let over_task = AuditTask::OverRep {
        upper: Bounds::constant(30),
        scope: OverRepScope::MostSpecific,
    };
    let over = audit.run(&cfg49, &over_task, Engine::Optimized).unwrap();
    // The paper's other §III variant: the most *specific* substantial
    // descriptions of who is missing — useful when an analyst wants the
    // narrowest actionable characterization instead of the broadest.
    let mut stats = SearchStats::default();
    let narrow =
        upper::lower_most_specific_single_k(audit.index(), audit.space(), 50, 49, 40, &mut stats);
    println!(
        "\nMost specific substantial under-represented groups at k = 49: {} found, e.g.:",
        narrow.len()
    );
    for p in narrow.iter().take(3) {
        println!("  {}", audit.describe(p));
    }
    println!("\n=== Over-represented groups at k = 49 (count > 30, most specific) ===");
    let over49 = &over.per_k[0].over;
    for p in over49.iter().take(10) {
        let (sd, count) = audit.index().counts(p, 49);
        println!("  {:60} s_D = {sd:>3}, top-49 = {count}", audit.describe(p));
    }
    if over49.len() > 10 {
        println!("  ... and {} more", over49.len() - 10);
    }
}
