//! Scholarship audit: the paper’s motivating scenario on the Student
//! Performance workload.
//!
//! A committee awards scholarships to the top-k students by final math
//! grade. We audit the ranking with the paper’s default parameters
//! (τs = 50, k ∈ [10, 49], step bounds 10/20/30/40) and also demonstrate
//! the automatic τs suggestion and the upper-bound (over-representation)
//! extension.
//!
//! Run with: `cargo run --release --example scholarship_audit`

use rankfair::core::{render_report, suggest_tau, upper, SearchStats};
use rankfair::prelude::*;

fn main() {
    let w = student_workload(0, 42); // 395 students, paper size
    println!(
        "Workload `{}`: {} students, {} pattern attributes, ranked by {}\n",
        w.name,
        w.detection.n_rows(),
        w.detection.categorical_columns().len(),
        w.ranker_name
    );
    let detector = Detector::with_ranking(&w.detection, w.ranking.clone()).unwrap();

    // The paper suggests exploring thresholds automatically (§VIII).
    let suggested = suggest_tau(detector.index(), detector.space(), 0.25);
    println!("Suggested τs at the 25% quantile of level-1 group sizes: {suggested}");

    // Paper defaults: τs = 50, k ∈ [10, 49], L stepping 10/20/30/40.
    let cfg = DetectConfig::new(50, 10, 49);
    let bounds = Bounds::paper_default();
    let out = detector.detect_global(&cfg, &bounds);
    let measure = BiasMeasure::GlobalLower(bounds);
    let reports = detector.report(&out, &measure);

    // Print a few representative k values rather than all forty.
    println!("\n=== Under-represented groups (global bounds) ===");
    for r in reports.iter().filter(|r| [10, 25, 49].contains(&r.k)) {
        print!("{}", render_report(std::slice::from_ref(r)));
    }
    println!(
        "\n{} (k, group) pairs reported across k ∈ [10, 49]; search examined {} patterns.",
        out.total_patterns(),
        out.stats.patterns_examined()
    );

    // Proportional variant, α = 0.8 (paper default).
    let out_prop = detector.detect_proportional(&cfg, 0.8);
    println!(
        "\nProportional (α = 0.8) reports {} (k, group) pairs; e.g. at k = 49:",
        out_prop.total_patterns()
    );
    if let Some(kr) = out_prop.at_k(49) {
        for p in &kr.patterns {
            println!("  {}", detector.describe(p));
        }
    }

    // Upper-bound extension: groups *over*-represented in the top-49
    // (most specific substantial patterns exceeding U = 30).
    let mut stats = SearchStats::default();
    let over = upper::upper_most_specific_single_k(
        detector.index(),
        detector.space(),
        50,
        49,
        30,
        &mut stats,
    );
    // The paper's other §III variant: the most *specific* substantial
    // descriptions of who is missing — useful when an analyst wants the
    // narrowest actionable characterization instead of the broadest.
    let narrow = upper::lower_most_specific_single_k(
        detector.index(),
        detector.space(),
        50,
        49,
        40,
        &mut stats,
    );
    println!(
        "\nMost specific substantial under-represented groups at k = 49: {} found, e.g.:",
        narrow.len()
    );
    for p in narrow.iter().take(3) {
        println!("  {}", detector.describe(p));
    }
    println!("\n=== Over-represented groups at k = 49 (count > 30, most specific) ===");
    for p in over.iter().take(10) {
        let (sd, count) = detector.index().counts(p, 49);
        println!("  {:60} s_D = {sd:>3}, top-49 = {count}", detector.describe(p));
    }
    if over.len() > 10 {
        println!("  ... and {} more", over.len() - 10);
    }
}
