//! Streaming audit: consume detection results k by k, stopping early.
//!
//! A hiring committee extends its interview short-list one candidate at a
//! time and wants to be alerted the *first* time any sizeable group drops
//! below its required representation — without paying for the ks it never
//! reaches. `Audit::run_streaming` keeps the incremental engine alive
//! between pulls, so the cost is identical to the batch run up to the
//! stopping point and zero beyond it.
//!
//! Run with: `cargo run --release --example streaming_audit`

use rankfair::prelude::*;

fn main() {
    let w = german_workload(0, 42);
    let audit = w.audit().unwrap();
    println!(
        "Streaming audit of `{}` ({} applicants): alert on the first k ∈ [5, 120]\n\
         where a group of ≥ 80 applicants has fewer than ⌈k/10⌉ seats.\n",
        w.name,
        audit.dataset().n_rows()
    );

    let cfg = DetectConfig::new(80, 5, 120);
    let bounds = Bounds::LinearFraction(0.1);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds.clone()));
    let mut stream = audit.run_streaming(&cfg, &task).unwrap();

    let mut alerted = false;
    for kr in stream.by_ref() {
        if !kr.under.is_empty() {
            println!(
                "ALERT at k = {}: {} under-represented group(s)",
                kr.k,
                kr.under.len()
            );
            for p in kr.under.iter().take(6) {
                let (sd, count) = audit.index().counts(p, kr.k);
                println!(
                    "  {:45} s_D = {sd:>3}, top-{} = {count} (required ≥ {})",
                    audit.describe(p),
                    kr.k,
                    bounds.at(kr.k)
                );
            }
            alerted = true;
            break; // stop pulling: later k values are never computed
        }
    }
    if !alerted {
        println!("no group ever dropped below the bound in the audited range");
    }
    let stats = stream.stats();
    println!(
        "\nwork done before stopping: {} fresh evaluations, {} incremental touches",
        stats.nodes_evaluated, stats.nodes_touched
    );
}
