//! The three evaluation workloads of the paper (§VI-A), prepared
//! end-to-end: synthetic dataset → ranking (computed on the raw numeric
//! attributes, exactly as the paper does) → detection-ready dataset with
//! every continuous attribute bucketized into 3–4 equal-width bins.
//!
//! Row counts default to the real datasets’ sizes (COMPAS 6,889; Student
//! 395; German Credit 1,000) and can be scaled for stress tests.

use std::sync::Arc;

use rankfair_core::{Audit, AuditError};
use rankfair_data::bucketize::{bucketize_in_place, BinStrategy};
use rankfair_data::Dataset;
use rankfair_rank::{AttributeRanker, LinearScoreRanker, Ranker, Ranking, ScoreTerm};
use rankfair_synth::SynthConfig;

/// A fully prepared workload.
pub struct Workload {
    /// Workload name (`student`, `compas`, `german`).
    pub name: &'static str,
    /// The original mixed-type dataset (used by rankers and the
    /// explanation module, whose regression features keep raw numerics).
    pub raw: Dataset,
    /// The detection-ready dataset: same columns, continuous attributes
    /// bucketized, so every column is a pattern attribute. Shared behind
    /// an `Arc` so [`Workload::audit`] hands the same in-memory dataset to
    /// any number of audits without copying.
    pub detection: Arc<Dataset>,
    /// The ranking, computed on `raw` **before** bucketization.
    pub ranking: Ranking,
    /// Name of the ranking method (for reports).
    pub ranker_name: String,
}

impl Workload {
    /// Names of the pattern attributes (all columns of `detection`), in
    /// search-tree order. The scalability experiments take prefixes of
    /// this list.
    pub fn attr_names(&self) -> Vec<String> {
        self.detection
            .columns()
            .iter()
            .map(|c| c.name().to_string())
            .collect()
    }

    /// An [`Audit`] over the full attribute set, sharing this workload's
    /// detection dataset and ranking.
    pub fn audit(&self) -> Result<Audit, AuditError> {
        Audit::builder(Arc::clone(&self.detection))
            .ranking(self.ranking.clone())
            .build()
    }

    /// An [`Audit`] restricted to the first `n_attrs` pattern attributes
    /// (the x-axis of the paper's scalability experiments).
    pub fn audit_with_attrs(&self, n_attrs: usize) -> Result<Audit, AuditError> {
        let names = self.attr_names();
        let take = n_attrs.min(names.len());
        Audit::builder(Arc::clone(&self.detection))
            .ranking(self.ranking.clone())
            .attributes(names.into_iter().take(take))
            .build()
    }

    /// An [`Audit`] whose index partitions the ranked rows across
    /// `shards` shard-local indexes merged additively at query time —
    /// same answers as [`Workload::audit`], different index layout.
    pub fn audit_sharded(&self, shards: usize) -> Result<Audit, AuditError> {
        Audit::builder(Arc::clone(&self.detection))
            .ranking(self.ranking.clone())
            .shards(shards)
            .build()
    }
}

fn bucketize_all(ds: &mut Dataset, specs: &[(&str, usize)]) {
    for &(col, bins) in specs {
        bucketize_in_place(ds, col, bins, BinStrategy::EqualWidth)
            .unwrap_or_else(|e| panic!("bucketizing `{col}`: {e}"));
    }
}

/// Student Performance: ranked by the final math grade `G3` (descending),
/// as in §VI-A. 33 attributes after bucketization.
pub fn student_workload(rows: usize, seed: u64) -> Workload {
    let raw = rankfair_synth::student(SynthConfig::new(rows, seed));
    let ranker = AttributeRanker::by_desc("G3");
    let ranking = ranker.rank(&raw);
    let mut detection = raw.clone();
    bucketize_all(
        &mut detection,
        &[("age", 3), ("absences", 4), ("G1", 4), ("G2", 4), ("G3", 4)],
    );
    Workload {
        name: "student",
        raw,
        detection: Arc::new(detection),
        ranking,
        ranker_name: ranker.name().to_string(),
    }
}

/// COMPAS: ranked by the normalized sum of the seven scoring attributes
/// of §VI-A (age inverted). 16 attributes after bucketization.
pub fn compas_workload(rows: usize, seed: u64) -> Workload {
    let raw = rankfair_synth::compas(SynthConfig::new(rows, seed));
    let ranker = LinearScoreRanker::new(vec![
        ScoreTerm::plain("c_days_from_compas"),
        ScoreTerm::plain("juv_other_count"),
        ScoreTerm::plain("days_b_screening_arrest"),
        ScoreTerm::plain("start"),
        ScoreTerm::plain("end"),
        ScoreTerm::inverted("age"),
        ScoreTerm::plain("priors_count"),
    ]);
    let ranking = ranker.rank(&raw);
    let mut detection = raw.clone();
    bucketize_all(
        &mut detection,
        &[
            ("age", 4),
            ("juv_fel_count", 3),
            ("juv_misd_count", 3),
            ("juv_other_count", 3),
            ("priors_count", 4),
            ("days_b_screening_arrest", 3),
            ("c_days_from_compas", 4),
            ("start", 3),
            ("end", 4),
        ],
    );
    Workload {
        name: "compas",
        raw,
        detection: Arc::new(detection),
        ranking,
        ranker_name: ranker.name().to_string(),
    }
}

/// German Credit: ranked by a creditworthiness score over duration, credit
/// amount, installment rate and residence length — the attributes the
/// paper’s Shapley analysis identifies as strongest for this dataset
/// (Fig. 10c). The detection side keeps all 20 attributes.
pub fn german_workload(rows: usize, seed: u64) -> Workload {
    let raw = rankfair_synth::german_credit(SynthConfig::new(rows, seed));
    let ranker = LinearScoreRanker::new(vec![
        ScoreTerm::inverted("duration"),
        ScoreTerm::inverted("credit_amount"),
        ScoreTerm {
            column: "installment_rate".into(),
            weight: 0.8,
            invert: true,
        },
        ScoreTerm {
            column: "residence_since".into(),
            weight: 0.6,
            invert: false,
        },
    ]);
    let ranking = ranker.rank(&raw);
    let mut detection = raw.clone();
    bucketize_all(
        &mut detection,
        &[("duration", 4), ("credit_amount", 4), ("age", 4)],
    );
    Workload {
        name: "german",
        raw,
        detection: Arc::new(detection),
        ranking,
        ranker_name: ranker.name().to_string(),
    }
}

/// All three workloads at their paper-default sizes.
pub fn all_workloads(seed: u64) -> Vec<Workload> {
    vec![
        compas_workload(0, seed),
        student_workload(0, seed),
        german_workload(0, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_detection_dataset_is_fully_categorical() {
        let w = student_workload(120, 3);
        assert_eq!(w.detection.categorical_columns().len(), 33);
        assert_eq!(w.raw.n_rows(), 120);
        assert_eq!(w.ranking.len(), 120);
        assert_eq!(w.attr_names().len(), 33);
    }

    #[test]
    fn compas_detection_dataset_is_fully_categorical() {
        let w = compas_workload(300, 3);
        assert_eq!(w.detection.categorical_columns().len(), 16);
    }

    #[test]
    fn german_detection_dataset_is_fully_categorical() {
        let w = german_workload(200, 3);
        assert_eq!(w.detection.categorical_columns().len(), 20);
    }

    #[test]
    fn ranking_follows_g3_descending() {
        let w = student_workload(150, 5);
        let g3 = w.raw.column_by_name("G3").unwrap();
        let order = w.ranking.order();
        for pair in order.windows(2) {
            assert!(g3.value(pair[0] as usize) >= g3.value(pair[1] as usize));
        }
    }

    #[test]
    fn default_sizes_match_paper() {
        let ws = all_workloads(1);
        assert_eq!(ws[0].raw.n_rows(), 6889);
        assert_eq!(ws[1].raw.n_rows(), 395);
        assert_eq!(ws[2].raw.n_rows(), 1000);
    }
}
