//! # rankfair
//!
//! A Rust implementation of *“Detection of Groups with Biased
//! Representation in Ranking”* (Li, Moskovitch, Jagadish — ICDE 2023):
//! given a dataset and a black-box ranking, find **all** groups
//! (conjunctions of attribute=value conditions) whose representation in
//! the top-`k` ranked tuples is biased, for every `k` in a range — without
//! pre-defining protected groups — then **explain** the detected groups
//! with Shapley values over a surrogate of the ranker.
//!
//! The workspace is organized as one crate per subsystem, all re-exported
//! here:
//!
//! | module | contents |
//! |---|---|
//! | [`data`] | columnar dataset, bucketization, CSV, bitmaps |
//! | [`rank`] | `Ranker` trait, score-based rankers, rankings |
//! | [`core`] | the `Audit` API, patterns, `IterTD`, `GlobalBounds`, `PropBounds`, upper bounds, the live `MonitorAudit`, oracle |
//! | [`service`] | `AuditService`: dataset registry, audit cache, JSONL wire protocol |
//! | [`json`] | minimal in-workspace JSON (value, serializer, strict parser) |
//! | [`explain`] | regression-forest surrogate, Shapley values, distributions |
//! | [`divergence`] | the Pastor et al. divergence baseline (§VI-D) |
//! | [`synth`] | seeded synthetic COMPAS / Student / German Credit generators |
//! | [`workloads`] | the three paper workloads, prepared end-to-end |
//!
//! # Quickstart
//!
//! Everything goes through the owned [`core::Audit`], built fluently by
//! [`core::AuditBuilder`]: pick a dataset, a ranking (or a ranker), the
//! task, and run.
//!
//! ```
//! use std::sync::Arc;
//! use rankfair::prelude::*;
//!
//! // The paper's Figure 1 running example: sixteen students ranked by
//! // grade, failures as tie-breaker.
//! let ds = rankfair::data::examples::students_fig1();
//! let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
//! let audit = Audit::builder(Arc::new(ds)).ranker(&ranker).build().unwrap();
//!
//! // Detect groups of size ≥ 4 under-represented in the top-4..5 given a
//! // lower bound of 2 (Example 4.6).
//! let cfg = DetectConfig::new(4, 4, 5);
//! let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
//! let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
//! let found: Vec<String> = out.per_k[0].under.iter().map(|p| audit.describe(p)).collect();
//! assert!(found.contains(&"{School=GP}".to_string()));
//!
//! // The same audit also answers over-representation and combined
//! // questions — the task is a value, not a method:
//! let both = AuditTask::Combined { lower: Bounds::constant(2), upper: Bounds::constant(3) };
//! let out = audit.run(&cfg, &both, Engine::Optimized).unwrap();
//! assert!(out.per_k.iter().any(|kr| !kr.over.is_empty()));
//! ```
//!
//! # Thread safety
//!
//! [`core::Audit`] owns its dataset (`Arc<Dataset>`), pattern space,
//! ranking and bitmap index, and is **`Send + Sync` by contract** — a
//! single audit can be shared by reference across however many server
//! threads you have, and [`core::Audit::run`] itself fans the `k` range
//! out over scoped worker threads when built with
//! [`core::AuditBuilder::threads`]. The contract is enforced at compile
//! time:
//!
//! ```
//! use std::sync::Arc;
//! use rankfair::prelude::*;
//!
//! fn assert_send_sync<T: Send + Sync>() {}
//! assert_send_sync::<Audit>(); // fails to compile if the contract breaks
//!
//! // Concurrent use: one audit, many threads, no locks.
//! let ds = rankfair::data::examples::students_fig1();
//! let ranking = Ranking::from_order(rankfair::data::examples::fig1_rank_order()).unwrap();
//! let audit = Audit::builder(Arc::new(ds)).ranking(ranking).build().unwrap();
//! let cfg = DetectConfig::new(4, 4, 5);
//! let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let (audit, cfg, task) = (&audit, &cfg, &task);
//!         s.spawn(move || audit.run(cfg, task, Engine::Optimized).unwrap());
//!     }
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rankfair_core as core;
pub use rankfair_data as data;
pub use rankfair_divergence as divergence;
pub use rankfair_explain as explain;
pub use rankfair_json as json;
pub use rankfair_rank as rank;
pub use rankfair_service as service;
pub use rankfair_synth as synth;

pub mod workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::core::{
        Audit, AuditBuilder, AuditError, AuditIndex, AuditKResult, AuditOutcome, AuditTask,
        BiasMeasure, Bounds, CountsProvider, DeltaReport, DetectConfig, Engine, MonitorAudit,
        OverRepScope, Pattern, PatternSpace, RankedIndex, RankingEdit, ShardedIndex,
    };
    pub use crate::data::{Column, ColumnData, Dataset};
    pub use crate::explain::{ExplainConfig, RankSurrogate};
    pub use crate::rank::{
        AttributeRanker, FnRanker, LinearScoreRanker, Ranker, Ranking, ScoreTerm, SortKey,
    };
    pub use crate::service::{AuditRequest, AuditResponse, AuditService, RankingSpec};
    pub use crate::workloads::{compas_workload, german_workload, student_workload, Workload};
}
