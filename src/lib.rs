//! # rankfair
//!
//! A Rust implementation of *“Detection of Groups with Biased
//! Representation in Ranking”* (Li, Moskovitch, Jagadish — ICDE 2023):
//! given a dataset and a black-box ranking, find **all most general
//! groups** (conjunctions of attribute=value conditions) whose
//! representation in the top-`k` ranked tuples is biased, for every `k` in
//! a range — without pre-defining protected groups — then **explain** the
//! detected groups with Shapley values over a surrogate of the ranker.
//!
//! The workspace is organized as one crate per subsystem, all re-exported
//! here:
//!
//! | module | contents |
//! |---|---|
//! | [`data`] | columnar dataset, bucketization, CSV, bitmaps |
//! | [`rank`] | `Ranker` trait, score-based rankers, rankings |
//! | [`core`] | patterns, `IterTD`, `GlobalBounds`, `PropBounds`, upper bounds, oracle |
//! | [`explain`] | regression-forest surrogate, Shapley values, distributions |
//! | [`divergence`] | the Pastor et al. divergence baseline (§VI-D) |
//! | [`synth`] | seeded synthetic COMPAS / Student / German Credit generators |
//! | [`workloads`] | the three paper workloads, prepared end-to-end |
//!
//! # Quickstart
//!
//! ```
//! use rankfair::prelude::*;
//!
//! // The paper's Figure 1 running example: sixteen students ranked by
//! // grade, failures as tie-breaker.
//! let ds = rankfair::data::examples::students_fig1();
//! let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
//! let detector = Detector::new(&ds, &ranker).unwrap();
//!
//! // Detect groups of size ≥ 4 under-represented in the top-4..5 given a
//! // lower bound of 2 (Example 4.6).
//! let cfg = DetectConfig::new(4, 4, 5);
//! let out = detector.detect_global(&cfg, &Bounds::constant(2));
//! let found: Vec<String> = out.per_k[0].patterns.iter().map(|p| detector.describe(p)).collect();
//! assert!(found.contains(&"{School=GP}".to_string()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rankfair_core as core;
pub use rankfair_data as data;
pub use rankfair_divergence as divergence;
pub use rankfair_explain as explain;
pub use rankfair_rank as rank;
pub use rankfair_synth as synth;

pub mod workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::core::{
        global_bounds, iter_td, prop_bounds, BiasMeasure, Bounds, DetectConfig, Detector, Pattern,
        PatternSpace, RankedIndex,
    };
    pub use crate::data::{Column, ColumnData, Dataset};
    pub use crate::explain::{ExplainConfig, RankSurrogate};
    pub use crate::rank::{AttributeRanker, FnRanker, LinearScoreRanker, Ranker, Ranking, ScoreTerm, SortKey};
    pub use crate::workloads::{compas_workload, german_workload, student_workload, Workload};
}
