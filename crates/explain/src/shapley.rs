//! Permutation-sampling Shapley value estimation for black-box
//! regressors, after Štrumbelj & Kononenko (the method the paper’s §V
//! builds on).
//!
//! For a tuple `x`, the Shapley value of feature `i` is the average, over
//! feature orderings π and background tuples `z`, of the change in the
//! model output when `x_i` replaces `z_i` given that the features
//! preceding `i` in π already come from `x`. One sampled (π, z) pair
//! yields a marginal contribution for *every* feature with `m + 1` model
//! evaluations, so the estimator is `O(samples · m)` predictions per
//! tuple. Contributions sum exactly to `f(x) − f(z)` per sample
//! (efficiency), a property the tests check.

use rand::{rngs::StdRng, seq::SliceRandom, RngExt};

use crate::features::FeatureMatrix;

/// A fitted regression model usable by the Shapley estimator.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    fn predict_row(&self, row: &[f64]) -> f64;
}

/// Estimates Shapley values of `model` at `x`, sampling `samples`
/// permutation/background pairs from `background`.
///
/// Returns one value per feature. Deterministic given `rng` state.
pub fn shapley_for_row(
    model: &dyn Regressor,
    background: &FeatureMatrix,
    x: &[f64],
    samples: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let m = background.n_features();
    assert_eq!(x.len(), m, "row width must match the background matrix");
    assert!(samples > 0, "need at least one sample");
    let mut phi = vec![0.0; m];
    let mut perm: Vec<usize> = (0..m).collect();
    let mut cur = vec![0.0; m];
    for _ in 0..samples {
        let z = background.row(rng.random_range(0..background.n_rows()));
        perm.shuffle(rng);
        cur.copy_from_slice(z);
        let mut prev = model.predict_row(&cur);
        for &f in &perm {
            cur[f] = x[f];
            let next = model.predict_row(&cur);
            phi[f] += next - prev;
            prev = next;
        }
    }
    for v in &mut phi {
        *v /= samples as f64;
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rankfair_data::Dataset;

    /// A transparent linear model: exact Shapley values are known in
    /// closed form, `φ_i = w_i (x_i − E[z_i])`.
    struct Linear {
        w: Vec<f64>,
    }

    impl Regressor for Linear {
        fn predict_row(&self, row: &[f64]) -> f64 {
            row.iter().zip(&self.w).map(|(x, w)| x * w).sum()
        }
    }

    fn background() -> FeatureMatrix {
        let a: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| ((i * 3) % 7) as f64).collect();
        let c: Vec<f64> = (0..200).map(|i| ((i * 5) % 13) as f64).collect();
        let ds = Dataset::builder()
            .numeric("a", a)
            .numeric("b", b)
            .numeric("c", c)
            .build()
            .unwrap();
        FeatureMatrix::from_dataset(&ds)
    }

    fn col_mean(fm: &FeatureMatrix, f: usize) -> f64 {
        (0..fm.n_rows()).map(|r| fm.row(r)[f]).sum::<f64>() / fm.n_rows() as f64
    }

    #[test]
    fn matches_closed_form_for_linear_models() {
        let bg = background();
        let model = Linear {
            w: vec![3.0, -2.0, 0.0],
        };
        let x = vec![9.0, 6.0, 12.0];
        let mut rng = StdRng::seed_from_u64(0);
        let phi = shapley_for_row(&model, &bg, &x, 2000, &mut rng);
        for f in 0..3 {
            let exact = model.w[f] * (x[f] - col_mean(&bg, f));
            assert!(
                (phi[f] - exact).abs() < 0.6,
                "feature {f}: {} vs exact {exact}",
                phi[f]
            );
        }
        // The zero-weight feature must get (near) zero attribution.
        assert!(phi[2].abs() < 0.3);
    }

    #[test]
    fn efficiency_holds_in_expectation() {
        let bg = background();
        let model = Linear {
            w: vec![1.0, 1.0, 1.0],
        };
        let x = vec![5.0, 5.0, 5.0];
        let mut rng = StdRng::seed_from_u64(1);
        let phi = shapley_for_row(&model, &bg, &x, 4000, &mut rng);
        let fx = model.predict_row(&x);
        let efz: f64 = (0..bg.n_rows())
            .map(|r| model.predict_row(bg.row(r)))
            .sum::<f64>()
            / bg.n_rows() as f64;
        let total: f64 = phi.iter().sum();
        assert!((total - (fx - efz)).abs() < 0.5, "{total} vs {}", fx - efz);
    }

    #[test]
    fn deterministic_given_seed() {
        let bg = background();
        let model = Linear {
            w: vec![1.0, 2.0, 3.0],
        };
        let x = vec![1.0, 2.0, 3.0];
        let p1 = shapley_for_row(&model, &bg, &x, 50, &mut StdRng::seed_from_u64(9));
        let p2 = shapley_for_row(&model, &bg, &x, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let bg = background();
        let model = Linear { w: vec![0.0; 3] };
        shapley_for_row(&model, &bg, &[0.0; 3], 0, &mut StdRng::seed_from_u64(0));
    }
}
