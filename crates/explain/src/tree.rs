//! CART-style regression tree over mixed categorical/numeric features,
//! grown by variance reduction. This is the base learner of the
//! random-forest surrogate (the paper’s regression model `M_R` is
//! unspecified; see DESIGN.md §7).

use rand::{rngs::StdRng, seq::SliceRandom};

use crate::features::{FeatureKind, FeatureMatrix};
use crate::shapley::Regressor;

/// Hyper-parameters for a single tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Cap on candidate thresholds/values examined per feature (quantile
    /// subsampling keeps splits O(cap) instead of O(distinct values)).
    pub max_candidates: usize,
    /// Number of features examined per split; `0` means all (single
    /// trees), forests pass ⌈√m⌉.
    pub features_per_split: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 4,
            max_candidates: 24,
            features_per_split: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Threshold for numeric features (`x ≤ t` goes left), or the
        /// matched code for categorical features (`x == t` goes left).
        threshold: f64,
        kind: FeatureKind,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// (feature, threshold, kind, left rows, right rows) of a chosen split.
type Split = (usize, f64, FeatureKind, Vec<u32>, Vec<u32>);

struct Builder<'a> {
    x: &'a FeatureMatrix,
    y: &'a [f64],
    params: TreeParams,
    nodes: Vec<Node>,
    rng: &'a mut StdRng,
}

fn mean(y: &[f64], idx: &[u32]) -> f64 {
    idx.iter().map(|&i| y[i as usize]).sum::<f64>() / idx.len().max(1) as f64
}

fn sse(y: &[f64], idx: &[u32]) -> f64 {
    let m = mean(y, idx);
    idx.iter().map(|&i| (y[i as usize] - m).powi(2)).sum()
}

impl<'a> Builder<'a> {
    /// Finds the best (feature, threshold) split of `idx` by SSE
    /// reduction. Returns `None` when nothing reduces the error.
    fn best_split(&mut self, idx: &[u32]) -> Option<Split> {
        let m = self.x.n_features();
        let mut features: Vec<usize> = (0..m).collect();
        if self.params.features_per_split > 0 && self.params.features_per_split < m {
            features.shuffle(self.rng);
            features.truncate(self.params.features_per_split);
        }
        let parent_sse = sse(self.y, idx);
        let mut best: Option<(f64, usize, f64, FeatureKind)> = None;
        for &f in &features {
            let kind = self.x.kinds()[f];
            // Candidate split points: distinct values of the feature in
            // this node, quantile-subsampled to max_candidates.
            let mut vals: Vec<f64> = idx.iter().map(|&i| self.x.row(i as usize)[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("features are finite"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() as f64 / self.params.max_candidates as f64).max(1.0);
            let mut ci = 0.0;
            while (ci as usize) < vals.len() {
                let v = vals[ci as usize];
                ci += step;
                let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
                for &i in idx {
                    let x = self.x.row(i as usize)[f];
                    let goes_left = match kind {
                        FeatureKind::Numeric => x <= v,
                        FeatureKind::Categorical => x == v,
                    };
                    if goes_left {
                        ls += self.y[i as usize];
                        lc += 1;
                    } else {
                        rs += self.y[i as usize];
                        rc += 1;
                    }
                }
                if lc == 0 || rc == 0 {
                    continue;
                }
                // SSE = Σy² − (Σy)²/n per side; Σy² is shared, so comparing
                // −(Σy_l)²/n_l − (Σy_r)²/n_r suffices.
                let score = -(ls * ls) / lc as f64 - (rs * rs) / rc as f64;
                if best.is_none_or(|(b, ..)| score < b) {
                    best = Some((score, f, v, kind));
                }
            }
        }
        let (score, f, v, kind) = best?;
        // Translate the comparable score back into an SSE reduction check:
        // child SSE = Σy² − (Σy_l)²/n_l − (Σy_r)²/n_r = Σy² + score.
        let child_sse = idx.iter().map(|&i| self.y[i as usize].powi(2)).sum::<f64>() + score;
        if child_sse >= parent_sse - 1e-12 {
            return None;
        }
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &i in idx {
            let x = self.x.row(i as usize)[f];
            let goes_left = match kind {
                FeatureKind::Numeric => x <= v,
                FeatureKind::Categorical => x == v,
            };
            if goes_left {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        Some((f, v, kind, left, right))
    }

    fn build(&mut self, idx: &[u32], depth: usize) -> usize {
        let leaf = |nodes: &mut Vec<Node>, y: &[f64], idx: &[u32]| {
            nodes.push(Node::Leaf {
                value: mean(y, idx),
            });
            nodes.len() - 1
        };
        if depth >= self.params.max_depth || idx.len() < self.params.min_samples_split {
            return leaf(&mut self.nodes, self.y, idx);
        }
        match self.best_split(idx) {
            None => leaf(&mut self.nodes, self.y, idx),
            Some((feature, threshold, kind, left_idx, right_idx)) => {
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    kind,
                    left,
                    right,
                };
                slot
            }
        }
    }
}

impl RegressionTree {
    /// Fits a tree on the rows `idx` of `(x, y)`.
    pub fn fit_on(
        x: &FeatureMatrix,
        y: &[f64],
        idx: &[u32],
        params: TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/target length mismatch");
        assert!(!idx.is_empty(), "cannot fit on zero samples");
        let mut b = Builder {
            x,
            y,
            params,
            nodes: Vec::new(),
            rng,
        };
        let root = b.build(idx, 0);
        debug_assert_eq!(root, 0);
        RegressionTree { nodes: b.nodes }
    }

    /// Fits on all rows.
    pub fn fit(x: &FeatureMatrix, y: &[f64], params: TreeParams, rng: &mut StdRng) -> Self {
        let idx: Vec<u32> = (0..u32::try_from(x.n_rows()).expect("row count fits u32")).collect();
        Self::fit_on(x, y, &idx, params, rng)
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Regressor for RegressionTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    kind,
                    left,
                    right,
                } => {
                    let x = row[*feature];
                    let goes_left = match kind {
                        FeatureKind::Numeric => x <= *threshold,
                        FeatureKind::Categorical => x == *threshold,
                    };
                    cur = if goes_left { *left } else { *right };
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rankfair_data::Dataset;

    fn xy(f: impl Fn(f64, f64) -> f64, n: usize) -> (FeatureMatrix, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i * 7 % n) as f64).collect();
        let y: Vec<f64> = a.iter().zip(&b).map(|(&x0, &x1)| f(x0, x1)).collect();
        let ds = Dataset::builder()
            .numeric("a", a)
            .numeric("b", b)
            .build()
            .unwrap();
        (FeatureMatrix::from_dataset(&ds), y)
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let (x, y) = xy(|a, _| if a < 50.0 { 1.0 } else { 5.0 }, 100);
        let mut rng = StdRng::seed_from_u64(0);
        let tree = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        for r in 0..x.n_rows() {
            assert_eq!(tree.predict_row(x.row(r)), y[r]);
        }
    }

    #[test]
    fn reduces_error_versus_mean_on_linear_target() {
        let (x, y) = xy(|a, b| 2.0 * a + 0.5 * b, 200);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let sse_mean: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let sse_tree: f64 = (0..x.n_rows())
            .map(|r| (tree.predict_row(x.row(r)) - y[r]).powi(2))
            .sum();
        assert!(sse_tree < sse_mean * 0.05, "{sse_tree} vs {sse_mean}");
    }

    #[test]
    fn categorical_splits_use_equality() {
        let ds = Dataset::builder()
            .categorical_from_str("c", &["a", "b", "c", "a", "b", "c", "a", "b"])
            .build()
            .unwrap();
        let x = FeatureMatrix::from_dataset(&ds);
        // Target depends only on whether c == "b" (code 1).
        let y: Vec<f64> = (0..8)
            .map(|r| if x.row(r)[0] == 1.0 { 10.0 } else { 0.0 })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        for r in 0..8 {
            assert_eq!(tree.predict_row(x.row(r)), y[r]);
        }
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = xy(|a, b| a * b, 300);
        let mut rng = StdRng::seed_from_u64(3);
        let stump = RegressionTree::fit(
            &x,
            &y,
            TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(stump.n_nodes() <= 3);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let (x, _) = xy(|_, _| 0.0, 50);
        let y = vec![3.5; 50];
        let mut rng = StdRng::seed_from_u64(4);
        let tree = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_row(x.row(0)), 3.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xy(|a, b| a - b, 120);
        let t1 = RegressionTree::fit(&x, &y, TreeParams::default(), &mut StdRng::seed_from_u64(5));
        let t2 = RegressionTree::fit(&x, &y, TreeParams::default(), &mut StdRng::seed_from_u64(5));
        for r in 0..x.n_rows() {
            assert_eq!(t1.predict_row(x.row(r)), t2.predict_row(x.row(r)));
        }
    }
}
