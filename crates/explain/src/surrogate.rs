//! The end-to-end explanation pipeline of §V: train a surrogate of the
//! ranker, Shapley-attribute each tuple of a detected group, aggregate.

use rand::{rngs::StdRng, SeedableRng};
use rankfair_data::Dataset;
use rankfair_rank::Ranking;

use crate::features::FeatureMatrix;
use crate::forest::{Forest, ForestParams};
use crate::shapley::{shapley_for_row, Regressor};
use crate::tree::TreeParams;

/// Knobs for the explanation pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ExplainConfig {
    /// Forest hyper-parameters.
    pub forest: ForestParams,
    /// Permutation/background samples per explained tuple.
    pub shapley_samples: usize,
    /// Cap on the number of group tuples explained (larger groups are
    /// deterministically strided down to this many — attribution averages
    /// converge long before hundreds of tuples).
    pub max_group_tuples: usize,
    /// RNG seed for the Shapley sampling.
    pub seed: u64,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            forest: ForestParams::default(),
            shapley_samples: 48,
            max_group_tuples: 120,
            seed: 7,
        }
    }
}

impl ExplainConfig {
    /// A cheaper configuration for tests and doc examples.
    pub fn fast() -> Self {
        ExplainConfig {
            forest: ForestParams {
                n_trees: 12,
                tree: TreeParams {
                    max_depth: 6,
                    ..TreeParams::default()
                },
                seed: 42,
            },
            shapley_samples: 16,
            max_group_tuples: 40,
            seed: 7,
        }
    }
}

/// A surrogate regression model `M_R` fitted on `D_R = {(t, rank(t))}`.
pub struct RankSurrogate {
    features: FeatureMatrix,
    forest: Forest,
    target: Vec<f64>,
    config: ExplainConfig,
}

/// Aggregated Shapley explanation for one group (Figures 10a–c).
#[derive(Debug, Clone)]
pub struct GroupExplanation {
    /// Feature names, aligned with `values`.
    pub attributes: Vec<String>,
    /// Aggregated Shapley values `s_i = Σ_t s_i^t / |group|`.
    pub values: Vec<f64>,
    /// Number of tuples actually explained (after the cap).
    pub tuples_explained: usize,
}

impl GroupExplanation {
    /// Attributes sorted by the magnitude of their aggregated Shapley
    /// value, largest first — the order Figures 10a–c display.
    pub fn ranked_attributes(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .attributes
            .iter()
            .cloned()
            .zip(self.values.iter().copied())
            .collect();
        pairs.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .expect("Shapley values are finite")
        });
        pairs
    }

    /// The `top` attributes as a text bar chart (the paper shows the six
    /// largest).
    pub fn render(&self, top: usize) -> String {
        let ranked = self.ranked_attributes();
        let max = ranked.first().map_or(1.0, |(_, v)| v.abs()).max(1e-12);
        let width = ranked
            .iter()
            .take(top)
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        for (name, v) in ranked.iter().take(top) {
            let bar = "█".repeat(((v.abs() / max) * 40.0).round() as usize);
            out.push_str(&format!("{name:width$}  {v:>10.3}  {bar}\n"));
        }
        out
    }
}

impl RankSurrogate {
    /// Trains the surrogate: features = every column of `ds`, target =
    /// 1-based rank of each tuple under `ranking`.
    pub fn fit(ds: &Dataset, ranking: &Ranking, config: &ExplainConfig) -> Self {
        let features = FeatureMatrix::from_dataset(ds);
        let target = ranking.rank_vector();
        let forest = Forest::fit(&features, &target, config.forest);
        RankSurrogate {
            features,
            forest,
            target,
            config: *config,
        }
    }

    /// The trained forest.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// In-sample R² of the surrogate against the true ranks — a sanity
    /// check that `M_R` actually imitates the ranker.
    pub fn fit_quality(&self) -> f64 {
        self.forest.r2(&self.features, &self.target)
    }

    /// Shapley values for a single tuple.
    pub fn explain_tuple(&self, row: u32) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ u64::from(row));
        shapley_for_row(
            &self.forest,
            &self.features,
            self.features.row(row as usize),
            self.config.shapley_samples,
            &mut rng,
        )
    }

    /// Aggregated Shapley values for a group of tuples — the paper’s
    /// `s_i = Σ_{t ⊨ p} s_i^t / s_D(p)`.
    pub fn explain_group(&self, group: &[u32]) -> GroupExplanation {
        assert!(!group.is_empty(), "cannot explain an empty group");
        // Deterministic striding keeps every region of the group
        // represented when capping.
        let cap = self.config.max_group_tuples.max(1);
        let stride = group.len().div_ceil(cap);
        let rows: Vec<u32> = group.iter().copied().step_by(stride).collect();
        let m = self.features.n_features();
        let mut sums = vec![0.0; m];
        for &row in &rows {
            let phi = self.explain_tuple(row);
            for (s, p) in sums.iter_mut().zip(&phi) {
                *s += p;
            }
        }
        for s in &mut sums {
            *s /= rows.len() as f64;
        }
        GroupExplanation {
            attributes: self.features.names().to_vec(),
            values: sums,
            tuples_explained: rows.len(),
        }
    }

    /// Predicted rank for a tuple (diagnostics).
    pub fn predict_rank(&self, row: u32) -> f64 {
        self.forest.predict_row(self.features.row(row as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    fn surrogate() -> RankSurrogate {
        let ds = students_fig1();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        RankSurrogate::fit(&ds, &ranking, &ExplainConfig::fast())
    }

    #[test]
    fn surrogate_imitates_the_ranker() {
        let s = surrogate();
        assert!(s.fit_quality() > 0.8, "R² = {}", s.fit_quality());
    }

    #[test]
    fn grade_dominates_the_explanation_of_a_low_graded_group() {
        // The Fig. 1 ranking is (almost) a function of Grade alone, so for
        // a group detected as under-represented (here: the low-graded
        // students) the aggregated Shapley value of Grade must dwarf the
        // demographic attributes — the §VI-C claim that the method reveals
        // the actual scoring attributes of a black-box ranker. Note the
        // aggregation is only meaningful for a *subgroup*: over the whole
        // dataset every feature's average attribution cancels to ≈ 0.
        let s = surrogate();
        let ds = students_fig1();
        let grade_idx = ds.column_index("Grade").unwrap();
        let group: Vec<u32> = (0..16u32)
            .filter(|&r| ds.value(r as usize, grade_idx) < 9.0)
            .collect();
        let ex = s.explain_group(&group);
        let ranked = ex.ranked_attributes();
        assert_eq!(ranked[0].0, "Grade");
        assert!(
            ranked[0].1.abs() > 2.0 * ranked[1].1.abs(),
            "ranked = {ranked:?}"
        );
    }

    #[test]
    fn low_ranked_group_has_positive_rank_attribution_from_grade() {
        // Tuples with low grades: Grade should push their predicted rank
        // up (larger rank = worse position), i.e. positive Shapley value
        // on the rank target.
        let s = surrogate();
        let ds = students_fig1();
        let grade_idx = ds.column_index("Grade").unwrap();
        let low: Vec<u32> = (0..16u32)
            .filter(|&r| ds.value(r as usize, grade_idx) < 8.0)
            .collect();
        let ex = s.explain_group(&low);
        let gi = ex.attributes.iter().position(|n| n == "Grade").unwrap();
        assert!(ex.values[gi] > 0.0);
    }

    #[test]
    fn group_capping_strides_deterministically() {
        let s = surrogate();
        let group: Vec<u32> = (0..16).collect();
        let e1 = s.explain_group(&group);
        let e2 = s.explain_group(&group);
        assert_eq!(e1.values, e2.values);
        assert!(e1.tuples_explained <= 16);
    }

    #[test]
    fn render_lists_top_attributes() {
        // Use the low-graded group (as the tests above do): for an
        // arbitrary group the top-3 attribution order is seed-sensitive,
        // but for a grade-selected group Grade must dominate.
        let s = surrogate();
        let ds = students_fig1();
        let grade_idx = ds.column_index("Grade").unwrap();
        let group: Vec<u32> = (0..16u32)
            .filter(|&r| ds.value(r as usize, grade_idx) < 9.0)
            .collect();
        let ex = s.explain_group(&group);
        let text = ex.render(3);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("Grade"));
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_rejected() {
        surrogate().explain_group(&[]);
    }
}
