//! Value-distribution comparison between the top-k tuples and a detected
//! group (Figures 10d–f of the paper).
//!
//! “Since the number of tuples in the top-k and the detected group differ,
//! the y-axis represents the proportion of tuples (rather than their
//! count)” — so both sides are normalized to proportions over a shared
//! set of value labels.

use rankfair_data::{bucketize, ColumnData, Dataset};

/// A two-population histogram over the values of one attribute.
#[derive(Debug, Clone)]
pub struct DistributionComparison {
    /// Attribute the histogram describes.
    pub attribute: String,
    /// Value labels, in display order.
    pub labels: Vec<String>,
    /// Proportion of the top-k tuples per label (sums to 1).
    pub topk: Vec<f64>,
    /// Proportion of the group tuples per label (sums to 1).
    pub group: Vec<f64>,
}

/// Number of display bins for numeric attributes (the paper’s figures use
/// a handful of buckets).
const NUMERIC_BINS: usize = 6;

/// Builds the comparison for column `col` of `ds` between `topk_rows` and
/// `group_rows`.
///
/// Categorical columns use their dictionary; numeric columns are binned
/// equal-width over the union of both populations.
pub fn compare_distributions(
    ds: &Dataset,
    col: &str,
    topk_rows: &[u32],
    group_rows: &[u32],
) -> DistributionComparison {
    let column = ds
        .column_by_name(col)
        .unwrap_or_else(|| panic!("no column named `{col}`"));
    assert!(
        !topk_rows.is_empty() && !group_rows.is_empty(),
        "both populations must be non-empty"
    );
    let (labels, assign): (Vec<String>, Box<dyn Fn(usize) -> usize>) = match column.data() {
        ColumnData::Categorical { labels, .. } => {
            let labels = labels.clone();
            (labels, Box::new(|row| usize::from(column.code(row))))
        }
        ColumnData::Numeric { values } => {
            let pool: Vec<f64> = topk_rows
                .iter()
                .chain(group_rows)
                .map(|&r| values[r as usize])
                .collect();
            let edges =
                bucketize::bin_edges(&pool, NUMERIC_BINS, bucketize::BinStrategy::EqualWidth)
                    .expect("non-empty numeric pool");
            let labels: Vec<String> = (0..edges.len() - 1)
                .map(|i| bucketize::bin_label(&edges, i))
                .collect();
            (
                labels,
                Box::new(move |row| bucketize::bin_index(values[row], &edges)),
            )
        }
    };
    let n_labels = labels.len();
    let histogram = |rows: &[u32]| -> Vec<f64> {
        let mut counts = vec![0usize; n_labels];
        for &r in rows {
            counts[assign(r as usize)] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / rows.len() as f64)
            .collect()
    };
    let topk = histogram(topk_rows);
    let group = histogram(group_rows);
    DistributionComparison {
        attribute: col.to_string(),
        labels,
        topk,
        group,
    }
}

impl DistributionComparison {
    /// Total variation distance between the two distributions — a single
    /// number for “how different the group looks” on this attribute.
    pub fn total_variation(&self) -> f64 {
        self.topk
            .iter()
            .zip(&self.group)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0
    }

    /// Renders the two distributions side by side as a text table.
    pub fn render(&self) -> String {
        let width = self
            .labels
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(5)
            .max("value".len());
        let mut out = format!(
            "{:width$}  {:>8}  {:>8}\n",
            format!("{} value", self.attribute),
            "top-k",
            "group",
            width = width + 6
        );
        for (i, label) in self.labels.iter().enumerate() {
            out.push_str(&format!(
                "{:width$}  {:>7.1}%  {:>7.1}%\n",
                label,
                self.topk[i] * 100.0,
                self.group[i] * 100.0,
                width = width + 6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    #[test]
    fn fig1_grade_distribution_separates_topk_from_low_group() {
        let ds = students_fig1();
        let order = fig1_rank_order();
        let topk: Vec<u32> = order[..5].to_vec();
        let bottom: Vec<u32> = order[11..].to_vec();
        let cmp = compare_distributions(&ds, "Grade", &topk, &bottom);
        // Proportions sum to 1 on both sides.
        assert!((cmp.topk.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((cmp.group.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The populations are disjoint in grade, so the distance is 1.
        assert!((cmp.total_variation() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_comparison_uses_dictionary_labels() {
        let ds = students_fig1();
        let cmp = compare_distributions(&ds, "School", &[11, 4, 1], &[0, 2, 3]);
        assert_eq!(cmp.labels, vec!["MS".to_string(), "GP".to_string()]);
        // top rows 12,5,2 → MS,MS? tuple12=GP, tuple5=MS, tuple2=MS.
        assert!((cmp.topk[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((cmp.topk[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn identical_populations_have_zero_distance() {
        let ds = students_fig1();
        let rows: Vec<u32> = (0..16).collect();
        let cmp = compare_distributions(&ds, "Gender", &rows, &rows);
        assert_eq!(cmp.total_variation(), 0.0);
    }

    #[test]
    fn render_contains_labels_and_percentages() {
        let ds = students_fig1();
        let cmp = compare_distributions(&ds, "Address", &[11, 4], &[0, 1]);
        let text = cmp.render();
        assert!(text.contains("Address value"));
        assert!(text.contains('%'));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_rejected() {
        let ds = students_fig1();
        compare_distributions(&ds, "Gender", &[], &[0]);
    }
}
