//! Permutation feature importance — a cheaper, global attribution method
//! used as a cross-check for the Shapley analysis.
//!
//! Shapley values explain *one group's* placement; permutation importance
//! asks a coarser question — how much does the surrogate's fit degrade
//! when one feature is scrambled across the whole dataset? If the two
//! methods disagree wildly about which attributes drive a ranking, the
//! surrogate (or the sampling budget) deserves scrutiny; the workspace's
//! ablation experiments report both.

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

use crate::features::FeatureMatrix;
use crate::shapley::Regressor;

/// Per-feature importance scores (mean-squared-error increase when the
/// feature is permuted).
#[derive(Debug, Clone)]
pub struct FeatureImportance {
    /// Feature names, aligned with `scores`.
    pub attributes: Vec<String>,
    /// MSE increase per feature (≥ 0 up to sampling noise).
    pub scores: Vec<f64>,
}

impl FeatureImportance {
    /// Attributes sorted by importance, largest first.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .attributes
            .iter()
            .cloned()
            .zip(self.scores.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        pairs
    }
}

fn mse(
    model: &dyn Regressor,
    x: &FeatureMatrix,
    y: &[f64],
    permuted: Option<(usize, &[u32])>,
) -> f64 {
    let m = x.n_features();
    let mut buf = vec![0.0; m];
    let mut total = 0.0;
    for r in 0..x.n_rows() {
        buf.copy_from_slice(x.row(r));
        if let Some((f, perm)) = permuted {
            buf[f] = x.row(perm[r] as usize)[f];
        }
        let e = model.predict_row(&buf) - y[r];
        total += e * e;
    }
    total / x.n_rows() as f64
}

/// Computes permutation importance of every feature: the increase in MSE
/// against `y` when that feature's column is shuffled (`repeats` times,
/// averaged). Deterministic given `seed`.
pub fn permutation_importance(
    model: &dyn Regressor,
    x: &FeatureMatrix,
    y: &[f64],
    repeats: usize,
    seed: u64,
) -> FeatureImportance {
    assert_eq!(x.n_rows(), y.len(), "feature/target length mismatch");
    assert!(repeats > 0, "need at least one repeat");
    let baseline = mse(model, x, y, None);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..u32::try_from(x.n_rows()).expect("row count fits u32")).collect();
    let mut scores = Vec::with_capacity(x.n_features());
    for f in 0..x.n_features() {
        let mut acc = 0.0;
        for _ in 0..repeats {
            perm.shuffle(&mut rng);
            acc += mse(model, x, y, Some((f, &perm))) - baseline;
        }
        scores.push(acc / repeats as f64);
    }
    FeatureImportance {
        attributes: x.names().to_vec(),
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{Forest, ForestParams};
    use rankfair_data::Dataset;

    fn data() -> (FeatureMatrix, Vec<f64>) {
        let n = 300;
        let a: Vec<f64> = (0..n).map(|i| (i % 29) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 7) % 3) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| 5.0 * a[i] + 0.5 * b[i]).collect();
        let ds = Dataset::builder()
            .numeric("a", a)
            .numeric("b", b)
            .numeric("noise", noise)
            .build()
            .unwrap();
        (FeatureMatrix::from_dataset(&ds), y)
    }

    #[test]
    fn dominant_feature_gets_highest_importance() {
        let (x, y) = data();
        let forest = Forest::fit(&x, &y, ForestParams::default());
        let imp = permutation_importance(&forest, &x, &y, 3, 11);
        let ranked = imp.ranked();
        assert_eq!(ranked[0].0, "a");
        assert!(ranked[0].1 > ranked[1].1);
        // The pure-noise feature contributes ~nothing.
        let noise_score = imp.scores[imp.attributes.iter().position(|n| n == "noise").unwrap()];
        assert!(noise_score < ranked[0].1 * 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = data();
        let forest = Forest::fit(&x, &y, ForestParams::default());
        let i1 = permutation_importance(&forest, &x, &y, 2, 5);
        let i2 = permutation_importance(&forest, &x, &y, 2, 5);
        assert_eq!(i1.scores, i2.scores);
    }

    #[test]
    fn agrees_with_shapley_on_the_top_attribute() {
        // The ablation claim: both attribution methods identify the same
        // dominant feature on a clean linear target.
        use crate::shapley::shapley_for_row;
        use rand::SeedableRng;
        let (x, y) = data();
        let forest = Forest::fit(&x, &y, ForestParams::default());
        let imp = permutation_importance(&forest, &x, &y, 2, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let phi = shapley_for_row(&forest, &x, x.row(7), 400, &mut rng);
        let shapley_top = phi
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(i, _)| &x.names()[i])
            .unwrap();
        assert_eq!(imp.ranked()[0].0.as_str(), shapley_top);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let (x, y) = data();
        let forest = Forest::fit(&x, &y, ForestParams::default());
        permutation_importance(&forest, &x, &y, 0, 1);
    }
}
