//! Result analysis via Shapley values (§V of the paper).
//!
//! Given a group detected as biased, an analyst wants to know *why* the
//! ranking placed the group low. The paper’s method, reproduced here:
//!
//! 1. train a regression model `M_R` on `D_R = {(t, rank(t))}` — a
//!    surrogate of the black-box ranker ([`RankSurrogate`], a random
//!    forest over mixed categorical/numeric features built from scratch in
//!    `tree` / `forest`);
//! 2. compute Shapley values of `M_R` for every tuple of the detected
//!    group with a permutation-sampling estimator ([`shapley_for_row`], after
//!    Štrumbelj & Kononenko, which the paper cites as its foundation);
//! 3. aggregate per attribute over the group,
//!    `s_i = Σ_{t ⊨ p} s_i^t / s_D(p)` ([`GroupExplanation`]), and report
//!    the attributes with the largest aggregated values (Figures 10a–c);
//! 4. compare the value distribution of the top attribute between the
//!    top-k tuples and the group ([`distribution`], Figures 10d–f).
//!
//! ```
//! use rankfair_explain::{ExplainConfig, RankSurrogate};
//! use rankfair_data::examples::{students_fig1, fig1_rank_order};
//! use rankfair_rank::Ranking;
//!
//! let ds = students_fig1();
//! let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
//! let surrogate = RankSurrogate::fit(&ds, &ranking, &ExplainConfig::fast());
//! // Grade is the attribute that actually drives this ranking, so for a
//! // group of low-graded students its aggregated Shapley value dominates.
//! let group: Vec<u32> = vec![3, 5, 6, 7, 9, 14]; // grades 4–7
//! let explanation = surrogate.explain_group(&group);
//! assert_eq!(explanation.ranked_attributes()[0].0, "Grade");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
mod features;
mod forest;
mod importance;
mod shapley;
mod surrogate;
mod tree;

pub use features::{FeatureKind, FeatureMatrix};
pub use forest::{Forest, ForestParams};
pub use importance::{permutation_importance, FeatureImportance};
pub use shapley::{shapley_for_row, Regressor};
pub use surrogate::{ExplainConfig, GroupExplanation, RankSurrogate};
pub use tree::{RegressionTree, TreeParams};
