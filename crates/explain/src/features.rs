use rankfair_data::{ColumnData, Dataset};

/// How a feature’s raw `f64` values should be interpreted by tree splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Ordered values: splits are `x ≤ threshold`.
    Numeric,
    /// Dictionary codes: splits are `x == value`.
    Categorical,
}

/// A dense row-major feature matrix derived from a [`Dataset`].
///
/// Categorical columns contribute their dictionary code (with
/// [`FeatureKind::Categorical`], so trees use equality splits rather than
/// pretending codes are ordered); numeric columns contribute their value.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    names: Vec<String>,
    kinds: Vec<FeatureKind>,
    data: Vec<f64>,
    n_rows: usize,
}

impl FeatureMatrix {
    /// Builds the matrix from every column of `ds`.
    pub fn from_dataset(ds: &Dataset) -> Self {
        Self::from_dataset_excluding(ds, &[])
    }

    /// Builds the matrix excluding the named columns (e.g. a column that
    /// *is* the regression target).
    pub fn from_dataset_excluding(ds: &Dataset, exclude: &[&str]) -> Self {
        let cols: Vec<usize> = (0..ds.n_cols())
            .filter(|&i| !exclude.contains(&ds.column(i).name()))
            .collect();
        let n_rows = ds.n_rows();
        let mut names = Vec::with_capacity(cols.len());
        let mut kinds = Vec::with_capacity(cols.len());
        let mut data = vec![0.0; n_rows * cols.len()];
        for (f, &c) in cols.iter().enumerate() {
            let col = ds.column(c);
            names.push(col.name().to_string());
            match col.data() {
                ColumnData::Categorical { codes, .. } => {
                    kinds.push(FeatureKind::Categorical);
                    for (r, &code) in codes.iter().enumerate() {
                        data[r * cols.len() + f] = f64::from(code);
                    }
                }
                ColumnData::Numeric { values } => {
                    kinds.push(FeatureKind::Numeric);
                    for (r, &v) in values.iter().enumerate() {
                        data[r * cols.len() + f] = v;
                    }
                }
            }
        }
        FeatureMatrix {
            names,
            kinds,
            data,
            n_rows,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.names.len()
    }

    /// Feature names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Feature kinds, in column order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// The feature vector of `row`.
    pub fn row(&self, row: usize) -> &[f64] {
        let m = self.n_features();
        &self.data[row * m..(row + 1) * m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::students_fig1;

    #[test]
    fn shape_and_kinds() {
        let ds = students_fig1();
        let fm = FeatureMatrix::from_dataset(&ds);
        assert_eq!(fm.n_rows(), 16);
        assert_eq!(fm.n_features(), 5);
        assert_eq!(fm.kinds()[0], FeatureKind::Categorical); // Gender
        assert_eq!(fm.kinds()[4], FeatureKind::Numeric); // Grade
        assert_eq!(fm.names()[4], "Grade");
    }

    #[test]
    fn rows_carry_codes_and_values() {
        let ds = students_fig1();
        let fm = FeatureMatrix::from_dataset(&ds);
        // Row 0 (tuple 1): F, MS, R, failures "1", grade 11.
        let r0 = fm.row(0);
        assert_eq!(r0[0], 0.0); // F encodes first
        assert_eq!(r0[4], 11.0);
        // Row 11 (tuple 12): grade 20.
        assert_eq!(fm.row(11)[4], 20.0);
    }

    #[test]
    fn exclusion_removes_columns() {
        let ds = students_fig1();
        let fm = FeatureMatrix::from_dataset_excluding(&ds, &["Grade"]);
        assert_eq!(fm.n_features(), 4);
        assert!(!fm.names().iter().any(|n| n == "Grade"));
    }
}
