//! Random-forest regressor: bagged [`RegressionTree`]s with per-split
//! feature subsampling. Serves as the surrogate `M_R` of the paper’s §V.

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::features::FeatureMatrix;
use crate::shapley::Regressor;
use crate::tree::{RegressionTree, TreeParams};

/// Hyper-parameters for the forest.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Parameters of each tree; `features_per_split = 0` is replaced by
    /// ⌈√m⌉ at fit time.
    pub tree: TreeParams,
    /// RNG seed (bootstrap + feature subsampling).
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 30,
            tree: TreeParams::default(),
            seed: 42,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct Forest {
    trees: Vec<RegressionTree>,
}

impl Forest {
    /// Fits the forest on `(x, y)`.
    pub fn fit(x: &FeatureMatrix, y: &[f64], params: ForestParams) -> Self {
        assert_eq!(x.n_rows(), y.len(), "feature/target length mismatch");
        assert!(params.n_trees > 0, "need at least one tree");
        let n = x.n_rows();
        let mut tree_params = params.tree;
        if tree_params.features_per_split == 0 {
            tree_params.features_per_split = (x.n_features() as f64).sqrt().ceil() as usize;
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n32 = u32::try_from(n).expect("row count fits u32");
        let trees = (0..params.n_trees)
            .map(|_| {
                // Bootstrap sample (with replacement).
                let idx: Vec<u32> = (0..n).map(|_| rng.random_range(0..n32)).collect();
                RegressionTree::fit_on(x, y, &idx, tree_params, &mut rng)
            })
            .collect();
        Forest { trees }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// In-sample R²: 1 − SSE/SST, a cheap sanity metric used by tests and
    /// the experiment harness to confirm the surrogate actually imitates
    /// the ranker.
    pub fn r2(&self, x: &FeatureMatrix, y: &[f64]) -> f64 {
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let sst: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let sse: f64 = (0..x.n_rows())
            .map(|r| (self.predict_row(x.row(r)) - y[r]).powi(2))
            .sum();
        1.0 - sse / sst.max(1e-12)
    }
}

impl Regressor for Forest {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        sum / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::Dataset;

    fn linear_data(n: usize) -> (FeatureMatrix, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| (i % 37) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 11) % 23) as f64).collect();
        let y: Vec<f64> = a.iter().zip(&b).map(|(&x0, &x1)| 3.0 * x0 - x1).collect();
        let ds = Dataset::builder()
            .numeric("a", a)
            .numeric("b", b)
            .build()
            .unwrap();
        (FeatureMatrix::from_dataset(&ds), y)
    }

    #[test]
    fn forest_fits_linear_target_well() {
        let (x, y) = linear_data(400);
        let forest = Forest::fit(&x, &y, ForestParams::default());
        assert!(forest.r2(&x, &y) > 0.9, "R² = {}", forest.r2(&x, &y));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linear_data(150);
        let f1 = Forest::fit(&x, &y, ForestParams::default());
        let f2 = Forest::fit(&x, &y, ForestParams::default());
        for r in 0..x.n_rows() {
            assert_eq!(f1.predict_row(x.row(r)), f2.predict_row(x.row(r)));
        }
        let f3 = Forest::fit(
            &x,
            &y,
            ForestParams {
                seed: 7,
                ..ForestParams::default()
            },
        );
        let differs = (0..x.n_rows()).any(|r| f1.predict_row(x.row(r)) != f3.predict_row(x.row(r)));
        assert!(differs);
    }

    #[test]
    fn predictions_within_target_range() {
        let (x, y) = linear_data(200);
        let forest = Forest::fit(&x, &y, ForestParams::default());
        let (lo, hi) = y
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        for r in 0..x.n_rows() {
            let p = forest.predict_row(x.row(r));
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let (x, y) = linear_data(10);
        Forest::fit(
            &x,
            &y,
            ForestParams {
                n_trees: 0,
                ..ForestParams::default()
            },
        );
    }
}
