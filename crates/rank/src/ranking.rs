use std::fmt;

use rankfair_data::TupleId;

/// Error returned when a ranking is not a permutation of `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankingError(pub String);

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ranking: {}", self.0)
    }
}

impl std::error::Error for RankingError {}

/// A total ranking of the dataset’s rows.
///
/// `order()[p]` is the row at rank position `p` (0-based: position 0 is the
/// best-ranked item, the paper’s rank 1), and `position(row)` is the inverse
/// map. The top-k of the paper, `R_k(D)`, is `order()[..k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ranking {
    order: Vec<TupleId>,
    position: Vec<u32>,
}

impl Ranking {
    /// Builds a ranking from rows listed best-first, validating that it is
    /// a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<TupleId>) -> Result<Self, RankingError> {
        let n = order.len();
        let mut position = vec![u32::MAX; n];
        for (p, &row) in order.iter().enumerate() {
            let r = row as usize;
            if r >= n {
                return Err(RankingError(format!("row {row} out of range 0..{n}")));
            }
            if position[r] != u32::MAX {
                return Err(RankingError(format!("row {row} appears twice")));
            }
            position[r] = p as u32;
        }
        Ok(Ranking { order, position })
    }

    /// Ranks rows by `score` descending, breaking ties by row id (stable).
    pub fn from_scores_desc(scores: &[f64]) -> Self {
        let mut order: Vec<TupleId> =
            (0..u32::try_from(scores.len()).expect("row count fits TupleId")).collect();
        // Stable sort keeps row-id order within equal scores; total_cmp
        // gives NaN a fixed place instead of a panic (NaN sorts last in
        // a descending ranking).
        order.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        // lint:allow(panic-reachability) -- sorting 0..n yields a permutation by construction
        Self::from_order(order).expect("sort of 0..n is a permutation")
    }

    /// Number of ranked rows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Rows best-first.
    pub fn order(&self) -> &[TupleId] {
        &self.order
    }

    /// The top-k rows, `R_k(D)` in the paper’s notation. Clamps `k` to the
    /// dataset size.
    pub fn top_k(&self, k: usize) -> &[TupleId] {
        &self.order[..k.min(self.order.len())]
    }

    /// The row at 0-based rank position `p` — `R(D)[p+1]` in the paper.
    pub fn at(&self, p: usize) -> TupleId {
        self.order[p]
    }

    /// 0-based rank position of `row`.
    pub fn position(&self, row: TupleId) -> usize {
        self.position[row as usize] as usize
    }

    /// 1-based rank (the paper’s `Rank` column) of `row`.
    pub fn rank(&self, row: TupleId) -> usize {
        self.position(row) + 1
    }

    /// The 1-based rank of every row, indexed by row id. This is the
    /// regression target `D_R = {(t, R(D)[t])}` used by the explanation
    /// module (§V).
    pub fn rank_vector(&self) -> Vec<f64> {
        self.position.iter().map(|&p| (p + 1) as f64).collect()
    }

    /// 1-based ranks of the given rows, sorted ascending — handy when a
    /// report wants to show where a detected group's members sit.
    pub fn group_ranks(&self, rows: &[TupleId]) -> Vec<usize> {
        let mut ranks: Vec<usize> = rows.iter().map(|&r| self.rank(r)).collect();
        ranks.sort_unstable();
        ranks
    }

    /// Mean 1-based rank of the given rows (`NaN`-free: returns `None` for
    /// an empty group).
    pub fn mean_rank(&self, rows: &[TupleId]) -> Option<f64> {
        if rows.is_empty() {
            return None;
        }
        Some(rows.iter().map(|&r| self.rank(r) as f64).sum::<f64>() / rows.len() as f64)
    }

    /// How many of the given rows appear in the top-`k` — `s_Rk` computed
    /// directly from the ranking for callers without a bitmap index.
    pub fn count_in_top_k(&self, rows: &[TupleId], k: usize) -> usize {
        rows.iter().filter(|&&r| self.position(r) < k).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_order_validates_permutation() {
        assert!(Ranking::from_order(vec![0, 1, 2]).is_ok());
        assert!(Ranking::from_order(vec![0, 0, 2]).is_err());
        assert!(Ranking::from_order(vec![0, 3]).is_err());
    }

    #[test]
    fn positions_are_inverse_of_order() {
        let r = Ranking::from_order(vec![2, 0, 1]).unwrap();
        assert_eq!(r.position(2), 0);
        assert_eq!(r.position(0), 1);
        assert_eq!(r.position(1), 2);
        assert_eq!(r.rank(2), 1);
        assert_eq!(r.at(0), 2);
    }

    #[test]
    fn top_k_clamps() {
        let r = Ranking::from_order(vec![1, 0]).unwrap();
        assert_eq!(r.top_k(1), &[1]);
        assert_eq!(r.top_k(10), &[1, 0]);
    }

    #[test]
    fn from_scores_desc_breaks_ties_by_row() {
        let r = Ranking::from_scores_desc(&[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(r.order(), &[1, 2, 3, 0]);
    }

    #[test]
    fn rank_vector_is_one_based() {
        let r = Ranking::from_order(vec![1, 0]).unwrap();
        assert_eq!(r.rank_vector(), vec![2.0, 1.0]);
    }

    #[test]
    fn group_helpers() {
        let r = Ranking::from_order(vec![2, 0, 3, 1]).unwrap();
        assert_eq!(r.group_ranks(&[1, 2]), vec![1, 4]);
        assert_eq!(r.mean_rank(&[1, 2]), Some(2.5));
        assert_eq!(r.mean_rank(&[]), None);
        assert_eq!(r.count_in_top_k(&[1, 2, 3], 2), 1); // only row 2 in top-2
        assert_eq!(r.count_in_top_k(&[1, 2, 3], 3), 2);
    }
}
