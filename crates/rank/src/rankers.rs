use rankfair_data::Dataset;

use crate::{Ranker, Ranking};

/// Extracts a sortable numeric key from a column: numeric columns yield the
/// value; categorical columns yield the label parsed as a number when
/// possible (the running example’s `Failures` column stores "0"/"1"/"2" as
/// labels), otherwise the dictionary code.
fn sort_value(ds: &Dataset, col: usize, row: usize) -> f64 {
    let c = ds.column(col);
    if let Some(vals) = c.values() {
        vals[row]
    } else {
        let code = c.code(row);
        c.label_of(code)
            .and_then(|l| l.trim().parse::<f64>().ok())
            .unwrap_or(f64::from(code))
    }
}

/// One sort criterion of an [`AttributeRanker`].
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column name.
    pub column: String,
    /// Sort descending (higher is better) when `true`.
    pub descending: bool,
}

impl SortKey {
    /// Descending key (higher value ranks first).
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            descending: true,
        }
    }

    /// Ascending key (lower value ranks first).
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey {
            column: column.into(),
            descending: false,
        }
    }
}

/// Lexicographic multi-key ranker.
///
/// The running example’s ranker is
/// `AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")])`:
/// students are ranked by grade, and “in the case of similar grades,
/// students with fewer failures are ranked higher” (Example 2.1). The
/// Student-dataset experiments rank by `G3` alone.
#[derive(Debug, Clone)]
pub struct AttributeRanker {
    keys: Vec<SortKey>,
    name: String,
}

impl AttributeRanker {
    /// Creates a ranker from sort keys, applied lexicographically.
    pub fn new(keys: Vec<SortKey>) -> Self {
        let name = format!(
            "attr({})",
            keys.iter()
                .map(|k| format!("{}{}", k.column, if k.descending { "↓" } else { "↑" }))
                .collect::<Vec<_>>()
                .join(",")
        );
        AttributeRanker { keys, name }
    }

    /// Single descending key, the most common case.
    pub fn by_desc(column: impl Into<String>) -> Self {
        Self::new(vec![SortKey::desc(column)])
    }
}

impl Ranker for AttributeRanker {
    fn rank(&self, ds: &Dataset) -> Ranking {
        let cols: Vec<(usize, bool)> = self
            .keys
            .iter()
            .map(|k| {
                let idx = ds
                    .column_index(&k.column)
                    // lint:allow(panic-reachability) -- the service rejects unknown ranking columns with BadRequest before calling rank(); this guards direct library misuse
                    .unwrap_or_else(|| panic!("no column named `{}`", k.column));
                (idx, k.descending)
            })
            .collect();
        let mut order: Vec<u32> =
            (0..u32::try_from(ds.n_rows()).expect("row count fits TupleId")).collect();
        order.sort_by(|&a, &b| {
            for &(col, desc) in &cols {
                let (va, vb) = (
                    sort_value(ds, col, a as usize),
                    sort_value(ds, col, b as usize),
                );
                // total_cmp: a NaN sort key gets a fixed position
                // instead of panicking the audit.
                let ord = va.total_cmp(&vb);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal // stable sort → ties by row id
        });
        // lint:allow(panic-reachability) -- sorting 0..n yields a permutation by construction
        Ranking::from_order(order).expect("sort of 0..n is a permutation")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// One scoring attribute of a [`LinearScoreRanker`].
#[derive(Debug, Clone)]
pub struct ScoreTerm {
    /// Column name (numeric, or categorical with numeric labels).
    pub column: String,
    /// Weight of the normalized value in the score.
    pub weight: f64,
    /// When `true`, the normalized value is flipped (`1 − norm`): used for
    /// attributes where smaller raw values mean better, like `age` in the
    /// paper’s COMPAS ranking (“higher values correspond to higher scores,
    /// except for age”).
    pub invert: bool,
}

impl ScoreTerm {
    /// Positive term with weight 1.
    pub fn plain(column: impl Into<String>) -> Self {
        ScoreTerm {
            column: column.into(),
            weight: 1.0,
            invert: false,
        }
    }

    /// Inverted term with weight 1.
    pub fn inverted(column: impl Into<String>) -> Self {
        ScoreTerm {
            column: column.into(),
            weight: 1.0,
            invert: true,
        }
    }
}

/// Ranks by a weighted sum of min–max-normalized attributes, descending.
///
/// This reproduces the paper’s COMPAS ranking method (§VI-A): “values are
/// normalized as `(val − min)/(max − min)`; higher values correspond to
/// higher scores, except for age; tuples are ranked descendingly according
/// to their scores”.
#[derive(Debug, Clone)]
pub struct LinearScoreRanker {
    terms: Vec<ScoreTerm>,
    name: String,
}

impl LinearScoreRanker {
    /// Creates the ranker from its score terms.
    pub fn new(terms: Vec<ScoreTerm>) -> Self {
        let name = format!(
            "linear({})",
            terms
                .iter()
                .map(|t| if t.invert {
                    format!("-{}", t.column)
                } else {
                    t.column.clone()
                })
                .collect::<Vec<_>>()
                .join("+")
        );
        LinearScoreRanker { terms, name }
    }

    /// Computes the score of every row (exposed for tests and the
    /// explanation module, which may want the raw score as a regression
    /// target).
    pub fn scores(&self, ds: &Dataset) -> Vec<f64> {
        let n = ds.n_rows();
        let mut scores = vec![0.0; n];
        for term in &self.terms {
            let col = ds
                .column_index(&term.column)
                // lint:allow(panic-reachability) -- the service rejects unknown ranking columns with BadRequest before calling rank(); this guards direct library misuse
                .unwrap_or_else(|| panic!("no column named `{}`", term.column));
            let raw: Vec<f64> = (0..n).map(|r| sort_value(ds, col, r)).collect();
            let min = raw.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let span = max - min;
            for (s, &v) in scores.iter_mut().zip(&raw) {
                let norm = if span == 0.0 { 0.0 } else { (v - min) / span };
                let norm = if term.invert { 1.0 - norm } else { norm };
                *s += term.weight * norm;
            }
        }
        scores
    }
}

impl Ranker for LinearScoreRanker {
    fn rank(&self, ds: &Dataset) -> Ranking {
        Ranking::from_scores_desc(&self.scores(ds))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A ranker defined by an arbitrary scoring closure — the fully black-box
/// case. Higher scores rank first; ties break by row id.
pub struct FnRanker<F: Fn(&Dataset, usize) -> f64> {
    score: F,
    name: String,
}

impl<F: Fn(&Dataset, usize) -> f64> FnRanker<F> {
    /// Wraps `score` as a ranker.
    pub fn new(name: impl Into<String>, score: F) -> Self {
        FnRanker {
            score,
            name: name.into(),
        }
    }
}

impl<F: Fn(&Dataset, usize) -> f64> Ranker for FnRanker<F> {
    fn rank(&self, ds: &Dataset) -> Ranking {
        let scores: Vec<f64> = (0..ds.n_rows()).map(|r| (self.score)(ds, r)).collect();
        Ranking::from_scores_desc(&scores)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    #[test]
    fn running_example_ranker_reproduces_fig1_rank_column() {
        let ds = students_fig1();
        let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
        let ranking = ranker.rank(&ds);
        assert_eq!(ranking.order(), fig1_rank_order().as_slice());
    }

    #[test]
    fn attribute_ranker_name_mentions_keys() {
        let r = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
        assert!(r.name().contains("Grade"));
        assert!(r.name().contains("Failures"));
    }

    #[test]
    fn linear_score_normalizes_per_attribute() {
        let ds = Dataset::builder()
            .numeric("a", vec![0.0, 5.0, 10.0])
            .numeric("b", vec![100.0, 300.0, 200.0])
            .build()
            .unwrap();
        let ranker = LinearScoreRanker::new(vec![ScoreTerm::plain("a"), ScoreTerm::plain("b")]);
        let scores = ranker.scores(&ds);
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[1], 0.5 + 1.0);
        assert_eq!(scores[2], 1.0 + 0.5);
        assert_eq!(ranker.rank(&ds).order(), &[1, 2, 0]);
    }

    #[test]
    fn inverted_term_prefers_small_values() {
        let ds = Dataset::builder()
            .numeric("age", vec![20.0, 60.0, 40.0])
            .build()
            .unwrap();
        let ranker = LinearScoreRanker::new(vec![ScoreTerm::inverted("age")]);
        assert_eq!(ranker.rank(&ds).order(), &[0, 2, 1]);
    }

    #[test]
    fn constant_column_contributes_zero() {
        let ds = Dataset::builder()
            .numeric("c", vec![7.0, 7.0])
            .build()
            .unwrap();
        let ranker = LinearScoreRanker::new(vec![ScoreTerm::plain("c")]);
        assert_eq!(ranker.scores(&ds), vec![0.0, 0.0]);
        assert_eq!(ranker.rank(&ds).order(), &[0, 1]); // tie → row order
    }

    #[test]
    fn categorical_numeric_labels_sort_numerically() {
        let ds = Dataset::builder()
            .categorical_from_str("fails", &["10", "2", "0"])
            .build()
            .unwrap();
        let ranker = AttributeRanker::new(vec![SortKey::asc("fails")]);
        assert_eq!(ranker.rank(&ds).order(), &[2, 1, 0]);
    }

    #[test]
    fn fn_ranker_is_black_box() {
        let ds = Dataset::builder()
            .numeric("x", vec![1.0, 2.0, 3.0])
            .build()
            .unwrap();
        let ranker = FnRanker::new("parity", |ds, row| {
            let v = ds.value(row, 0);
            if (v as i64) % 2 == 0 {
                v + 100.0
            } else {
                v
            }
        });
        assert_eq!(ranker.rank(&ds).order(), &[1, 2, 0]);
        assert_eq!(ranker.name(), "parity");
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        let ds = Dataset::builder().numeric("x", vec![1.0]).build().unwrap();
        AttributeRanker::by_desc("nope").rank(&ds);
    }
}
