//! Ranking substrate: black-box rankers and rankings-as-permutations.
//!
//! The paper treats the ranking algorithm `R` as a black box (§III, “the
//! ranking algorithm is treated as a black box, making the problem model
//! agnostic”). This crate provides:
//!
//! * [`Ranking`] — a validated permutation of row ids with O(1) access to
//!   both directions (`order[rank] = row`, `position[row] = rank`);
//! * the [`Ranker`] trait — anything that turns a dataset into a
//!   [`Ranking`];
//! * three concrete rankers mirroring §VI-A of the paper:
//!   [`AttributeRanker`] (Student: final grade descending, failures as
//!   tie-breaker), [`LinearScoreRanker`] (COMPAS: sum of min–max-normalized
//!   scoring attributes, age inverted), and [`FnRanker`] (arbitrary
//!   user-supplied scoring, standing in for externally provided rankings
//!   such as the German Credit creditworthiness order).
//!
//! All rankers sort **stably**, breaking remaining ties by row id, so a
//! given dataset always produces the same ranking — a property the
//! incremental detection algorithms and the test suite rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod live;
mod rankers;
mod ranking;

pub use live::{RankDelta, ScoredRanking};
pub use rankers::{AttributeRanker, FnRanker, LinearScoreRanker, ScoreTerm, SortKey};
pub use ranking::{Ranking, RankingError};

use rankfair_data::Dataset;

/// A black-box ranking algorithm.
pub trait Ranker {
    /// Produces the ranking of every row of `ds`.
    fn rank(&self, ds: &Dataset) -> Ranking;

    /// Human-readable name used in reports and benchmark output.
    fn name(&self) -> &str {
        "ranker"
    }
}
