//! The updatable ranking layer behind the live monitor: a score-backed
//! ranking that absorbs score updates and tuple insertions as **deltas**,
//! reporting exactly which rank positions changed occupant.
//!
//! A frozen [`crate::Ranking`] is a validated permutation with no memory
//! of how it was produced; re-ranking after every edit would cost a full
//! `O(n log n)` sort plus an `O(n·m)` index rebuild downstream. A
//! [`ScoredRanking`] instead keeps the scores next to the permutation and
//! repairs the order locally: a score update moves one row from its old
//! position to its new one (a rotation of the span between them), and an
//! insertion shifts the suffix after the insertion point. Both return a
//! [`RankDelta`] naming the **contiguous span of positions whose occupant
//! changed** — which is precisely the information the monitor needs to
//! patch its rank-ordered bitmap index and to bound the `k` values whose
//! top-`k` membership can have changed (only `k` in `(lo, hi]` for a pure
//! reorder over positions `[lo, hi]`).
//!
//! Ordering matches [`Ranking::from_scores_desc`] exactly: score
//! descending (or ascending when built with [`ScoredRanking::ascending`]),
//! ties broken by row id ascending — so a `ScoredRanking` built from a
//! column and the frozen ranking a [`crate::Ranker`] would produce agree
//! byte for byte, and stay in agreement after any edit sequence.

use rankfair_data::TupleId;

use crate::ranking::{Ranking, RankingError};

/// The positions a ranking edit touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankDelta {
    /// The row the edit concerned (the updated row, or the id assigned to
    /// an inserted tuple).
    pub row: TupleId,
    /// Inclusive span `(lo, hi)` of 0-based rank positions whose occupant
    /// changed, or `None` when the edit did not move anything (a score
    /// update that keeps the row in place).
    pub changed: Option<(usize, usize)>,
    /// Whether the edit inserted a new tuple (the universe grew by one).
    pub inserted: bool,
}

/// A ranking kept sorted under a live stream of score edits.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRanking {
    scores: Vec<f64>,
    /// Rows best-first (same convention as [`Ranking`]).
    order: Vec<TupleId>,
    /// `position[row]` — inverse of `order`.
    position: Vec<u32>,
    ascending: bool,
    /// Largest representable row id. Row ids are dense `0..len`, so an
    /// insert past this cap has no id: `len as TupleId` would silently
    /// wrap to 0 and corrupt `position`. Defaults to [`TupleId::MAX`];
    /// tests shrink it to exercise the overflow path without allocating
    /// 4 billion rows.
    max_row_id: usize,
}

impl ScoredRanking {
    /// Builds a descending ranking (higher scores first, ties by row id).
    ///
    /// Rejects NaN scores: they have no place in a total order.
    pub fn new(scores: Vec<f64>) -> Result<Self, RankingError> {
        Self::with_direction(scores, false)
    }

    /// Builds an ascending ranking (lower scores first).
    pub fn ascending(scores: Vec<f64>) -> Result<Self, RankingError> {
        Self::with_direction(scores, true)
    }

    fn with_direction(scores: Vec<f64>, ascending: bool) -> Result<Self, RankingError> {
        if let Some(i) = scores.iter().position(|s| s.is_nan()) {
            return Err(RankingError(format!("score of row {i} is NaN")));
        }
        let n = u32::try_from(scores.len())
            .map_err(|_| RankingError("row count exceeds the TupleId space".to_string()))?;
        let mut order: Vec<TupleId> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (scores[a as usize], scores[b as usize]);
            let key = if ascending {
                sa.total_cmp(&sb)
            } else {
                sb.total_cmp(&sa)
            };
            key.then(a.cmp(&b))
        });
        let mut position = vec![0u32; order.len()];
        for (p, &row) in order.iter().enumerate() {
            position[row as usize] = p as u32;
        }
        Ok(ScoredRanking {
            scores,
            order,
            position,
            ascending,
            max_row_id: TupleId::MAX as usize,
        })
    }

    /// Whether `additional` more inserts fit the row-id space (ids are
    /// dense `0..len`, so the last new id would be
    /// `len + additional − 1`). The monitor pre-validates batches with
    /// this so [`ScoredRanking::insert`] can never fail mid-batch.
    pub fn can_insert(&self, additional: usize) -> bool {
        match additional.checked_sub(1) {
            None => true,
            Some(extra) => self
                .scores
                .len()
                .checked_add(extra)
                .is_some_and(|last| last <= self.max_row_id),
        }
    }

    /// Shrinks the row-id capacity so tests can reach the insert-overflow
    /// path cheaply (the real cap is `TupleId::MAX`, i.e. 2³² rows).
    #[doc(hidden)]
    pub fn shrink_row_capacity_for_tests(&mut self, max_row_id: usize) {
        self.max_row_id = max_row_id;
    }

    /// Number of ranked rows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Rows best-first.
    pub fn order(&self) -> &[TupleId] {
        &self.order
    }

    /// 0-based rank position of `row`.
    pub fn position(&self, row: TupleId) -> usize {
        self.position[row as usize] as usize
    }

    /// Current score of `row`.
    pub fn score(&self, row: TupleId) -> f64 {
        self.scores[row as usize]
    }

    /// A frozen [`Ranking`] snapshot of the current order (`O(n)`).
    pub fn to_ranking(&self) -> Ranking {
        // lint:allow(panic-reachability) -- insert/remove maintain `order` as a permutation; the expect is the loud invariant check
        Ranking::from_order(self.order.clone()).expect("order is maintained as a permutation")
    }

    /// `true` when `row a` must precede `row b` under the current scores.
    fn before(&self, a: TupleId, b: TupleId) -> bool {
        let (sa, sb) = (self.scores[a as usize], self.scores[b as usize]);
        if sa == sb {
            return a < b;
        }
        if self.ascending {
            sa < sb
        } else {
            sa > sb
        }
    }

    /// Re-scores `row`, repairing the order with one local rotation.
    ///
    /// Errors on an out-of-range row or a NaN score; the ranking is
    /// untouched on error.
    pub fn update_score(&mut self, row: TupleId, score: f64) -> Result<RankDelta, RankingError> {
        if (row as usize) >= self.scores.len() {
            return Err(RankingError(format!(
                "row {row} out of range 0..{}",
                self.scores.len()
            )));
        }
        if score.is_nan() {
            return Err(RankingError(format!("new score of row {row} is NaN")));
        }
        self.scores[row as usize] = score;
        let old_pos = self.position[row as usize] as usize;
        // The array is sorted everywhere except the moved row's own slot,
        // so a binary search is only valid on the side the row moves
        // toward (those slices exclude the slot). Probe the neighbors to
        // pick the side.
        let moves_up = old_pos > 0 && self.before(row, self.order[old_pos - 1]);
        let moves_down =
            old_pos + 1 < self.order.len() && self.before(self.order[old_pos + 1], row);
        let new_pos = if moves_up {
            self.order[..old_pos].partition_point(|&r| self.before(r, row))
        } else if moves_down {
            old_pos + self.order[old_pos + 1..].partition_point(|&r| self.before(r, row))
        } else {
            old_pos
        };
        if new_pos == old_pos {
            return Ok(RankDelta {
                row,
                changed: None,
                inserted: false,
            });
        }
        if new_pos < old_pos {
            self.order[new_pos..=old_pos].rotate_right(1);
        } else {
            self.order[old_pos..=new_pos].rotate_left(1);
        }
        let (lo, hi) = (old_pos.min(new_pos), old_pos.max(new_pos));
        for p in lo..=hi {
            self.position[self.order[p] as usize] =
                u32::try_from(p).expect("positions fit the TupleId space");
        }
        Ok(RankDelta {
            row,
            changed: Some((lo, hi)),
            inserted: false,
        })
    }

    /// Inserts a new tuple with id `len()` and the given score. Every
    /// position from the insertion point to the (new) end changes
    /// occupant.
    ///
    /// Errors on a NaN score, or when the new row id would not fit a
    /// [`TupleId`] (`len() > TupleId::MAX` — the unchecked `as` cast
    /// would wrap to 0 and silently corrupt the position index). The
    /// ranking is untouched on error.
    pub fn insert(&mut self, score: f64) -> Result<RankDelta, RankingError> {
        if score.is_nan() {
            return Err(RankingError("inserted score is NaN".to_string()));
        }
        if !self.can_insert(1) {
            return Err(RankingError(format!(
                "ranking is full: row id {} does not fit a TupleId",
                self.scores.len()
            )));
        }
        let row = self.scores.len() as TupleId;
        self.scores.push(score);
        let pos = self.order.partition_point(|&r| self.before(r, row));
        self.order.insert(pos, row);
        self.position.push(0);
        for p in pos..self.order.len() {
            self.position[self.order[p] as usize] =
                u32::try_from(p).expect("can_insert keeps positions in the TupleId space");
        }
        Ok(RankDelta {
            row,
            changed: Some((pos, self.order.len() - 1)),
            inserted: true,
        })
    }

    /// Debug-only invariant check: `order` sorted under `before`,
    /// `position` its inverse.
    #[cfg(test)]
    fn check_invariants(&self) {
        for w in self.order.windows(2) {
            assert!(self.before(w[0], w[1]), "order out of order: {w:?}");
        }
        for (p, &row) in self.order.iter().enumerate() {
            assert_eq!(self.position[row as usize] as usize, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_matches_from_scores_desc() {
        let scores = vec![1.0, 3.0, 3.0, 2.0];
        let live = ScoredRanking::new(scores.clone()).unwrap();
        let frozen = Ranking::from_scores_desc(&scores);
        assert_eq!(live.order(), frozen.order());
        assert_eq!(live.to_ranking(), frozen);
        live.check_invariants();
        assert!(ScoredRanking::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn ascending_reverses_score_order_not_ties() {
        let live = ScoredRanking::ascending(vec![2.0, 1.0, 2.0]).unwrap();
        assert_eq!(live.order(), &[1, 0, 2]);
        live.check_invariants();
    }

    #[test]
    fn update_score_moves_up_and_down() {
        let mut live = ScoredRanking::new(vec![5.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        // Promote row 3 past rows 2 and 1.
        let d = live.update_score(3, 4.5).unwrap();
        assert_eq!(d.changed, Some((1, 3)));
        assert!(!d.inserted);
        assert_eq!(live.order(), &[0, 3, 1, 2, 4]);
        live.check_invariants();
        // Demote row 0 to the bottom.
        let d = live.update_score(0, 0.5).unwrap();
        assert_eq!(d.changed, Some((0, 4)));
        assert_eq!(live.order(), &[3, 1, 2, 4, 0]);
        live.check_invariants();
        // A no-move update reports no change.
        let d = live.update_score(1, 4.1).unwrap();
        assert_eq!(d.changed, None);
        live.check_invariants();
        // Errors leave the ranking intact.
        assert!(live.update_score(99, 1.0).is_err());
        assert!(live.update_score(1, f64::NAN).is_err());
        live.check_invariants();
    }

    #[test]
    fn tie_breaks_by_row_id_after_update() {
        let mut live = ScoredRanking::new(vec![3.0, 2.0, 1.0]).unwrap();
        // Row 2 ties row 1: row id ascending puts it after row 1.
        live.update_score(2, 2.0).unwrap();
        assert_eq!(live.order(), &[0, 1, 2]);
        // Row 0 drops to the same tie: lands before 1 and 2 (smaller id).
        let d = live.update_score(0, 2.0).unwrap();
        assert_eq!(d.changed, None); // already first among the ties
        live.check_invariants();
    }

    #[test]
    fn insert_shifts_suffix() {
        let mut live = ScoredRanking::new(vec![3.0, 1.0]).unwrap();
        let d = live.insert(2.0).unwrap();
        assert_eq!(d.row, 2);
        assert!(d.inserted);
        assert_eq!(d.changed, Some((1, 2)));
        assert_eq!(live.order(), &[0, 2, 1]);
        assert_eq!(live.position(2), 1);
        live.check_invariants();
        // Insert at the very bottom: only the last position changes.
        let d = live.insert(0.0).unwrap();
        assert_eq!(d.changed, Some((3, 3)));
        live.check_invariants();
        assert!(live.insert(f64::NAN).is_err());
    }

    #[test]
    fn insert_past_row_id_capacity_errors_instead_of_wrapping() {
        // Regression: `self.scores.len() as TupleId` wrapped silently past
        // u32::MAX rows, assigning a colliding row id and corrupting
        // `position`. The capacity is shrunk so the test does not need 4
        // billion real rows.
        let mut live = ScoredRanking::new(vec![3.0, 2.0, 1.0]).unwrap();
        live.shrink_row_capacity_for_tests(2); // ids 0..=2 ⇒ full at len 3
        assert!(live.can_insert(0));
        assert!(!live.can_insert(1));
        let before = live.clone();
        let err = live.insert(5.0).unwrap_err();
        assert!(err.to_string().contains("full"), "{err}");
        assert_eq!(live, before, "failed insert must not touch the ranking");
        live.check_invariants();
        // One id below the cap still works, then the cap bites.
        live.shrink_row_capacity_for_tests(3);
        assert!(live.can_insert(1));
        assert!(!live.can_insert(2));
        live.insert(5.0).unwrap();
        assert!(live.insert(4.0).is_err());
        assert_eq!(live.len(), 4);
        live.check_invariants();
    }

    #[test]
    fn random_edit_sequences_match_full_resort() {
        // Deterministic xorshift; no rng dependency in this crate.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for ascending in [false, true] {
            let scores: Vec<f64> = (0..40).map(|_| (next() % 97) as f64 / 7.0).collect();
            let mut live = if ascending {
                ScoredRanking::ascending(scores).unwrap()
            } else {
                ScoredRanking::new(scores).unwrap()
            };
            for _ in 0..200 {
                if next() % 4 == 0 {
                    live.insert((next() % 97) as f64 / 7.0).unwrap();
                } else {
                    let row = (next() % live.len() as u64) as TupleId;
                    live.update_score(row, (next() % 97) as f64 / 7.0).unwrap();
                }
                live.check_invariants();
                // The live order equals a from-scratch sort of the scores.
                let fresh = if ascending {
                    ScoredRanking::ascending(live.scores.clone()).unwrap()
                } else {
                    ScoredRanking::new(live.scores.clone()).unwrap()
                };
                assert_eq!(live.order(), fresh.order());
            }
        }
    }
}
