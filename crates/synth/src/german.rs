//! Synthetic German Credit dataset (UCI Statlog: 1,000 applicants × 20
//! attributes).
//!
//! The paper ranks this dataset “based on creditworthiness” following
//! Yang & Stoyanovich, with the actual ranker treated as unknown; its
//! Shapley analysis (§VI-C, Fig. 10c) surfaces *residence length, duration
//! in month, credit amount and installment rate* as the strongest
//! attributes. The generator therefore plants a creditworthiness signal in
//! exactly those columns (plus the checking-account status used to define
//! the detected group p3), and distributes the remaining attributes with
//! the real file’s marginals.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use rankfair_data::{Column, Dataset};

use crate::util::{gaussian, sample_weighted};
use crate::SynthConfig;

const DEFAULT_ROWS: usize = 1000;

/// Generates the synthetic German Credit dataset. `duration`,
/// `credit_amount` and `age` are numeric; everything else categorical
/// (ordinal attributes use numeric labels so rankers can parse them).
pub fn german_credit(cfg: SynthConfig) -> Dataset {
    let n = if cfg.rows == 0 {
        DEFAULT_ROWS
    } else {
        cfg.rows
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4745_524d_414e_2121);

    let status_labels = ["<0 DM", "0<=...<200 DM", ">=200 DM", "no account"];
    let history_labels = [
        "no credits",
        "all paid",
        "existing paid",
        "delay in past",
        "critical",
    ];
    let purpose_labels = [
        "car (new)",
        "car (used)",
        "furniture",
        "radio/TV",
        "appliances",
        "repairs",
        "education",
        "retraining",
        "business",
        "others",
    ];
    let savings_labels = [
        "<100 DM",
        "100<=...<500 DM",
        "500<=...<1000 DM",
        ">=1000 DM",
        "unknown",
    ];
    let employ_labels = [
        "unemployed",
        "<1 yr",
        "1<=...<4 yrs",
        "4<=...<7 yrs",
        ">=7 yrs",
    ];
    let personal_labels = [
        "male divorced",
        "female div/married",
        "male single",
        "male married",
    ];

    let mut status = Vec::with_capacity(n);
    let mut duration = Vec::with_capacity(n);
    let mut history = Vec::with_capacity(n);
    let mut purpose = Vec::with_capacity(n);
    let mut amount = Vec::with_capacity(n);
    let mut savings = Vec::with_capacity(n);
    let mut employment = Vec::with_capacity(n);
    let mut installment = Vec::with_capacity(n);
    let mut personal = Vec::with_capacity(n);
    let mut debtors = Vec::with_capacity(n);
    let mut residence = Vec::with_capacity(n);
    let mut property = Vec::with_capacity(n);
    let mut age = Vec::with_capacity(n);
    let mut plans = Vec::with_capacity(n);
    let mut housing = Vec::with_capacity(n);
    let mut existing = Vec::with_capacity(n);
    let mut job = Vec::with_capacity(n);
    let mut liable = Vec::with_capacity(n);
    let mut telephone = Vec::with_capacity(n);
    let mut foreign = Vec::with_capacity(n);

    for _ in 0..n {
        // Latent financial stability.
        let stab = gaussian(&mut rng);
        let st_idx = sample_weighted(
            &mut rng,
            &if stab > 0.5 {
                [0.10, 0.20, 0.15, 0.55]
            } else if stab > -0.5 {
                [0.25, 0.30, 0.06, 0.39]
            } else {
                [0.45, 0.30, 0.03, 0.22]
            },
        );
        status.push(status_labels[st_idx].to_string());
        // Duration 4–72 months; stable applicants borrow shorter.
        let dur = (21.0 - 4.0 * stab + gaussian(&mut rng) * 10.0)
            .clamp(4.0, 72.0)
            .round();
        duration.push(dur);
        history.push(
            history_labels[sample_weighted(&mut rng, &[0.04, 0.05, 0.53, 0.09, 0.29])].to_string(),
        );
        purpose.push(
            purpose_labels[sample_weighted(
                &mut rng,
                &[0.23, 0.10, 0.18, 0.28, 0.01, 0.02, 0.05, 0.01, 0.10, 0.02],
            )]
            .to_string(),
        );
        // Credit amount: log-normal, correlated with duration.
        let amt = (250.0 * ((gaussian(&mut rng) * 0.7 + 2.0 + 0.02 * dur).exp()))
            .clamp(250.0, 18500.0)
            .round();
        amount.push(amt);
        savings.push(
            savings_labels[sample_weighted(
                &mut rng,
                &if stab > 0.0 {
                    [0.40, 0.12, 0.08, 0.12, 0.28]
                } else {
                    [0.75, 0.10, 0.04, 0.02, 0.09]
                },
            )]
            .to_string(),
        );
        employment.push(
            employ_labels[sample_weighted(&mut rng, &[0.06, 0.17, 0.34, 0.17, 0.26])].to_string(),
        );
        installment.push((1 + sample_weighted(&mut rng, &[0.14, 0.23, 0.16, 0.47])).to_string());
        personal.push(
            personal_labels[sample_weighted(&mut rng, &[0.05, 0.31, 0.55, 0.09])].to_string(),
        );
        debtors.push(
            ["none", "co-applicant", "guarantor"][sample_weighted(&mut rng, &[0.91, 0.04, 0.05])]
                .to_string(),
        );
        // Residence length 1–4, mildly tied to stability/age.
        let res = 1 + sample_weighted(
            &mut rng,
            &if stab > 0.0 {
                [0.10, 0.25, 0.15, 0.50]
            } else {
                [0.18, 0.36, 0.17, 0.29]
            },
        );
        residence.push(res.to_string());
        property.push(
            ["real estate", "savings agreement", "car", "unknown"]
                [sample_weighted(&mut rng, &[0.28, 0.23, 0.33, 0.16])]
            .to_string(),
        );
        let a = (19.0 + (gaussian(&mut rng) * 0.4 + 2.7).exp() * 0.9)
            .clamp(19.0, 75.0)
            .round();
        age.push(a);
        plans.push(
            ["bank", "stores", "none"][sample_weighted(&mut rng, &[0.14, 0.05, 0.81])].to_string(),
        );
        housing.push(
            ["rent", "own", "for free"][sample_weighted(&mut rng, &[0.18, 0.71, 0.11])].to_string(),
        );
        existing.push((1 + sample_weighted(&mut rng, &[0.63, 0.33, 0.03, 0.01])).to_string());
        job.push(
            [
                "unemployed non-resident",
                "unskilled resident",
                "skilled",
                "management",
            ][sample_weighted(&mut rng, &[0.02, 0.20, 0.63, 0.15])]
            .to_string(),
        );
        liable.push((1 + sample_weighted(&mut rng, &[0.845, 0.155])).to_string());
        telephone.push(
            if rng.random::<f64>() < 0.40 {
                "yes"
            } else {
                "none"
            }
            .to_string(),
        );
        foreign.push(
            if rng.random::<f64>() < 0.963 {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        );
    }

    let cat = |name: &str, v: &[String]| Column::categorical(name, v).expect("small dictionary");
    let cols = vec![
        cat("status_checking", &status),
        Column::numeric("duration", duration),
        cat("credit_history", &history),
        cat("purpose", &purpose),
        Column::numeric("credit_amount", amount),
        cat("savings", &savings),
        cat("employment_since", &employment),
        cat("installment_rate", &installment),
        cat("personal_status_sex", &personal),
        cat("other_debtors", &debtors),
        cat("residence_since", &residence),
        cat("property", &property),
        Column::numeric("age", age),
        cat("other_installment_plans", &plans),
        cat("housing", &housing),
        cat("existing_credits", &existing),
        cat("job", &job),
        cat("people_liable", &liable),
        cat("telephone", &telephone),
        cat("foreign_worker", &foreign),
    ];
    Dataset::from_columns(cols).expect("columns share the row count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_paper() {
        let ds = german_credit(SynthConfig::default());
        assert_eq!(ds.n_rows(), 1000);
        assert_eq!(ds.n_cols(), 20);
        assert_eq!(ds.numeric_columns().len(), 3); // duration, amount, age
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            german_credit(SynthConfig::new(200, 3)),
            german_credit(SynthConfig::new(200, 3))
        );
        assert_ne!(
            german_credit(SynthConfig::new(200, 3)),
            german_credit(SynthConfig::new(200, 4))
        );
    }

    #[test]
    fn account_status_has_all_four_values_with_mass() {
        let ds = german_credit(SynthConfig::new(2000, 1));
        let c = ds.column_by_name("status_checking").unwrap();
        assert_eq!(c.cardinality(), Some(4));
        for v in 0..4 {
            let count = (0..ds.n_rows()).filter(|&r| c.code(r) == v).count();
            assert!(count > 50, "value {v} occurs only {count} times");
        }
    }

    #[test]
    fn durations_and_amounts_in_range() {
        let ds = german_credit(SynthConfig::new(1000, 2));
        let dur = ds.column_by_name("duration").unwrap().values().unwrap();
        assert!(dur.iter().all(|&d| (4.0..=72.0).contains(&d)));
        let amt = ds
            .column_by_name("credit_amount")
            .unwrap()
            .values()
            .unwrap();
        assert!(amt.iter().all(|&a| (250.0..=18500.0).contains(&a)));
    }

    #[test]
    fn ordinal_labels_parse_as_numbers() {
        let ds = german_credit(SynthConfig::new(100, 7));
        for name in ["installment_rate", "residence_since", "existing_credits"] {
            let c = ds.column_by_name(name).unwrap();
            for v in 0..c.cardinality().unwrap() as u16 {
                assert!(c.label_of(v).unwrap().parse::<f64>().is_ok());
            }
        }
    }
}
