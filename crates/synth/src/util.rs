//! Small sampling helpers shared by the generators (kept local instead of
//! pulling in `rand_distr`).

use rand::RngExt;

/// Samples an index proportionally to `weights` (need not be normalized).
pub fn sample_weighted<R: RngExt>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Standard normal via Box–Muller.
pub fn gaussian<R: RngExt>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Clamps and rounds to an integer grid — used for grades, counts, ages.
pub fn clamp_round(v: f64, lo: f64, hi: f64) -> f64 {
    v.clamp(lo, hi).round()
}

/// Pearson correlation, used by generator tests to assert the injected
/// structure survived.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[0.7, 0.2, 0.1])] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        let f0 = counts[0] as f64 / 30_000.0;
        assert!((f0 - 0.7).abs() < 0.03, "f0 = {f0}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..50_000).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-9);
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_round_bounds() {
        assert_eq!(clamp_round(25.7, 0.0, 20.0), 20.0);
        assert_eq!(clamp_round(-3.0, 0.0, 20.0), 0.0);
        assert_eq!(clamp_round(10.4, 0.0, 20.0), 10.0);
    }
}
