//! Seeded synthetic dataset generators for the `rankfair` workspace.
//!
//! The paper evaluates on three real datasets (COMPAS, UCI Student
//! Performance, UCI German Credit). Those files cannot be redistributed
//! here, so this crate generates synthetic stand-ins with the documented
//! **schemas, row counts, cardinalities and the correlations the paper’s
//! analysis depends on** (see DESIGN.md §7 for the substitution argument):
//!
//! * [`student`] — 395 students × 33 attributes; grades `G1`/`G2`/`G3`
//!   strongly correlated with each other and moderately with mother’s
//!   education and (negatively) past failures, so the Shapley analysis of
//!   §VI-C reproduces;
//! * [`compas`] — 6,889 defendants × 16 attributes with the seven scoring
//!   attributes the paper’s ranking uses;
//! * [`german_credit`] — 1,000 applicants × 20 attributes with a
//!   creditworthiness signal carried by account status, duration, credit
//!   amount, installment rate and residence length;
//! * [`worst_case`] — the adversarial instance of Theorem 3.3 whose result
//!   set is exponential;
//! * [`random_dataset`] / [`random_ranking`] — arbitrary small instances
//!   for differential and property-based testing.
//!
//! Every generator is deterministic in its seed, so experiments and tests
//! are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compas;
mod german;
mod random;
mod student;
mod util;
mod worst_case;

pub use compas::compas;
pub use german::german_credit;
pub use random::{
    random_dataset, random_dataset_block, random_dataset_streamed, random_ranking, RandomSpec,
};
pub use student::student;
pub use util::pearson;
pub use worst_case::{worst_case, worst_case_result_count};

/// Common knobs for the three dataset simulators.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of rows to generate. Defaults mirror the real datasets
    /// (COMPAS 6,889; Student 395; German Credit 1,000); larger values
    /// scale the same distributions for stress tests.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Config with an explicit row count.
    pub fn new(rows: usize, seed: u64) -> Self {
        SynthConfig { rows, seed }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { rows: 0, seed: 42 } // rows = 0 → generator default
    }
}
