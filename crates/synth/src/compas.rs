//! Synthetic COMPAS dataset (ProPublica recidivism file: 6,889 tuples ×
//! 16 attributes after dropping names, ids and dates — §VI-A of the
//! paper).
//!
//! The paper ranks COMPAS by the normalized sum of `c_days_from_compas`,
//! `juv_other_count`, `days_b_screening_arrest`, `start`, `end`, `age`
//! (inverted) and `priors_count`; the generator therefore makes those
//! columns carry realistic spreads, correlates recidivism and decile
//! scores with priors and age (younger ⇒ higher risk score, the
//! ProPublica finding), and keeps the remaining attributes plausibly
//! distributed so intersectional groups of every size exist.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use rankfair_data::{Column, Dataset};

use crate::util::{gaussian, sample_weighted};
use crate::SynthConfig;

const DEFAULT_ROWS: usize = 6889;

/// Generates the synthetic COMPAS dataset (16 columns; numeric scoring
/// columns are kept numeric for ranking and should be bucketized for
/// detection).
pub fn compas(cfg: SynthConfig) -> Dataset {
    let n = if cfg.rows == 0 {
        DEFAULT_ROWS
    } else {
        cfg.rows
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x434f_4d50_4153_2121);

    let races = [
        "African-American",
        "Caucasian",
        "Hispanic",
        "Other",
        "Asian",
        "Native American",
    ];
    let race_w = [0.514, 0.340, 0.082, 0.052, 0.009, 0.003];

    let mut sex = Vec::with_capacity(n);
    let mut age = Vec::with_capacity(n);
    let mut race = Vec::with_capacity(n);
    let mut juv_fel = Vec::with_capacity(n);
    let mut juv_misd = Vec::with_capacity(n);
    let mut juv_other = Vec::with_capacity(n);
    let mut priors = Vec::with_capacity(n);
    let mut days_b_screen = Vec::with_capacity(n);
    let mut c_days_from = Vec::with_capacity(n);
    let mut charge_degree = Vec::with_capacity(n);
    let mut is_recid = Vec::with_capacity(n);
    let mut is_violent = Vec::with_capacity(n);
    let mut decile = Vec::with_capacity(n);
    let mut score_text = Vec::with_capacity(n);
    let mut start = Vec::with_capacity(n);
    let mut end = Vec::with_capacity(n);

    for _ in 0..n {
        let is_male = rng.random::<f64>() < 0.81;
        sex.push(if is_male { "Male" } else { "Female" }.to_string());
        // Age: log-normal-ish, 18–80, median ~31.
        let a = (18.0 + (gaussian(&mut rng) * 0.45 + 2.55).exp())
            .clamp(18.0, 80.0)
            .round();
        age.push(a);
        let r_idx = sample_weighted(&mut rng, &race_w);
        race.push(races[r_idx].to_string());

        // Juvenile counts: mostly zero, heavier tail for the young.
        let youth = ((45.0 - a) / 27.0).clamp(0.0, 1.0);
        let juv_sample = |rng: &mut StdRng, base: f64| -> f64 {
            let lambda = base * (0.4 + 1.2 * youth);
            let mut c = 0.0;
            while rng.random::<f64>() < lambda / (lambda + 1.0) && c < 8.0 {
                c += 1.0;
            }
            c
        };
        juv_fel.push(juv_sample(&mut rng, 0.08));
        juv_misd.push(juv_sample(&mut rng, 0.10));
        let jo = juv_sample(&mut rng, 0.12);
        juv_other.push(jo);

        // Priors: geometric-ish, grows with age then flattens; the risk
        // signal. Slightly heavier for the synthetic majority group so the
        // ranking produces the representation skews the paper detects.
        let prior_rate = 2.0 + 0.03 * (a - 18.0) + if r_idx == 0 { 1.0 } else { 0.0 };
        let p = (gaussian(&mut rng).abs() * prior_rate)
            .round()
            .clamp(0.0, 38.0);
        priors.push(p);

        days_b_screen.push((gaussian(&mut rng) * 4.0).round().clamp(-30.0, 30.0));
        c_days_from.push((gaussian(&mut rng).abs() * 60.0).round().clamp(0.0, 1000.0));
        charge_degree.push(if rng.random::<f64>() < 0.64 { "F" } else { "M" }.to_string());

        // Recidivism probability grows with priors and youth.
        let p_recid = (0.18 + 0.035 * p + 0.25 * youth).clamp(0.02, 0.9);
        let recid = rng.random::<f64>() < p_recid;
        is_recid.push(if recid { "1" } else { "0" }.to_string());
        is_violent.push(
            if recid && rng.random::<f64>() < 0.25 {
                "1"
            } else {
                "0"
            }
            .to_string(),
        );

        // Decile score: priors + youth + noise, mapped to 1..10.
        let raw = 0.32 * p + 2.8 * youth + 0.8 * gaussian(&mut rng);
        let d = (1.0 + raw.clamp(0.0, 9.0)).floor().min(10.0);
        decile.push(d.to_string());
        score_text.push(
            if d <= 4.0 {
                "Low"
            } else if d <= 7.0 {
                "Medium"
            } else {
                "High"
            }
            .to_string(),
        );

        // Supervision window: `start` small, `end` long-tailed; recidivists
        // end earlier (they re-offend), which makes `end` informative for
        // the ranking — the paper finds `end` the top Shapley attribute
        // for the detected young group (Fig. 10b/10e).
        let s = (gaussian(&mut rng).abs() * 8.0).round().clamp(0.0, 180.0);
        start.push(s);
        let e_base = if recid {
            (gaussian(&mut rng).abs() * 150.0) * (1.0 - 0.5 * youth)
        } else {
            500.0 + gaussian(&mut rng).abs() * 250.0
        };
        end.push((s + e_base.max(1.0)).round().clamp(1.0, 1200.0));
    }

    let cat = |name: &str, v: &[String]| Column::categorical(name, v).expect("small dictionary");
    let cols = vec![
        cat("sex", &sex),
        Column::numeric("age", age),
        cat("race", &race),
        Column::numeric("juv_fel_count", juv_fel),
        Column::numeric("juv_misd_count", juv_misd),
        Column::numeric("juv_other_count", juv_other),
        Column::numeric("priors_count", priors),
        Column::numeric("days_b_screening_arrest", days_b_screen),
        Column::numeric("c_days_from_compas", c_days_from),
        cat("c_charge_degree", &charge_degree),
        cat("is_recid", &is_recid),
        cat("is_violent_recid", &is_violent),
        cat("decile_score", &decile),
        cat("score_text", &score_text),
        Column::numeric("start", start),
        Column::numeric("end", end),
    ];
    Dataset::from_columns(cols).expect("columns share the row count")
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::util::pearson;

    #[test]
    fn default_shape_matches_paper() {
        let ds = compas(SynthConfig::default());
        assert_eq!(ds.n_rows(), 6889);
        assert_eq!(ds.n_cols(), 16);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            compas(SynthConfig::new(500, 3)),
            compas(SynthConfig::new(500, 3))
        );
        assert_ne!(
            compas(SynthConfig::new(500, 3)),
            compas(SynthConfig::new(500, 4))
        );
    }

    #[test]
    fn decile_score_correlates_with_priors_and_youth() {
        let ds = compas(SynthConfig::new(5000, 1));
        let dec_col = ds.column_by_name("decile_score").unwrap();
        let dec: Vec<f64> = (0..ds.n_rows())
            .map(|r| dec_col.label_of(dec_col.code(r)).unwrap().parse().unwrap())
            .collect();
        let priors = ds.column_by_name("priors_count").unwrap().values().unwrap();
        let age = ds.column_by_name("age").unwrap().values().unwrap();
        assert!(pearson(&dec, priors) > 0.3);
        assert!(pearson(&dec, age) < -0.15);
    }

    #[test]
    fn recidivists_have_shorter_supervision_end() {
        let ds = compas(SynthConfig::new(5000, 2));
        let recid = ds.column_by_name("is_recid").unwrap();
        let yes = recid.code_of("1").unwrap();
        let end = ds.column_by_name("end").unwrap().values().unwrap();
        let (mut s_yes, mut n_yes, mut s_no, mut n_no) = (0.0, 0usize, 0.0, 0usize);
        for r in 0..ds.n_rows() {
            if recid.code(r) == yes {
                s_yes += end[r];
                n_yes += 1;
            } else {
                s_no += end[r];
                n_no += 1;
            }
        }
        assert!(s_yes / n_yes as f64 + 100.0 < s_no / n_no as f64);
    }

    #[test]
    fn sex_and_race_marginals_are_realistic() {
        let ds = compas(SynthConfig::new(6889, 5));
        let sex = ds.column_by_name("sex").unwrap();
        let male = sex.code_of("Male").unwrap();
        let frac_m =
            (0..ds.n_rows()).filter(|&r| sex.code(r) == male).count() as f64 / ds.n_rows() as f64;
        assert!((0.77..0.85).contains(&frac_m));
        let race = ds.column_by_name("race").unwrap();
        assert_eq!(race.cardinality(), Some(6));
    }

    #[test]
    fn ages_within_bounds() {
        let ds = compas(SynthConfig::new(2000, 6));
        let age = ds.column_by_name("age").unwrap().values().unwrap();
        assert!(age.iter().all(|&a| (18.0..=80.0).contains(&a)));
    }
}
