//! Synthetic Student Performance dataset (UCI, `student-mat.csv` fragment:
//! 395 tuples × 33 attributes).
//!
//! A latent “ability” variable drives the grades; mother’s/father’s
//! education, study time, past failures, going out and alcohol consumption
//! shift it, reproducing the correlation structure the paper’s Shapley
//! experiment relies on (§VI-C: `G1`/`G2` strongly correlated with `G3`;
//! mother’s education mildly correlated).

use rand::{rngs::StdRng, RngExt, SeedableRng};
use rankfair_data::{Column, Dataset};

use crate::util::{clamp_round, gaussian, sample_weighted};
use crate::SynthConfig;

const DEFAULT_ROWS: usize = 395;

/// Generates the synthetic Student dataset. Column order matches the UCI
/// file; `age`, `absences`, `G1`, `G2`, `G3` are numeric (bucketize before
/// detection), everything else categorical.
pub fn student(cfg: SynthConfig) -> Dataset {
    let n = if cfg.rows == 0 {
        DEFAULT_ROWS
    } else {
        cfg.rows
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5745_4e54_5f53_5455);

    let yes_no = |rng: &mut StdRng, p_yes: f64| {
        if rng.random::<f64>() < p_yes {
            "yes"
        } else {
            "no"
        }
    };

    let mut school = Vec::with_capacity(n);
    let mut sex = Vec::with_capacity(n);
    let mut age = Vec::with_capacity(n);
    let mut address = Vec::with_capacity(n);
    let mut famsize = Vec::with_capacity(n);
    let mut pstatus = Vec::with_capacity(n);
    let mut medu = Vec::with_capacity(n);
    let mut fedu = Vec::with_capacity(n);
    let mut mjob = Vec::with_capacity(n);
    let mut fjob = Vec::with_capacity(n);
    let mut reason = Vec::with_capacity(n);
    let mut guardian = Vec::with_capacity(n);
    let mut traveltime = Vec::with_capacity(n);
    let mut studytime = Vec::with_capacity(n);
    let mut failures = Vec::with_capacity(n);
    let mut schoolsup = Vec::with_capacity(n);
    let mut famsup = Vec::with_capacity(n);
    let mut paid = Vec::with_capacity(n);
    let mut activities = Vec::with_capacity(n);
    let mut nursery = Vec::with_capacity(n);
    let mut higher = Vec::with_capacity(n);
    let mut internet = Vec::with_capacity(n);
    let mut romantic = Vec::with_capacity(n);
    let mut famrel = Vec::with_capacity(n);
    let mut freetime = Vec::with_capacity(n);
    let mut goout = Vec::with_capacity(n);
    let mut dalc = Vec::with_capacity(n);
    let mut walc = Vec::with_capacity(n);
    let mut health = Vec::with_capacity(n);
    let mut absences = Vec::with_capacity(n);
    let mut g1 = Vec::with_capacity(n);
    let mut g2 = Vec::with_capacity(n);
    let mut g3 = Vec::with_capacity(n);

    let jobs = ["teacher", "health", "services", "at_home", "other"];
    let edu_labels = ["none", "primary", "5th-9th", "secondary", "higher"];

    for _ in 0..n {
        // ~88% GP, 12% MS, matching the real file (349/46).
        let is_gp = rng.random::<f64>() < 0.883;
        school.push(if is_gp { "GP" } else { "MS" }.to_string());
        let is_f = rng.random::<f64>() < 0.527;
        sex.push(if is_f { "F" } else { "M" }.to_string());
        let a = 15.0
            + sample_weighted(
                &mut rng,
                &[0.21, 0.26, 0.25, 0.21, 0.05, 0.01, 0.005, 0.005],
            ) as f64;
        age.push(a);
        // Urban dominates (307/88), more so for GP.
        let urban = rng.random::<f64>() < if is_gp { 0.82 } else { 0.55 };
        address.push(if urban { "U" } else { "R" }.to_string());
        famsize.push(
            if rng.random::<f64>() < 0.71 {
                "GT3"
            } else {
                "LE3"
            }
            .to_string(),
        );
        pstatus.push(if rng.random::<f64>() < 0.90 { "T" } else { "A" }.to_string());
        // Education levels: urban parents skew higher.
        let medu_w = if urban {
            [0.01, 0.12, 0.22, 0.25, 0.40]
        } else {
            [0.02, 0.28, 0.30, 0.24, 0.16]
        };
        let me = sample_weighted(&mut rng, &medu_w);
        medu.push(edu_labels[me].to_string());
        // Father's education correlates with mother's.
        let fe = {
            let base = sample_weighted(&mut rng, &medu_w);
            if rng.random::<f64>() < 0.5 {
                me
            } else {
                base
            }
        };
        fedu.push(edu_labels[fe].to_string());
        let mjob_w = match me {
            4 => [0.22, 0.14, 0.22, 0.08, 0.34],
            3 => [0.06, 0.08, 0.30, 0.14, 0.42],
            _ => [0.01, 0.03, 0.18, 0.30, 0.48],
        };
        mjob.push(jobs[sample_weighted(&mut rng, &mjob_w)].to_string());
        fjob.push(jobs[sample_weighted(&mut rng, &[0.07, 0.04, 0.28, 0.05, 0.56])].to_string());
        reason.push(
            ["course", "home", "reputation", "other"]
                [sample_weighted(&mut rng, &[0.37, 0.28, 0.26, 0.09])]
            .to_string(),
        );
        guardian.push(
            ["mother", "father", "other"][sample_weighted(&mut rng, &[0.69, 0.23, 0.08])]
                .to_string(),
        );
        let tt = 1 + sample_weighted(
            &mut rng,
            if urban {
                &[0.72, 0.22, 0.05, 0.01]
            } else {
                &[0.35, 0.40, 0.18, 0.07]
            },
        );
        traveltime.push(tt.to_string());
        let st = 1 + sample_weighted(&mut rng, &[0.27, 0.50, 0.16, 0.07]);
        studytime.push(st.to_string());

        // Latent ability: drives failures and the grades.
        let ability = gaussian(&mut rng)
            + 0.25 * (me as f64 - 2.0)
            + 0.12 * (fe as f64 - 2.0)
            + 0.30 * (st as f64 - 2.0);

        let p_fail = (0.16 - 0.11 * ability).clamp(0.01, 0.65);
        let mut f_cnt = 0usize;
        for _ in 0..3 {
            if rng.random::<f64>() < p_fail {
                f_cnt += 1;
            }
        }
        failures.push(f_cnt.to_string());
        schoolsup.push(yes_no(&mut rng, 0.13).to_string());
        famsup.push(yes_no(&mut rng, 0.61).to_string());
        paid.push(yes_no(&mut rng, 0.46).to_string());
        activities.push(yes_no(&mut rng, 0.51).to_string());
        nursery.push(yes_no(&mut rng, 0.79).to_string());
        let wants_higher = rng.random::<f64>() < (0.9 + 0.05 * ability).clamp(0.5, 0.99);
        higher.push(if wants_higher { "yes" } else { "no" }.to_string());
        internet.push(yes_no(&mut rng, if urban { 0.88 } else { 0.68 }).to_string());
        romantic.push(yes_no(&mut rng, 0.33).to_string());
        famrel.push((1 + sample_weighted(&mut rng, &[0.02, 0.05, 0.17, 0.50, 0.26])).to_string());
        freetime.push((1 + sample_weighted(&mut rng, &[0.05, 0.16, 0.40, 0.29, 0.10])).to_string());
        let go = 1 + sample_weighted(&mut rng, &[0.06, 0.26, 0.33, 0.22, 0.13]);
        goout.push(go.to_string());
        let da = 1 + sample_weighted(&mut rng, &[0.70, 0.19, 0.07, 0.02, 0.02]);
        dalc.push(da.to_string());
        walc.push(
            (1 + sample_weighted(&mut rng, &[0.38, 0.22, 0.20, 0.13, 0.07]))
                .max(da)
                .min(5)
                .to_string(),
        );
        health.push((1 + sample_weighted(&mut rng, &[0.12, 0.11, 0.23, 0.17, 0.37])).to_string());
        let ab = (gaussian(&mut rng).abs() * 6.0 * (1.0 - 0.2 * ability).max(0.3)).round();
        absences.push(ab.clamp(0.0, 75.0));

        // Grades on the 0–20 scale; G3 depends on ability, failures and
        // going out; G1/G2 are noisy copies (the strong correlation the
        // Shapley analysis must surface).
        let base = 11.0 + 2.8 * ability - 1.4 * f_cnt as f64 - 0.35 * (go as f64 - 3.0);
        let g3v = clamp_round(base + 0.8 * gaussian(&mut rng), 0.0, 20.0);
        let g1v = clamp_round(g3v + 1.1 * gaussian(&mut rng), 0.0, 20.0);
        let g2v = clamp_round(0.3 * g1v + 0.7 * g3v + 0.7 * gaussian(&mut rng), 0.0, 20.0);
        g1.push(g1v);
        g2.push(g2v);
        g3.push(g3v);
    }

    let mut cols: Vec<Column> = Vec::with_capacity(33);
    let cat = |name: &str, v: &[String]| Column::categorical(name, v).expect("small dictionary");
    cols.push(cat("school", &school));
    cols.push(cat("sex", &sex));
    cols.push(Column::numeric("age", age));
    cols.push(cat("address", &address));
    cols.push(cat("famsize", &famsize));
    cols.push(cat("Pstatus", &pstatus));
    cols.push(cat("Medu", &medu));
    cols.push(cat("Fedu", &fedu));
    cols.push(cat("Mjob", &mjob));
    cols.push(cat("Fjob", &fjob));
    cols.push(cat("reason", &reason));
    cols.push(cat("guardian", &guardian));
    cols.push(cat("traveltime", &traveltime));
    cols.push(cat("studytime", &studytime));
    cols.push(cat("failures", &failures));
    cols.push(cat("schoolsup", &schoolsup));
    cols.push(cat("famsup", &famsup));
    cols.push(cat("paid", &paid));
    cols.push(cat("activities", &activities));
    cols.push(cat("nursery", &nursery));
    cols.push(cat("higher", &higher));
    cols.push(cat("internet", &internet));
    cols.push(cat("romantic", &romantic));
    cols.push(cat("famrel", &famrel));
    cols.push(cat("freetime", &freetime));
    cols.push(cat("goout", &goout));
    cols.push(cat("Dalc", &dalc));
    cols.push(cat("Walc", &walc));
    cols.push(cat("health", &health));
    cols.push(Column::numeric("absences", absences));
    cols.push(Column::numeric("G1", g1));
    cols.push(Column::numeric("G2", g2));
    cols.push(Column::numeric("G3", g3));
    Dataset::from_columns(cols).expect("columns share the row count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::pearson;

    fn values(ds: &Dataset, name: &str) -> Vec<f64> {
        ds.column_by_name(name).unwrap().values().unwrap().to_vec()
    }

    #[test]
    fn default_shape_matches_paper() {
        let ds = student(SynthConfig::default());
        assert_eq!(ds.n_rows(), 395);
        assert_eq!(ds.n_cols(), 33);
        assert_eq!(ds.categorical_columns().len(), 28);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = student(SynthConfig::new(100, 9));
        let b = student(SynthConfig::new(100, 9));
        let c = student(SynthConfig::new(100, 10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn grades_are_strongly_correlated() {
        let ds = student(SynthConfig::new(2000, 1));
        let g1 = values(&ds, "G1");
        let g2 = values(&ds, "G2");
        let g3 = values(&ds, "G3");
        assert!(
            pearson(&g1, &g3) > 0.7,
            "corr(G1,G3) = {}",
            pearson(&g1, &g3)
        );
        assert!(
            pearson(&g2, &g3) > 0.8,
            "corr(G2,G3) = {}",
            pearson(&g2, &g3)
        );
    }

    #[test]
    fn mothers_education_correlates_mildly_with_grade() {
        let ds = student(SynthConfig::new(3000, 2));
        let medu_col = ds.column_by_name("Medu").unwrap();
        let order = ["none", "primary", "5th-9th", "secondary", "higher"];
        let medu: Vec<f64> = (0..ds.n_rows())
            .map(|r| {
                let label = medu_col.label_of(medu_col.code(r)).unwrap();
                order.iter().position(|&l| l == label).unwrap() as f64
            })
            .collect();
        let g3 = values(&ds, "G3");
        let c = pearson(&medu, &g3);
        assert!(c > 0.1 && c < 0.6, "corr(Medu,G3) = {c}");
    }

    #[test]
    fn failures_anticorrelate_with_grade() {
        let ds = student(SynthConfig::new(3000, 3));
        let f_col = ds.column_by_name("failures").unwrap();
        let f: Vec<f64> = (0..ds.n_rows())
            .map(|r| f_col.label_of(f_col.code(r)).unwrap().parse().unwrap())
            .collect();
        let g3 = values(&ds, "G3");
        assert!(pearson(&f, &g3) < -0.25);
    }

    #[test]
    fn school_split_is_skewed_like_the_real_data() {
        let ds = student(SynthConfig::new(4000, 4));
        let school = ds.column_by_name("school").unwrap();
        let gp = school.code_of("GP").unwrap();
        let n_gp = (0..ds.n_rows()).filter(|&r| school.code(r) == gp).count();
        let frac = n_gp as f64 / ds.n_rows() as f64;
        assert!((0.85..0.92).contains(&frac), "GP fraction {frac}");
    }

    #[test]
    fn grades_within_scale() {
        let ds = student(SynthConfig::new(1000, 5));
        for g in ["G1", "G2", "G3"] {
            assert!(values(&ds, g).iter().all(|&v| (0.0..=20.0).contains(&v)));
        }
    }
}
