//! Random instances for differential and property-based testing.

use rand::{rngs::StdRng, seq::SliceRandom, RngExt, SeedableRng};
use rankfair_data::{Column, Dataset, ValueCode};

/// Shape of a random dataset.
#[derive(Debug, Clone, Copy)]
pub struct RandomSpec {
    /// Number of rows.
    pub rows: usize,
    /// Number of categorical attributes.
    pub attrs: usize,
    /// Maximum cardinality per attribute (each attribute draws its own
    /// cardinality in `2..=max_card`).
    pub max_card: usize,
}

/// Generates a random categorical dataset. Value distributions are skewed
/// (Zipf-ish) so minorities exist, which is what makes detection
/// interesting.
pub fn random_dataset(seed: u64, spec: RandomSpec) -> Dataset {
    assert!(spec.rows > 0 && spec.attrs > 0 && spec.max_card >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = Vec::with_capacity(spec.attrs);
    for a in 0..spec.attrs {
        let card = rng.random_range(2..=spec.max_card);
        // Zipf-ish weights 1, 1/2, 1/3, …
        let weights: Vec<f64> = (1..=card).map(|i| 1.0 / i as f64).collect();
        let total: f64 = weights.iter().sum();
        let codes: Vec<ValueCode> = (0..spec.rows)
            .map(|_| {
                let mut x = rng.random::<f64>() * total;
                for (i, &w) in weights.iter().enumerate() {
                    x -= w;
                    if x <= 0.0 {
                        return i as ValueCode;
                    }
                }
                (card - 1) as ValueCode
            })
            .collect();
        let labels: Vec<String> = (0..card).map(|v| format!("v{v}")).collect();
        cols.push(Column::categorical_encoded(format!("a{a}"), codes, labels));
    }
    Dataset::from_columns(cols).expect("columns share the row count")
}

/// A uniformly random rank order over `rows` tuples.
pub fn random_ranking(seed: u64, rows: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x52414e4b);
    let mut order: Vec<u32> = (0..rows as u32).collect();
    order.shuffle(&mut rng);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let spec = RandomSpec {
            rows: 60,
            attrs: 4,
            max_card: 3,
        };
        let a = random_dataset(9, spec);
        let b = random_dataset(9, spec);
        assert_eq!(a, b);
        assert_eq!(a.n_rows(), 60);
        assert_eq!(a.n_cols(), 4);
        for c in a.columns() {
            let card = c.cardinality().unwrap();
            assert!((2..=3).contains(&card));
        }
        assert_ne!(a, random_dataset(10, spec));
    }

    #[test]
    fn ranking_is_permutation() {
        let order = random_ranking(5, 100);
        let mut seen = [false; 100];
        for &r in &order {
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        assert_eq!(random_ranking(5, 100), order); // deterministic
        assert_ne!(random_ranking(6, 100), order);
    }

    #[test]
    fn values_are_skewed() {
        let ds = random_dataset(
            3,
            RandomSpec {
                rows: 5000,
                attrs: 1,
                max_card: 4,
            },
        );
        let col = ds.column(0);
        let card = col.cardinality().unwrap();
        let mut counts = vec![0usize; card];
        for r in 0..ds.n_rows() {
            counts[usize::from(col.code(r))] += 1;
        }
        // First value should dominate the last.
        assert!(counts[0] > counts[card - 1]);
    }
}
