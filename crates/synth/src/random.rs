//! Random instances for differential and property-based testing.

use rand::{rngs::StdRng, seq::SliceRandom, RngExt, SeedableRng};
use rankfair_data::{Column, Dataset, ValueCode};

/// Shape of a random dataset.
#[derive(Debug, Clone, Copy)]
pub struct RandomSpec {
    /// Number of rows.
    pub rows: usize,
    /// Number of categorical attributes.
    pub attrs: usize,
    /// Maximum cardinality per attribute (each attribute draws its own
    /// cardinality in `2..=max_card`).
    pub max_card: usize,
}

/// Generates a random categorical dataset. Value distributions are skewed
/// (Zipf-ish) so minorities exist, which is what makes detection
/// interesting.
pub fn random_dataset(seed: u64, spec: RandomSpec) -> Dataset {
    assert!(spec.rows > 0 && spec.attrs > 0 && spec.max_card >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols = Vec::with_capacity(spec.attrs);
    for a in 0..spec.attrs {
        let card = rng.random_range(2..=spec.max_card);
        // Zipf-ish weights 1, 1/2, 1/3, …
        let weights: Vec<f64> = (1..=card).map(|i| 1.0 / i as f64).collect();
        let total: f64 = weights.iter().sum();
        let codes: Vec<ValueCode> = (0..spec.rows)
            .map(|_| {
                let mut x = rng.random::<f64>() * total;
                for (i, &w) in weights.iter().enumerate() {
                    x -= w;
                    if x <= 0.0 {
                        return i as ValueCode;
                    }
                }
                (card - 1) as ValueCode
            })
            .collect();
        let labels: Vec<String> = (0..card).map(|v| format!("v{v}")).collect();
        cols.push(Column::categorical_encoded(format!("a{a}"), codes, labels));
    }
    Dataset::from_columns(cols).expect("columns share the row count")
}

/// SplitMix64 finalizer: decorrelates `(seed, row)` pairs so each row gets
/// an independent generator stream.
fn mix(seed: u64, row: u64) -> u64 {
    let mut z = seed ^ row.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-attribute cardinalities for the streaming generator — a function of
/// the seed and spec alone, so every block of the same dataset agrees on
/// the schema.
fn stream_cards(seed: u64, spec: RandomSpec) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(mix(seed, u64::MAX));
    (0..spec.attrs)
        .map(|_| rng.random_range(2..=spec.max_card))
        .collect()
}

/// Generates the rows `lo..hi` of the streaming random dataset for
/// `(seed, spec)`.
///
/// Unlike [`random_dataset`] (one sequential generator for the whole
/// table), every row's codes here are a pure function of `(seed, row)`:
/// generating `[0, n)` in one call and generating any partition of
/// `[0, n)` block by block produce bit-identical rows. That is what lets
/// a sharded build materialize one shard's rows at a time — no giant
/// intermediate buffer, no cross-shard generator state — and is asserted
/// by the `block_generation_is_split_invariant` test.
///
/// Value distributions are skewed (Zipf-ish) like [`random_dataset`], so
/// minorities exist at every scale.
///
/// # Panics
/// Panics if the block is out of range or the spec is degenerate.
pub fn random_dataset_block(seed: u64, spec: RandomSpec, lo: usize, hi: usize) -> Dataset {
    assert!(spec.rows > 0 && spec.attrs > 0 && spec.max_card >= 2);
    assert!(lo <= hi && hi <= spec.rows, "block {lo}..{hi} out of range");
    let cards = stream_cards(seed, spec);
    let weights: Vec<Vec<f64>> = cards
        .iter()
        .map(|&card| (1..=card).map(|i| 1.0 / i as f64).collect())
        .collect();
    let totals: Vec<f64> = weights.iter().map(|w| w.iter().sum()).collect();
    let mut codes: Vec<Vec<ValueCode>> = (0..spec.attrs)
        .map(|_| Vec::with_capacity(hi - lo))
        .collect();
    for row in lo..hi {
        let mut rng = StdRng::seed_from_u64(mix(seed, row as u64));
        for a in 0..spec.attrs {
            let mut x = rng.random::<f64>() * totals[a];
            let mut code = (cards[a] - 1) as ValueCode;
            for (i, &w) in weights[a].iter().enumerate() {
                x -= w;
                if x <= 0.0 {
                    code = i as ValueCode;
                    break;
                }
            }
            codes[a].push(code);
        }
    }
    let cols: Vec<Column> = codes
        .into_iter()
        .enumerate()
        .map(|(a, codes)| {
            let labels: Vec<String> = (0..cards[a]).map(|v| format!("v{v}")).collect();
            Column::categorical_encoded(format!("a{a}"), codes, labels)
        })
        .collect();
    Dataset::from_columns(cols).expect("columns share the row count")
}

/// The whole streaming dataset: [`random_dataset_block`] over `[0, rows)`.
pub fn random_dataset_streamed(seed: u64, spec: RandomSpec) -> Dataset {
    random_dataset_block(seed, spec, 0, spec.rows)
}

/// A uniformly random rank order over `rows` tuples.
pub fn random_ranking(seed: u64, rows: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x52414e4b);
    let mut order: Vec<u32> = (0..u32::try_from(rows).expect("row count fits TupleId")).collect();
    order.shuffle(&mut rng);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let spec = RandomSpec {
            rows: 60,
            attrs: 4,
            max_card: 3,
        };
        let a = random_dataset(9, spec);
        let b = random_dataset(9, spec);
        assert_eq!(a, b);
        assert_eq!(a.n_rows(), 60);
        assert_eq!(a.n_cols(), 4);
        for c in a.columns() {
            let card = c.cardinality().unwrap();
            assert!((2..=3).contains(&card));
        }
        assert_ne!(a, random_dataset(10, spec));
    }

    #[test]
    fn ranking_is_permutation() {
        let order = random_ranking(5, 100);
        let mut seen = [false; 100];
        for &r in &order {
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        assert_eq!(random_ranking(5, 100), order); // deterministic
        assert_ne!(random_ranking(6, 100), order);
    }

    #[test]
    fn block_generation_is_split_invariant() {
        // The property the sharded bench stands on: generating a dataset
        // block by block — any blocks — reproduces whole-dataset
        // generation exactly.
        let spec = RandomSpec {
            rows: 120,
            attrs: 5,
            max_card: 4,
        };
        let whole = random_dataset_streamed(7, spec);
        assert_eq!(whole.n_rows(), 120);
        assert_eq!(whole.n_cols(), 5);
        for splits in [vec![0, 120], vec![0, 41, 77, 120], vec![0, 1, 2, 120]] {
            let blocks: Vec<Dataset> = splits
                .windows(2)
                .map(|w| random_dataset_block(7, spec, w[0], w[1]))
                .collect();
            for (b, w) in splits.windows(2).zip(&blocks) {
                assert_eq!(w.n_rows(), b[1] - b[0]);
                for col in 0..5 {
                    for r in 0..w.n_rows() {
                        assert_eq!(
                            w.code(r, col),
                            whole.code(b[0] + r, col),
                            "block {}..{} col {col} row {r}",
                            b[0],
                            b[1]
                        );
                    }
                }
            }
        }
        // Different seeds change the data.
        assert_ne!(random_dataset_streamed(8, spec), whole);
        // Repeat generation is bit-identical.
        assert_eq!(random_dataset_streamed(7, spec), whole);
    }

    #[test]
    fn streamed_values_are_skewed() {
        let ds = random_dataset_streamed(
            11,
            RandomSpec {
                rows: 5000,
                attrs: 1,
                max_card: 4,
            },
        );
        let col = ds.column(0);
        let card = col.cardinality().unwrap();
        let mut counts = vec![0usize; card];
        for r in 0..ds.n_rows() {
            counts[usize::from(col.code(r))] += 1;
        }
        assert!(counts[0] > counts[card - 1]);
    }

    #[test]
    fn values_are_skewed() {
        let ds = random_dataset(
            3,
            RandomSpec {
                rows: 5000,
                attrs: 1,
                max_card: 4,
            },
        );
        let col = ds.column(0);
        let card = col.cardinality().unwrap();
        let mut counts = vec![0usize; card];
        for r in 0..ds.n_rows() {
            counts[usize::from(col.code(r))] += 1;
        }
        // First value should dominate the last.
        assert!(counts[0] > counts[card - 1]);
    }
}
