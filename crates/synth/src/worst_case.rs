//! The adversarial construction of Theorem 3.3: an instance whose set of
//! most general biased patterns is exponential in the number of
//! attributes.
//!
//! The dataset has `n` binary attributes and `n + 1` tuples: tuple `i`
//! (for `i < n`) sets attribute `i` to 1 and everything else to 0; tuple
//! `n` is all zeros. The ranking is the identity. With `k = n`,
//! `L_k = n/2 + 1` (global) or `α = (n+3)/(n+4)` (proportional), every
//! pattern assigning 0 to exactly `n/2` attributes is a most general
//! biased pattern — and there are `C(n, n/2) > √(2ⁿ)` of them.

use rankfair_data::{Column, Dataset, ValueCode};

/// Builds the Theorem 3.3 instance for `n` attributes (use an even `n ≥ 2`
/// for the exact counting argument). Returns the dataset and the identity
/// rank order.
pub fn worst_case(n: usize) -> (Dataset, Vec<u32>) {
    assert!(n >= 2, "the construction needs at least 2 attributes");
    let rows = n + 1;
    let mut cols = Vec::with_capacity(n);
    for a in 0..n {
        let codes: Vec<ValueCode> = (0..rows).map(|t| if t == a { 1 } else { 0 }).collect();
        cols.push(Column::categorical_encoded(
            format!("A{}", a + 1),
            codes,
            vec!["0".to_string(), "1".to_string()],
        ));
    }
    let ds = Dataset::from_columns(cols).expect("columns share the row count");
    let order: Vec<u32> = (0..u32::try_from(rows).expect("row count fits TupleId")).collect();
    (ds, order)
}

/// Number of most general biased patterns the Theorem 3.3 instance
/// produces for an even `n`: `C(n, n/2)`. Benchmarks use this to check
/// the exponential blow-up they measure.
pub fn worst_case_result_count(n: usize) -> u64 {
    binomial(n, n / 2)
}

/// `C(n, k)` without overflow for the sizes used in tests/benches.
fn binomial(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut num: u64 = 1;
    let mut den: u64 = 1;
    for i in 0..k {
        num *= (n - i) as u64;
        den *= (i + 1) as u64;
        let g = gcd(num, den);
        num /= g;
        den /= g;
    }
    num / den
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shape() {
        let (ds, order) = worst_case(6);
        assert_eq!(ds.n_rows(), 7);
        assert_eq!(ds.n_cols(), 6);
        assert_eq!(order.len(), 7);
        // Tuple i has a 1 exactly at attribute i.
        for t in 0..6 {
            for a in 0..6 {
                let expect = if t == a { 1 } else { 0 };
                assert_eq!(ds.code(t, a), expect);
            }
        }
        // Last tuple is all zeros.
        for a in 0..6 {
            assert_eq!(ds.code(6, a), 0);
        }
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(20, 10), 184_756);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_n_rejected() {
        worst_case(1);
    }
}
