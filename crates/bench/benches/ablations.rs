//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * rank-ordered bitmap counting vs. naive row scans (the `RankedIndex`
//!   design);
//! * the hand-rolled FxHash pattern maps vs. std's SipHash (perf-book
//!   guidance on hot hash maps);
//! * incremental engine vs. per-k rebuild — the paper's core optimization,
//!   isolated per measure;
//! * additive shard merging vs. the single fused index.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use rankfair::core::{
    oracle, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, Pattern, PatternSpace,
    RankedIndex, ShardedIndex,
};
use rankfair::prelude::{compas_workload, student_workload};
use rankfair_core::util::FxHashMap;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

/// Bitmap AND+popcount counting vs. a naive scan of the rows.
fn counting(c: &mut Criterion) {
    let w = compas_workload(0, 42); // full 6,889 rows
    let space = PatternSpace::from_dataset(&w.detection).unwrap();
    let index = RankedIndex::build(&w.detection, &space, &w.ranking);
    // A set of 1–3-term patterns over the first attributes.
    let patterns: Vec<Pattern> = vec![
        Pattern::single(0, 0),
        Pattern::from_terms(vec![(0, 0), (2, 1)]).unwrap(),
        Pattern::from_terms(vec![(0, 1), (1, 0), (3, 0)]).unwrap(),
    ];
    let mut group = c.benchmark_group("ablation_counting");
    configure(&mut group);
    group.bench_function("bitmap_fused", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                let (sd, topk) = index.counts(p, 49);
                acc += sd + topk;
            }
            acc
        })
    });
    group.bench_function("naive_scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                let (sd, topk) = oracle::naive_counts(&w.detection, &space, &w.ranking, p, 49);
                acc += sd + topk;
            }
            acc
        })
    });
    let sharded = ShardedIndex::build(&w.detection, &space, &w.ranking, 4);
    group.bench_function("bitmap_sharded_merge", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in &patterns {
                let (sd, topk) = sharded.counts(p, 49);
                acc += sd + topk;
            }
            acc
        })
    });
    group.finish();
}

/// FxHash vs. SipHash on the engine's (parent, attr, value) keys.
fn hashing(c: &mut Criterion) {
    let keys: Vec<(u32, u16, u16)> = (0..20_000u32).map(|i| (i, (i % 33) as u16, (i % 5) as u16)).collect();
    let mut group = c.benchmark_group("ablation_hashing");
    configure(&mut group);
    group.bench_function("fxhash", |b| {
        b.iter(|| {
            let mut m: FxHashMap<(u32, u16, u16), u32> = FxHashMap::default();
            for (i, k) in keys.iter().enumerate() {
                m.insert(*k, i as u32);
            }
            let mut acc = 0u64;
            for k in &keys {
                acc += u64::from(m[k]);
            }
            acc
        })
    });
    group.bench_function("siphash", |b| {
        b.iter(|| {
            let mut m: HashMap<(u32, u16, u16), u32> = HashMap::new();
            for (i, k) in keys.iter().enumerate() {
                m.insert(*k, i as u32);
            }
            let mut acc = 0u64;
            for k in &keys {
                acc += u64::from(m[k]);
            }
            acc
        })
    });
    group.finish();
}

/// The paper's core optimization isolated: incremental engine vs. per-k
/// rebuild, for both fairness measures.
fn incremental_vs_rebuild(c: &mut Criterion) {
    let w = student_workload(0, 42);
    let audit = w.audit_with_attrs(11).unwrap();
    let cfg = DetectConfig::new(50, 10, 49);
    let bounds = Bounds::paper_default();
    let global = AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds));
    let prop = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
    let mut group = c.benchmark_group("ablation_incremental");
    configure(&mut group);
    group.bench_function("global_rebuild_per_k", |b| {
        b.iter(|| audit.run(&cfg, &global, Engine::Baseline))
    });
    group.bench_function("global_incremental", |b| {
        b.iter(|| audit.run(&cfg, &global, Engine::Optimized))
    });
    group.bench_function("global_incremental_fast_steps", |b| {
        // The streaming path applies the bound-step rescan extension.
        b.iter(|| audit.run_streaming(&cfg, &global).unwrap().count())
    });
    group.bench_function("prop_rebuild_per_k", |b| {
        b.iter(|| audit.run(&cfg, &prop, Engine::Baseline))
    });
    group.bench_function("prop_incremental", |b| {
        b.iter(|| audit.run(&cfg, &prop, Engine::Optimized))
    });
    group.finish();
}

criterion_group!(ablations, counting, hashing, incremental_vs_rebuild);
criterion_main!(ablations);
