//! Criterion benchmarks — one group per figure of the paper's evaluation.
//!
//! These benches measure representative points of each figure's sweep so
//! `cargo bench` completes in minutes; the full sweeps (every x-axis
//! value, with timeouts, printed as tables) live in the `experiments`
//! binary. Workload sizes are the paper's defaults except COMPAS, which
//! is subsampled to 2,000 rows to keep the baseline affordable under
//! Criterion's repeated sampling.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rankfair::core::{AuditTask, BiasMeasure, Bounds, DetectConfig, Engine};
use rankfair::explain::{ExplainConfig, RankSurrogate};
use rankfair::prelude::{compas_workload, german_workload, student_workload};
use rankfair_bench::audit_with_attrs;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

/// Figures 4 (global) and 5 (proportional): runtime vs #attributes.
fn fig45_attrs(c: &mut Criterion) {
    let w = compas_workload(2000, 42);
    let bounds = Bounds::paper_default();
    let cfg = DetectConfig::new(50, 10, 49);
    for (fig, global) in [("fig4_attrs_global", true), ("fig5_attrs_prop", false)] {
        let mut group = c.benchmark_group(fig);
        configure(&mut group);
        for n_attrs in [4usize, 8, 12] {
            let audit = audit_with_attrs(&w, n_attrs);
            let task = if global {
                AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds.clone()))
            } else {
                AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 })
            };
            group.bench_with_input(BenchmarkId::new("IterTD", n_attrs), &n_attrs, |b, _| {
                b.iter(|| audit.run(&cfg, &task, Engine::Baseline))
            });
            group.bench_with_input(BenchmarkId::new("optimized", n_attrs), &n_attrs, |b, _| {
                b.iter(|| audit.run(&cfg, &task, Engine::Optimized))
            });
        }
        group.finish();
    }
}

/// Figures 6 (global) and 7 (proportional): runtime vs τs.
fn fig67_tau(c: &mut Criterion) {
    let w = student_workload(0, 42);
    let audit = audit_with_attrs(&w, 11);
    let bounds = Bounds::paper_default();
    for (fig, global) in [("fig6_tau_global", true), ("fig7_tau_prop", false)] {
        let mut group = c.benchmark_group(fig);
        configure(&mut group);
        for tau in [10usize, 50, 100] {
            let cfg = DetectConfig::new(tau, 10, 49);
            let task = if global {
                AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds.clone()))
            } else {
                AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 })
            };
            group.bench_with_input(BenchmarkId::new("IterTD", tau), &tau, |b, _| {
                b.iter(|| audit.run(&cfg, &task, Engine::Baseline))
            });
            group.bench_with_input(BenchmarkId::new("optimized", tau), &tau, |b, _| {
                b.iter(|| audit.run(&cfg, &task, Engine::Optimized))
            });
        }
        group.finish();
    }
}

/// Figures 8 (global) and 9 (proportional): runtime vs range of k.
fn fig89_krange(c: &mut Criterion) {
    let w = german_workload(0, 42);
    let audit = audit_with_attrs(&w, 11);
    let bounds = Bounds::paper_default();
    for (fig, global) in [("fig8_krange_global", true), ("fig9_krange_prop", false)] {
        let mut group = c.benchmark_group(fig);
        configure(&mut group);
        for k_max in [50usize, 200, 350] {
            let cfg = DetectConfig::new(50, 10, k_max);
            let task = if global {
                AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds.clone()))
            } else {
                AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 })
            };
            group.bench_with_input(BenchmarkId::new("IterTD", k_max), &k_max, |b, _| {
                b.iter(|| audit.run(&cfg, &task, Engine::Baseline))
            });
            group.bench_with_input(BenchmarkId::new("optimized", k_max), &k_max, |b, _| {
                b.iter(|| audit.run(&cfg, &task, Engine::Optimized))
            });
        }
        group.finish();
    }
}

/// Figure 10: surrogate training and group Shapley attribution.
fn fig10_shapley(c: &mut Criterion) {
    let w = student_workload(0, 42);
    let mut group = c.benchmark_group("fig10_shapley");
    configure(&mut group);
    group.bench_function("fit_surrogate", |b| {
        b.iter(|| RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::fast()))
    });
    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::fast());
    let audit = w.audit().unwrap();
    let p = audit
        .space()
        .pattern(&[("Medu", "primary")])
        .expect("synthetic Medu has a primary level");
    let members = audit.group_members(&p);
    group.bench_function("explain_group", |b| b.iter(|| surrogate.explain_group(&members)));
    group.finish();
}

criterion_group!(figures, fig45_attrs, fig67_tau, fig89_krange, fig10_shapley);
criterion_main!(figures);
