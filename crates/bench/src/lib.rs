//! Shared machinery for the benchmark harness: experiment configuration,
//! timing, and the table writer the `experiments` binary and the Criterion
//! benches build on.
//!
//! Every table and figure of the paper’s evaluation (§VI) has a
//! regenerating entry point here; see `DESIGN.md` §4 for the index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use rankfair::prelude::*;

/// Which algorithm a measurement row refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The `IterTD` baseline.
    IterTd,
    /// `GlobalBounds` (Algorithm 2).
    GlobalBounds,
    /// `PropBounds` (Algorithm 3).
    PropBounds,
}

impl Algo {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::IterTd => "IterTD",
            Algo::GlobalBounds => "GlobalBounds",
            Algo::PropBounds => "PropBounds",
        }
    }
}

/// One timed detection run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Patterns examined (the paper’s search-space metric).
    pub patterns_examined: u64,
    /// Total (k, group) pairs reported.
    pub groups_reported: usize,
    /// Whether the run hit its deadline.
    pub timed_out: bool,
}

/// Runs one algorithm on a prepared audit and measures it.
pub fn run_algo(
    audit: &Audit,
    cfg: &DetectConfig,
    measure: &BiasMeasure,
    algo: Algo,
) -> Measurement {
    let engine = match algo {
        Algo::IterTd => Engine::Baseline,
        Algo::GlobalBounds | Algo::PropBounds => Engine::Optimized,
    };
    let task = AuditTask::UnderRep(measure.clone());
    let start = Instant::now();
    let out = audit
        .run(cfg, &task, engine)
        .expect("benchmark parameters are valid");
    Measurement {
        elapsed: start.elapsed(),
        patterns_examined: out.stats.patterns_examined(),
        groups_reported: out.total_groups(),
        timed_out: out.stats.timed_out,
    }
}

/// Builds an audit over the first `n_attrs` pattern attributes of a
/// workload (the x-axis of Figures 4–5).
pub fn audit_with_attrs(w: &Workload, n_attrs: usize) -> Audit {
    w.audit_with_attrs(n_attrs)
        .expect("workload attributes are categorical")
}

/// The paper’s default parameters (§VI-A): τs = 50, k ∈ [10, 49], step
/// bounds 10/20/30/40, α = 0.8.
pub fn paper_defaults() -> (DetectConfig, Bounds, f64) {
    (DetectConfig::new(50, 10, 49), Bounds::paper_default(), 0.8)
}

/// A minimal aligned-column table writer for experiment output (TSV-ish,
/// readable both by humans and by plotting scripts).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in milliseconds with 1 decimal, or `TIMEOUT`.
pub fn fmt_ms(m: &Measurement) -> String {
    if m.timed_out {
        "TIMEOUT".to_string()
    } else {
        format!("{:.1}", m.elapsed.as_secs_f64() * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "column"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "x".into()]);
        let text = t.render();
        assert!(text.contains("a  column") || text.contains("  a  column"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn run_algo_measures_and_agrees() {
        let w = student_workload(100, 3);
        let audit = audit_with_attrs(&w, 5);
        let cfg = DetectConfig::new(10, 5, 20);
        let bounds = Bounds::constant(3);
        let m = BiasMeasure::GlobalLower(bounds);
        let base = run_algo(&audit, &cfg, &m, Algo::IterTd);
        let opt = run_algo(&audit, &cfg, &m, Algo::GlobalBounds);
        assert!(!base.timed_out && !opt.timed_out);
        assert!(opt.patterns_examined < base.patterns_examined);
        assert_eq!(base.groups_reported, opt.groups_reported);
    }

    #[test]
    fn audit_with_attrs_truncates() {
        let w = student_workload(80, 3);
        let audit = audit_with_attrs(&w, 4);
        assert_eq!(audit.space().n_attrs(), 4);
        let audit_all = audit_with_attrs(&w, 999);
        assert_eq!(audit_all.space().n_attrs(), 33);
    }
}
