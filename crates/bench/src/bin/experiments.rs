//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! Usage:
//!   experiments `<id>` [--timeout SECS] [--seed N] [--quick]
//!
//! ids: fig4 fig5 fig6 fig7 fig8 fig9 fig10 gain casestudy resultsize
//!      worstcase faststeps scaling overrep serve monitor shard serve-net all
//!
//! `overrep`, `serve`, `monitor`, `shard` and `serve-net` additionally
//! write their measurements to `BENCH_overrep.json` / `BENCH_service.json`
//! / `BENCH_monitor.json` / `BENCH_shard.json` / `BENCH_net.json` in the
//! working directory.
//!
//! Absolute runtimes differ from the paper (Rust vs. the authors' Python
//! testbed, synthetic vs. real data); the reproduced claims are the curve
//! *shapes*: optimized ≪ baseline, gaps widening with attribute count and
//! k-range, runtime decreasing in τs, and the qualitative content of the
//! Shapley analysis and case study. See EXPERIMENTS.md.

use std::sync::Arc;
use std::time::Duration;

use rankfair::core::{
    upper, AuditKResult, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, OverRepScope,
};
use rankfair::explain::distribution::compare_distributions;
use rankfair::explain::{ExplainConfig, RankSurrogate};
use rankfair::prelude::{compas_workload, german_workload, student_workload, Workload};
use rankfair_bench::{
    audit_with_attrs, fmt_ms, paper_defaults, run_algo, Algo, Measurement, Table,
};
use rankfair_divergence::{display_items, divergent_subgroups, DivergenceConfig};

struct Opts {
    timeout: Duration,
    seed: u64,
    quick: bool,
}

/// Host core count, recorded in every BENCH_*.json `config` so flat
/// worker-scaling curves from 1-core CI containers are machine-readably
/// distinguishable from real regressions.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

fn parse_args() -> (String, Opts) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = String::from("all");
    let mut opts = Opts {
        timeout: Duration::from_secs(10),
        seed: 42,
        quick: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                i += 1;
                opts.timeout =
                    Duration::from_secs(args.get(i).and_then(|s| s.parse().ok()).unwrap_or(10));
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--quick" => opts.quick = true,
            other if !other.starts_with("--") => cmd = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    (cmd, opts)
}

fn workloads(opts: &Opts) -> Vec<Workload> {
    let scale = |n: usize| if opts.quick { n / 4 } else { 0 };
    vec![
        compas_workload(scale(6889), opts.seed),
        student_workload(scale(395), opts.seed),
        german_workload(scale(1000), opts.seed),
    ]
}

/// Attribute sweep for one workload (Figures 4–5): x = #attributes,
/// y = runtime per algorithm.
fn attr_sweep(w: &Workload, global: bool, opts: &Opts) {
    let (cfg, bounds, alpha) = paper_defaults();
    let cfg = DetectConfig {
        deadline: Some(opts.timeout),
        ..cfg
    };
    let max_attrs = w.attr_names().len();
    let step = if opts.quick { 4 } else { 1 };
    let (measure, opt_algo) = if global {
        (BiasMeasure::GlobalLower(bounds), Algo::GlobalBounds)
    } else {
        (BiasMeasure::Proportional { alpha }, Algo::PropBounds)
    };
    let mut t = Table::new(&[
        "attrs",
        "IterTD_ms",
        &format!("{}_ms", opt_algo.name()),
        "base_patterns",
        "opt_patterns",
        "groups",
    ]);
    let mut base_dead = false;
    for n_attrs in (3..=max_attrs).step_by(step) {
        let audit = audit_with_attrs(w, n_attrs);
        let base = if base_dead {
            Measurement {
                elapsed: opts.timeout,
                patterns_examined: 0,
                groups_reported: 0,
                timed_out: true,
            }
        } else {
            run_algo(&audit, &cfg, &measure, Algo::IterTd)
        };
        if base.timed_out {
            base_dead = true; // the paper stops plotting after the timeout
        }
        let opt = run_algo(&audit, &cfg, &measure, opt_algo);
        t.row(&[
            n_attrs.to_string(),
            fmt_ms(&base),
            fmt_ms(&opt),
            base.patterns_examined.to_string(),
            opt.patterns_examined.to_string(),
            opt.groups_reported.to_string(),
        ]);
        if opt.timed_out {
            break;
        }
    }
    print!("{}", t.render());
}

fn fig45(global: bool, opts: &Opts) {
    let fig = if global { "Figure 4" } else { "Figure 5" };
    let measure = if global {
        "global bounds"
    } else {
        "proportional representation"
    };
    for w in &workloads(opts) {
        println!(
            "\n## {fig}: runtime vs #attributes — {} dataset ({measure})",
            w.name
        );
        attr_sweep(w, global, opts);
    }
}

/// τs sweep (Figures 6–7).
fn fig67(global: bool, opts: &Opts) {
    let fig = if global { "Figure 6" } else { "Figure 7" };
    let (base_cfg, bounds, alpha) = paper_defaults();
    let attrs = if opts.quick { 8 } else { 11 };
    for w in &workloads(opts) {
        println!(
            "\n## {fig}: runtime vs size threshold τs — {} dataset ({} attributes)",
            w.name, attrs
        );
        let audit = audit_with_attrs(w, attrs);
        let (measure, opt_algo) = if global {
            (BiasMeasure::GlobalLower(bounds.clone()), Algo::GlobalBounds)
        } else {
            (BiasMeasure::Proportional { alpha }, Algo::PropBounds)
        };
        let mut t = Table::new(&[
            "tau_s",
            "IterTD_ms",
            &format!("{}_ms", opt_algo.name()),
            "groups",
        ]);
        let taus: Vec<usize> = if opts.quick {
            vec![10, 50, 100]
        } else {
            (10..=100).step_by(10).collect()
        };
        for tau in taus {
            let cfg = DetectConfig {
                tau_s: tau,
                deadline: Some(opts.timeout),
                ..base_cfg.clone()
            };
            let base = run_algo(&audit, &cfg, &measure, Algo::IterTd);
            let opt = run_algo(&audit, &cfg, &measure, opt_algo);
            t.row(&[
                tau.to_string(),
                fmt_ms(&base),
                fmt_ms(&opt),
                opt.groups_reported.to_string(),
            ]);
        }
        print!("{}", t.render());
    }
}

/// k-range sweep (Figures 8–9).
fn fig89(global: bool, opts: &Opts) {
    let fig = if global { "Figure 8" } else { "Figure 9" };
    let attrs = if opts.quick { 8 } else { 11 };
    let (_, bounds, alpha) = paper_defaults();
    for w in &workloads(opts) {
        let n = w.detection.n_rows();
        // COMPAS sweeps k_max to 1000, the smaller datasets to 350 (§VI-B).
        let hard_cap = if w.name == "compas" { 1000 } else { 350 };
        let cap = hard_cap.min(n);
        println!(
            "\n## {fig}: runtime vs range of k (k_min = 10) — {} dataset ({} attributes)",
            w.name, attrs
        );
        let audit = audit_with_attrs(w, attrs);
        let (measure, opt_algo) = if global {
            (BiasMeasure::GlobalLower(bounds.clone()), Algo::GlobalBounds)
        } else {
            (BiasMeasure::Proportional { alpha }, Algo::PropBounds)
        };
        let mut t = Table::new(&[
            "k_max",
            "IterTD_ms",
            &format!("{}_ms", opt_algo.name()),
            "base_patterns",
            "opt_patterns",
        ]);
        let step = if opts.quick { 150 } else { 50 };
        let mut k_max = 50;
        while k_max <= cap {
            let cfg = DetectConfig::new(50, 10, k_max).with_deadline(opts.timeout);
            let base = run_algo(&audit, &cfg, &measure, Algo::IterTd);
            let opt = run_algo(&audit, &cfg, &measure, opt_algo);
            t.row(&[
                k_max.to_string(),
                fmt_ms(&base),
                fmt_ms(&opt),
                base.patterns_examined.to_string(),
                opt.patterns_examined.to_string(),
            ]);
            k_max += step;
        }
        print!("{}", t.render());
    }
}

/// §VI-B search-space gain table.
fn gain(opts: &Opts) {
    println!("\n## §VI-B: search-space gain of the optimized algorithms (patterns examined)");
    let attrs = if opts.quick { 8 } else { 11 };
    let (cfg, bounds, alpha) = paper_defaults();
    let cfg = DetectConfig {
        deadline: Some(opts.timeout),
        ..cfg
    };
    let mut t = Table::new(&["dataset", "problem", "IterTD", "optimized", "gain_%"]);
    for w in &workloads(opts) {
        let audit = audit_with_attrs(w, attrs);
        for global in [true, false] {
            let (measure, opt_algo, label) = if global {
                (
                    BiasMeasure::GlobalLower(bounds.clone()),
                    Algo::GlobalBounds,
                    "global",
                )
            } else {
                (
                    BiasMeasure::Proportional { alpha },
                    Algo::PropBounds,
                    "proportional",
                )
            };
            let base = run_algo(&audit, &cfg, &measure, Algo::IterTd);
            let opt = run_algo(&audit, &cfg, &measure, opt_algo);
            let gain = 100.0 * (1.0 - opt.patterns_examined as f64 / base.patterns_examined as f64);
            t.row(&[
                w.name.to_string(),
                label.to_string(),
                base.patterns_examined.to_string(),
                opt.patterns_examined.to_string(),
                format!("{gain:.2}"),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "(paper, on the real data: 39.35/56.87/29.27% global; 39.60/20.49/56.83% proportional)"
    );
}

/// Figure 10: Shapley analysis of p1 (Student), p2 (COMPAS), p3 (German).
fn fig10(opts: &Opts) {
    println!("\n## Figure 10: result analysis with Shapley values (k = 49, L = 40)");
    let explain_cfg = if opts.quick {
        ExplainConfig::fast()
    } else {
        ExplainConfig::default()
    };
    let ws = workloads(opts);
    // (workload index, group description, paper group)
    type GroupSpec = (usize, &'static [(&'static str, &'static str)], &'static str);
    let specs: [GroupSpec; 3] = [
        (
            1,
            &[("Medu", "primary")],
            "p1 = {mother's education = primary}",
        ),
        (
            0,
            &[("age", "<36ish (youngest bin)")],
            "p2 = {age = younger than ~35}",
        ),
        (
            2,
            &[("status_checking", "0<=...<200 DM")],
            "p3 = {account status = 0≤…<200 DM}",
        ),
    ];
    for (wi, pairs, label) in specs {
        let w = &ws[wi];
        let audit = w.audit().unwrap();
        // Resolve the group pattern; for COMPAS "age" the youngest bin is
        // looked up dynamically (bin labels depend on the synthetic data).
        let pattern = if pairs[0].1.starts_with('<') {
            let a = audit.space().attr_by_name("age").expect("age attribute");
            rankfair::core::Pattern::single(a, 0)
        } else {
            match audit.space().pattern(pairs) {
                Some(p) => p,
                None => {
                    println!(
                        "\n### {} — {label}: group not present in synthetic data, skipped",
                        w.name
                    );
                    continue;
                }
            }
        };
        let (sd, count) = audit.index().counts(&pattern, 49.min(w.detection.n_rows()));
        println!(
            "\n### {} — {label} → {} (s_D = {sd}, top-49 = {count})",
            w.name,
            audit.describe(&pattern)
        );
        let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &explain_cfg);
        println!("surrogate in-sample R² = {:.3}", surrogate.fit_quality());
        let members = audit.group_members(&pattern);
        let ex = surrogate.explain_group(&members);
        println!("aggregated Shapley values (top 6):");
        print!("{}", ex.render(6));
        let top_attr = ex.ranked_attributes()[0].0.clone();
        let topk: Vec<u32> = w.ranking.top_k(49.min(w.detection.n_rows())).to_vec();
        let cmp = compare_distributions(&w.raw, &top_attr, &topk, &members);
        println!("value distribution of `{top_attr}` (top-k vs group):");
        print!("{}", cmp.render());
        println!("total variation distance: {:.3}", cmp.total_variation());
    }
}

/// §VI-D case study vs. the divergence framework.
fn casestudy(opts: &Opts) {
    println!("\n## §VI-D case study: detection vs. divergence (Student, 4 attributes, k = 10)");
    let w = student_workload(if opts.quick { 200 } else { 0 }, opts.seed);
    let attrs = ["school", "sex", "age", "address"];
    let audit = rankfair::core::Audit::builder(w.detection.clone())
        .ranking(w.ranking.clone())
        .attributes(attrs)
        .build()
        .unwrap();
    let cfg = DetectConfig::new(50, 10, 10);

    let g_task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(10)));
    let p_task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
    let global = audit.run(&cfg, &g_task, Engine::Optimized).unwrap();
    let prop = audit.run(&cfg, &p_task, Engine::Optimized).unwrap();
    let mut t = Table::new(&["method", "groups", "examples"]);
    let describe = |pats: &[rankfair::core::Pattern]| {
        pats.iter()
            .take(3)
            .map(|p| audit.describe(p))
            .collect::<Vec<_>>()
            .join(" ")
    };
    t.row(&[
        "GlobalBounds".into(),
        global.per_k[0].under.len().to_string(),
        describe(&global.per_k[0].under),
    ]);
    t.row(&[
        "PropBounds".into(),
        prop.per_k[0].under.len().to_string(),
        describe(&prop.per_k[0].under),
    ]);
    let cols: Vec<usize> = attrs
        .iter()
        .map(|a| w.detection.column_index(a).unwrap())
        .collect();
    let div = divergent_subgroups(
        &w.detection,
        &w.ranking,
        10,
        &DivergenceConfig {
            min_support: 0.13,
            max_len: 0,
            columns: Some(cols),
        },
    );
    let div_examples = div
        .iter()
        .take(3)
        .map(|s| display_items(&w.detection, &s.items))
        .collect::<Vec<_>>()
        .join(" ");
    t.row(&["Divergence[27]".into(), div.len().to_string(), div_examples]);
    print!("{}", t.render());
    let subsumed = div
        .iter()
        .filter(|a| {
            div.iter().any(|b| {
                b.items.len() < a.items.len() && b.items.iter().all(|i| a.items.contains(i))
            })
        })
        .count();
    println!(
        "{subsumed}/{} divergence subgroups are subsumed by another; detection outputs only most general patterns",
        div.len()
    );
    println!(
        "(paper, real data: PropBounds 2 groups ⊂ GlobalBounds 5 groups ⊂ divergence 28 groups)"
    );
}

/// §III: fraction of parameter settings reporting < 100 groups.
fn resultsize(opts: &Opts) {
    println!("\n## §III: size of the reported result sets across a parameter grid");
    let mut total = 0usize;
    let mut small = 0usize;
    let mut max_seen = 0usize;
    let attrs = if opts.quick { 8 } else { 11 };
    for w in &workloads(opts) {
        let audit = audit_with_attrs(w, attrs);
        for tau in [30, 50, 80] {
            for alpha in [0.6, 0.8, 1.0] {
                let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha });
                let out = audit
                    .run(&DetectConfig::new(tau, 10, 49), &task, Engine::Optimized)
                    .unwrap();
                for kr in &out.per_k {
                    total += 1;
                    max_seen = max_seen.max(kr.under.len());
                    if kr.under.len() < 100 {
                        small += 1;
                    }
                }
            }
            let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::paper_default()));
            let out = audit
                .run(&DetectConfig::new(tau, 10, 49), &task, Engine::Optimized)
                .unwrap();
            for kr in &out.per_k {
                total += 1;
                max_seen = max_seen.max(kr.under.len());
                if kr.under.len() < 100 {
                    small += 1;
                }
            }
        }
    }
    println!(
        "{small}/{total} = {:.2}% of result sets have < 100 groups (max seen: {max_seen}); paper reports 97.58%",
        100.0 * small as f64 / total as f64
    );
}

/// Ablation of the bound-step extension: Algorithm 2's rebuild-at-steps
/// vs. the node-store rescan (the streaming path's bound-step handling).
fn faststeps(opts: &Opts) {
    println!("\n## Ablation: bound-step handling in GlobalBounds (rebuild vs. rescan)");
    let attrs = if opts.quick { 8 } else { 11 };
    let (cfg, bounds, _) = paper_defaults();
    let cfg = DetectConfig {
        deadline: Some(opts.timeout),
        ..cfg
    };
    let mut t = Table::new(&[
        "dataset",
        "rebuild_ms",
        "rescan_ms",
        "rebuild_evals",
        "rescan_evals",
    ]);
    for w in &workloads(opts) {
        let audit = audit_with_attrs(w, attrs);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds.clone()));
        let t0 = std::time::Instant::now();
        let rebuild = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        let rebuild_ms = t0.elapsed().as_secs_f64() * 1000.0;
        // The streaming path applies the rescan extension at bound steps.
        let t0 = std::time::Instant::now();
        let mut stream = audit.run_streaming(&cfg, &task).unwrap();
        let rescan_per_k: Vec<AuditKResult> = stream.by_ref().collect();
        let rescan_evals = stream.stats().nodes_evaluated;
        let rescan_ms = t0.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(
            rebuild.per_k, rescan_per_k,
            "extension must be output-equivalent"
        );
        t.row(&[
            w.name.to_string(),
            format!("{rebuild_ms:.1}"),
            format!("{rescan_ms:.1}"),
            rebuild.stats.nodes_evaluated.to_string(),
            rescan_evals.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(identical outputs; the rescan never re-evaluates a pattern at a bound step)");
}

/// Beyond the paper: runtime as the dataset grows (synthetic COMPAS rows
/// scaled up; default parameters). Both algorithms scan the data only
/// through the bitmap index, so growth should be near-linear in n.
fn scaling(opts: &Opts) {
    println!("\n## Extra: runtime vs dataset size (synthetic COMPAS, 11 attributes)");
    let mut t = Table::new(&[
        "rows",
        "IterTD_ms",
        "PropBounds_ms",
        "GlobalBounds_ms",
        "groups_prop",
    ]);
    let sizes: &[usize] = if opts.quick {
        &[2000, 8000]
    } else {
        &[2000, 5000, 10_000, 20_000, 50_000]
    };
    let (cfg, bounds, alpha) = paper_defaults();
    let cfg = DetectConfig {
        deadline: Some(opts.timeout),
        ..cfg
    };
    for &rows in sizes {
        let w = compas_workload(rows, opts.seed);
        let audit = audit_with_attrs(&w, 11);
        let base = run_algo(
            &audit,
            &cfg,
            &BiasMeasure::Proportional { alpha },
            Algo::IterTd,
        );
        let prop = run_algo(
            &audit,
            &cfg,
            &BiasMeasure::Proportional { alpha },
            Algo::PropBounds,
        );
        let glob = run_algo(
            &audit,
            &cfg,
            &BiasMeasure::GlobalLower(bounds.clone()),
            Algo::GlobalBounds,
        );
        t.row(&[
            rows.to_string(),
            fmt_ms(&base),
            fmt_ms(&prop),
            fmt_ms(&glob),
            prop.groups_reported.to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// Over-representation engines: the incremental upper engine (one build,
/// per-`k` subtree walks and frontier deltas) vs. the per-`k` rescan it
/// replaced (fresh DFS + full maximality sweep at every `k`) vs. the
/// brute-force baseline. Prints a table and writes `BENCH_overrep.json`.
fn overrep(opts: &Opts) {
    println!("\n## Over-representation: incremental engine vs per-k rescan vs brute force");
    let attrs = if opts.quick { 6 } else { 9 };
    // Step upper bounds in the shape of the paper's lower-bound defaults:
    // the top-k may contain at most ~60% of its slots from one group.
    let upper = Bounds::steps(vec![(10, 6), (20, 12), (30, 18), (40, 24)]);
    let mut t = Table::new(&[
        "dataset",
        "rows",
        "incremental_ms",
        "rescan_ms",
        "baseline_ms",
        "inc_evals",
        "rescan_evals",
        "groups",
    ]);
    let mut json_rows: Vec<String> = Vec::new();
    for w in &workloads(opts) {
        let audit = audit_with_attrs(w, attrs.min(w.attr_names().len()));
        let rows = w.detection.n_rows();
        let cfg = DetectConfig::new(50, 10, 49.min(rows)).with_deadline(opts.timeout);
        let task = AuditTask::OverRep {
            upper: upper.clone(),
            scope: OverRepScope::MostSpecific,
        };

        let t0 = std::time::Instant::now();
        let inc = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        let inc_ms = t0.elapsed().as_secs_f64() * 1000.0;

        let t0 = std::time::Instant::now();
        let rescan = upper::upper_most_specific(audit.index(), audit.space(), &cfg, &upper);
        let rescan_ms = t0.elapsed().as_secs_f64() * 1000.0;

        let t0 = std::time::Instant::now();
        let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
        let base_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // The three paths must agree on every k all of them completed.
        for (a, b) in inc.per_k.iter().zip(&rescan.per_k) {
            assert_eq!(a.over, b.patterns, "incremental vs rescan at k={}", a.k);
        }
        for (a, b) in inc.per_k.iter().zip(&base.per_k) {
            assert_eq!(a.over, b.over, "incremental vs baseline at k={}", a.k);
        }

        let groups = inc.total_groups();
        t.row(&[
            w.name.to_string(),
            rows.to_string(),
            format!("{inc_ms:.1}"),
            format!("{rescan_ms:.1}"),
            format!(
                "{base_ms:.1}{}",
                if base.stats.timed_out { "*" } else { "" }
            ),
            inc.stats.nodes_evaluated.to_string(),
            rescan.stats.nodes_evaluated.to_string(),
            groups.to_string(),
        ]);
        json_rows.push(format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"rows\": {}, \"attrs\": {}, ",
                "\"incremental_ms\": {:.3}, \"rescan_ms\": {:.3}, \"baseline_ms\": {:.3}, ",
                "\"incremental_evals\": {}, \"rescan_evals\": {}, ",
                "\"incremental_touched\": {}, \"groups\": {}, \"baseline_timed_out\": {}}}"
            ),
            w.name,
            rows,
            attrs.min(w.attr_names().len()),
            inc_ms,
            rescan_ms,
            base_ms,
            inc.stats.nodes_evaluated,
            rescan.stats.nodes_evaluated,
            inc.stats.nodes_touched,
            groups,
            base.stats.timed_out,
        ));
    }
    print!("{}", t.render());
    println!("(* = hit the timeout; rescan = the pre-incremental Engine::Optimized path)");
    let json = format!(
        "{{\n  \"bench\": \"overrep\",\n  \"config\": {{\"tau_s\": 50, \"k_min\": 10, \"k_max\": 49, \"upper\": \"steps(10:6,20:12,30:18,40:24)\", \"quick\": {}, \"timeout_s\": {}, \"cores\": {}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        opts.quick,
        opts.timeout.as_secs(),
        host_cores(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_overrep.json", &json) {
        Ok(()) => println!("wrote BENCH_overrep.json"),
        Err(e) => eprintln!("could not write BENCH_overrep.json: {e}"),
    }
}

/// Service throughput: cold queries (every request pays audit
/// construction — space + ranked index) vs. cached queries (all requests
/// share one cached audit) at 1/2/4/8 concurrent client workers against a
/// single `AuditService`. Prints a table and writes `BENCH_service.json`.
fn serve_bench(opts: &Opts) {
    use rankfair::json::Value;
    use rankfair::service::{AuditRequest, AuditService, RankingSpec};

    println!("\n## AuditService throughput: cold (build per request) vs cached");
    let w = compas_workload(if opts.quick { 6889 / 4 } else { 0 }, opts.seed);
    let per_worker = if opts.quick { 4 } else { 16 };
    let order = w.ranking.order().to_vec();
    let raw = Arc::new(w.raw.clone());
    // The request carries the full preparation pipeline (the §VI-A COMPAS
    // bucketization), exactly as a wire client would send it: a cold
    // request pays dataset copy + bucketization + pattern space + ranked
    // index; a cached one skips all of it.
    let bucketize: Vec<(String, usize)> = [
        ("age", 4),
        ("juv_fel_count", 3),
        ("juv_misd_count", 3),
        ("juv_other_count", 3),
        ("priors_count", 4),
        ("days_b_screening_arrest", 3),
        ("c_days_from_compas", 4),
        ("start", 3),
        ("end", 4),
    ]
    .map(|(c, b)| (c.to_string(), b))
    .into_iter()
    .collect();
    // Single-k queries — the interactive serving shape ("who is biased in
    // the top 20?"). The k-range sweep is the batch shape benchmarked by
    // the other experiments; here the contrast under test is construction
    // (cold) vs. not (cached).
    let request_for = |dataset: String| AuditRequest {
        dataset,
        attributes: None,
        bucketize: bucketize.clone(),
        ranking: RankingSpec::Order(order.clone()),
        task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::paper_default())),
        config: DetectConfig::new(50, 20, 20),
        engine: Engine::Optimized,
    };

    let mut t = Table::new(&[
        "workers",
        "requests",
        "cold_ms",
        "cold_qps",
        "cached_ms",
        "cached_qps",
        "speedup",
    ]);
    let mut json_rows: Vec<Value> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let service = AuditService::new();
        let total = workers * per_worker;
        // Cold path: every request addresses a distinct alias of the same
        // in-memory dataset, so every request maps to a fresh cache key
        // and pays space + index construction.
        for i in 0..total {
            service.register_dataset(&format!("compas#{i}"), Arc::clone(&raw));
        }
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for worker in 0..workers {
                let (service, request_for) = (&service, &request_for);
                s.spawn(move || {
                    for i in 0..per_worker {
                        let req = request_for(format!("compas#{}", worker * per_worker + i));
                        let resp = service.handle(&req).expect("bench request");
                        assert!(!resp.cache.hit, "cold request must not hit");
                    }
                });
            }
        });
        let cold_s = t0.elapsed().as_secs_f64();
        assert_eq!(service.cache_stats(), (0, total as u64));

        // Cached path: one shared key, warmed once; every request after
        // the warm-up skips construction.
        service.register_dataset("compas", Arc::clone(&raw));
        let warm_req = request_for("compas".to_string());
        let warm = service.handle(&warm_req).expect("warm-up");
        assert!(!warm.cache.hit);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let (service, warm_req) = (&service, &warm_req);
                s.spawn(move || {
                    for _ in 0..per_worker {
                        let resp = service.handle(warm_req).expect("bench request");
                        assert!(resp.cache.hit, "warmed request must hit");
                    }
                });
            }
        });
        let cached_s = t0.elapsed().as_secs_f64();

        let cold_qps = total as f64 / cold_s;
        let cached_qps = total as f64 / cached_s;
        t.row(&[
            workers.to_string(),
            total.to_string(),
            format!("{:.1}", cold_s * 1000.0),
            format!("{cold_qps:.0}"),
            format!("{:.1}", cached_s * 1000.0),
            format!("{cached_qps:.0}"),
            format!("{:.1}x", cached_qps / cold_qps),
        ]);
        json_rows.push(Value::object([
            ("workers", Value::from(workers)),
            ("requests", Value::from(total)),
            ("cold_ms", Value::from(cold_s * 1000.0)),
            ("cold_qps", Value::from(cold_qps)),
            ("cached_ms", Value::from(cached_s * 1000.0)),
            ("cached_qps", Value::from(cached_qps)),
        ]));
    }
    print!("{}", t.render());
    println!("(cold = fresh cache key per request; cached = one warmed key shared by all)");
    let json = Value::object([
        ("bench", Value::from("serve")),
        (
            "config",
            Value::object([
                ("dataset", Value::from("compas")),
                ("rows", Value::from(w.detection.n_rows())),
                ("tau_s", Value::from(50usize)),
                ("k_min", Value::from(20usize)),
                ("k_max", Value::from(20usize)),
                ("per_worker", Value::from(per_worker)),
                ("quick", Value::from(opts.quick)),
                ("cores", Value::from(host_cores())),
            ]),
        ),
        ("rows", Value::array(json_rows)),
    ]);
    match std::fs::write("BENCH_service.json", json.render() + "\n") {
        Ok(()) => println!("wrote BENCH_service.json"),
        Err(e) => eprintln!("could not write BENCH_service.json: {e}"),
    }
}

/// Speedup floors the `--quick` monitor bench enforces (exit 1 on
/// regression), guarding the persistent-engine-state win in CI. Quick
/// mode runs COMPAS/4 with 8 batches on shared runners; the floors sit
/// below the measured quick numbers to absorb timing noise while still
/// catching a collapse back to pre-checkpoint behavior (delta ≈ rebuild
/// at batch=1; delta ≈ 0.6× at batch=16 when the span seek is broken).
/// With arena-backed stores, counts-only snapshots and segmented replay
/// the measured quick numbers are ~16-20× at batch=1, ~2.2-2.5× on the
/// dense batch=16 workload, and ~10-13× on the sparse two-cluster
/// batch=16 workload where segmented replay skips the dead middle of the
/// hull. The dense batch=16 case replays ~37 of the 40 audited `k`
/// values, so its ratio is capped near (fixed rebuild cost + per-`k`
/// work) / per-`k` work ≈ 2.8× — the floor sits at 2.0× (was 1.2× under
/// hull replay) to stay noise-proof, and the ≥ 4× segmented-replay
/// guarantee is gated on the sparse workload, whose changed-`k` set is
/// genuinely small. The floors compare against a *trimmed* ratio — each
/// side's single slowest batch is dropped before summing (the untrimmed
/// ratio is still reported): a single scheduler hiccup in a ~1.5ms batch
/// series swings the total by 2×, while a real regression slows every
/// batch and the survivors still show it.
const QUICK_FLOOR_BATCH_1: f64 = 6.0;
const QUICK_FLOOR_BATCH_16: f64 = 2.0;
const QUICK_FLOOR_BATCH_16_SPARSE: f64 = 4.0;

/// Live monitor: delta re-audit after small edit batches vs. a full audit
/// rebuild (space + index construction + whole-`k`-range run) after every
/// batch, on COMPAS. Prints a table and writes `BENCH_monitor.json`; with
/// `--quick` it additionally enforces the speedup floors above.
fn monitor_bench(opts: &Opts) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rankfair::core::MonitorAudit;
    use rankfair::json::Value;

    println!("\n## Live monitor: delta re-audit vs full rebuild per edit batch (COMPAS)");
    let attrs = if opts.quick { 6 } else { 9 };
    let w = compas_workload(if opts.quick { 6889 / 4 } else { 0 }, opts.seed);
    let n = w.detection.n_rows();
    // Materialize the ranking as a continuous score column (position-
    // derived, so the monitor's order matches the workload's ranking
    // exactly and score edits move tuples by a controlled distance).
    let mut ds = (*w.detection).clone();
    let scores: Vec<f64> = (0..n)
        .map(|row| {
            let row = u32::try_from(row).expect("bench row ids fit TupleId");
            (n - w.ranking.position(row)) as f64
        })
        .collect();
    ds.push_column(rankfair::data::Column::numeric("__score", scores))
        .expect("fresh column name");
    let attr_names: Vec<String> = w.attr_names().into_iter().take(attrs).collect();

    let cfg = DetectConfig::new(50, 10, 49.min(n));
    let task = AuditTask::Combined {
        lower: Bounds::paper_default(),
        upper: Bounds::steps(vec![(10, 6), (20, 12), (30, 18), (40, 24)]),
    };

    let batches: usize = if opts.quick { 8 } else { 40 };
    let mut t = Table::new(&[
        "batch_size",
        "batches",
        "delta_ms",
        "rebuild_ms",
        "speedup",
        "recomputed_k",
        "changes",
        "seeks/repairs",
    ]);
    let mut json_rows: Vec<Value> = Vec::new();
    let mut floor_failures: Vec<String> = Vec::new();
    for (batch_size, sparse) in [(1usize, false), (4, false), (16, false), (16, true)] {
        let mut monitor = MonitorAudit::builder(ds.clone(), "__score")
            .attributes(attr_names.iter().cloned())
            .build(cfg.clone(), task.clone(), Engine::Optimized)
            .expect("monitor build");
        let mut rng = StdRng::seed_from_u64(opts.seed ^ batch_size as u64 ^ (sparse as u64) << 8);
        let mut delta_times: Vec<f64> = Vec::with_capacity(batches);
        let mut rebuild_times: Vec<f64> = Vec::with_capacity(batches);
        let mut recomputed_k = 0usize;
        let mut changes = 0usize;
        for _ in 0..batches {
            let ranking = monitor.ranking();
            let edits: Vec<rankfair::core::RankingEdit> = (0..batch_size)
                .map(|i| {
                    let (pos, nudge) = if sparse {
                        // Sparse shape: two tight clusters near the ends of
                        // the audited k window, each row nudged by 1–2
                        // positions. The net-movement hull spans most of the
                        // window but the true changed-k set is two short
                        // segments — the case segmented replay exists for.
                        let base = if i % 2 == 0 { 12 } else { 45.min(n - 3) };
                        (
                            base + rng.random_range(0..2usize),
                            rng.random_range(1..=2usize),
                        )
                    } else {
                        // Contested-region edits: rows currently ranked near
                        // the audited k window, nudged by up to ~25 positions
                        // — the live-traffic shape where the top-k actually
                        // churns. (Edits far below the window would recompute
                        // nothing and make the comparison trivially
                        // flattering.)
                        (
                            rng.random_range(0..80usize.min(n)),
                            rng.random_range(1..=25usize),
                        )
                    };
                    let row = ranking.at(pos);
                    let up: bool = rng.random();
                    let score = (n - pos) as f64 + if up { nudge as f64 } else { -(nudge as f64) };
                    rankfair::core::RankingEdit::ScoreUpdate { row, score }
                })
                .collect();
            let t0 = std::time::Instant::now();
            let delta = monitor.apply(&edits).expect("apply");
            delta_times.push(t0.elapsed().as_secs_f64());
            // Sum the segments actually replayed, not the hull width — the
            // two differ exactly when segmented replay pays off.
            recomputed_k += delta
                .segments
                .iter()
                .map(|&(lo, hi)| hi - lo + 1)
                .sum::<usize>();
            changes += delta.total_changes();

            // The alternative a monitor-less server pays per batch: re-rank
            // the edited scores from scratch (O(n log n) sort), rebuild the
            // audit (pattern space + bitmap index) and run the whole k
            // range.
            let snapshot = Arc::new(monitor.dataset().clone());
            let ranker = rankfair::rank::AttributeRanker::by_desc("__score");
            let t0 = std::time::Instant::now();
            let audit = rankfair::core::Audit::builder(Arc::clone(&snapshot))
                .ranker(&ranker)
                .attributes(attr_names.iter().cloned())
                .build()
                .expect("audit build");
            let full = audit
                .run(&cfg, &task, Engine::Optimized)
                .expect("audit run");
            rebuild_times.push(t0.elapsed().as_secs_f64());
            assert_eq!(
                monitor.results(),
                &full.per_k[..],
                "delta re-audit diverged from full rebuild"
            );
        }
        let delta_s: f64 = delta_times.iter().sum();
        let rebuild_s: f64 = rebuild_times.iter().sum();
        let speedup = rebuild_s / delta_s.max(1e-9);
        // The floor gates on a *trimmed* ratio — each side's single
        // slowest batch is dropped before summing. One scheduler hiccup in
        // an 8-batch × ~1.5ms series moves the untrimmed total by 2×
        // either way, and a flaky CI gate is worse than a slightly
        // later-firing one; a real regression slows every batch and the
        // seven survivors still show it. (A per-batch median would be
        // blind at batch=1, where most single-edit batches recompute
        // nothing and stay fast no matter how broken replay is.)
        let trimmed = |times: &[f64]| -> f64 {
            let max = times.iter().copied().fold(0.0f64, f64::max);
            times.iter().sum::<f64>() - max
        };
        let speedup_trimmed = trimmed(&rebuild_times) / trimmed(&delta_times).max(1e-9);
        let ck = monitor
            .checkpoint_stats()
            .expect("optimized monitor keeps engine state");
        let label = if sparse {
            format!("{batch_size} (sparse)")
        } else {
            batch_size.to_string()
        };
        t.row(&[
            label,
            batches.to_string(),
            format!("{:.2}", delta_s * 1000.0),
            format!("{:.2}", rebuild_s * 1000.0),
            format!("{speedup:.1}x"),
            recomputed_k.to_string(),
            changes.to_string(),
            format!("{}/{}", ck.seeks, ck.repairs),
        ]);
        json_rows.push(Value::object([
            ("batch_size", Value::from(batch_size)),
            (
                "workload",
                Value::from(if sparse { "sparse" } else { "dense" }),
            ),
            ("batches", Value::from(batches)),
            ("delta_ms", Value::from(delta_s * 1000.0)),
            ("rebuild_ms", Value::from(rebuild_s * 1000.0)),
            ("speedup", Value::from(speedup)),
            ("speedup_trimmed", Value::from(speedup_trimmed)),
            ("recomputed_k", Value::from(recomputed_k)),
            ("changes", Value::from(changes)),
            (
                "checkpoints",
                Value::object([
                    ("cadence", Value::from(ck.cadence)),
                    ("seeks", Value::from(ck.seeks as usize)),
                    ("repairs", Value::from(ck.repairs as usize)),
                    ("cold_builds", Value::from(ck.cold_builds as usize)),
                    ("replayed_steps", Value::from(ck.replayed_steps as usize)),
                    ("segments", Value::from(ck.segments as usize)),
                    ("prefix_recounts", Value::from(ck.prefix_recounts as usize)),
                    ("stored_nodes", Value::from(ck.stored_nodes)),
                    ("arena_nodes", Value::from(ck.arena_nodes)),
                ]),
            ),
        ]));
        let floor = match (batch_size, sparse) {
            (1, false) => Some(QUICK_FLOOR_BATCH_1),
            (16, false) => Some(QUICK_FLOOR_BATCH_16),
            (16, true) => Some(QUICK_FLOOR_BATCH_16_SPARSE),
            _ => None,
        };
        if let Some(floor) = floor {
            if opts.quick && speedup_trimmed < floor {
                floor_failures.push(format!(
                    "batch={batch_size}{}: trimmed delta-vs-rebuild speedup {speedup_trimmed:.2}x below the floor {floor}x",
                    if sparse { " (sparse)" } else { "" }
                ));
            }
        }
    }
    print!("{}", t.render());
    println!("(every batch cross-checked: monitor results == fresh audit of the edited ranking)");
    let json = Value::object([
        ("bench", Value::from("monitor")),
        (
            "config",
            Value::object([
                ("dataset", Value::from("compas")),
                ("rows", Value::from(n)),
                ("attrs", Value::from(attrs)),
                ("tau_s", Value::from(50usize)),
                ("k_min", Value::from(10usize)),
                ("k_max", Value::from(49.min(n))),
                (
                    "task",
                    Value::from("combined(paper_default, steps(10:6,20:12,30:18,40:24))"),
                ),
                ("seed", Value::from(opts.seed as usize)),
                ("quick", Value::from(opts.quick)),
                ("cores", Value::from(host_cores())),
            ]),
        ),
        ("rows", Value::array(json_rows)),
    ]);
    match std::fs::write("BENCH_monitor.json", json.render() + "\n") {
        Ok(()) => println!("wrote BENCH_monitor.json"),
        Err(e) => eprintln!("could not write BENCH_monitor.json: {e}"),
    }
    if !floor_failures.is_empty() {
        for f in &floor_failures {
            eprintln!("MONITOR BENCH REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

/// Parallel-speedup floor the `--quick` shard bench enforces at 4 shards
/// (exit 1 on regression). Per-shard counting only fans out when the host
/// has cores to fan out to, so the floor is **core-count-aware**: hosts
/// with fewer than 4 cores skip it (sharding degenerates to a sequential
/// merge there — correctness is still fully checked) instead of failing.
const SHARD_QUICK_FLOOR_AT_4: f64 = 1.5;
const SHARD_FLOOR_MIN_CORES: usize = 4;

/// Sharded audit at scale: a seeded synthetic dataset (10M+ rows; quick
/// mode shrinks it for CI smoke) audited through [`ShardedIndex`] at
/// several shard counts, every outcome cross-checked against the
/// unsharded audit, plus a subsampled control re-audited both ways.
/// Prints a table and writes `BENCH_shard.json` (scale + parallel-speedup
/// numbers); with `--quick` it enforces the speedup floor above when the
/// host has enough cores.
fn shard_bench(opts: &Opts) {
    use rankfair::core::Audit;
    use rankfair::json::Value;
    use rankfair::rank::Ranking;
    use rankfair::synth::{
        random_dataset_block, random_dataset_streamed, random_ranking, RandomSpec,
    };

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let rows: usize = if opts.quick { 200_000 } else { 10_000_000 };
    let shard_counts: &[usize] = if opts.quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let spec = RandomSpec {
        rows,
        attrs: 6,
        max_card: 5,
    };
    println!("\n## Sharded audit at scale ({rows} rows, {cores} core(s))");

    // Streaming generation: the whole table in one pass. The per-row
    // generator makes every block a pure function of (seed, row), checked
    // below at scale against an independently generated block.
    let t0 = std::time::Instant::now();
    let ds = Arc::new(random_dataset_streamed(opts.seed, spec));
    let gen_s = t0.elapsed().as_secs_f64();
    println!(
        "generated {} rows x {} attrs in {:.1}s",
        ds.n_rows(),
        ds.n_cols(),
        gen_s
    );
    // Split-invariance spot check at scale: a mid-table block generated
    // on its own must reproduce the streamed table bit-for-bit.
    let lo = rows / 2;
    let block = random_dataset_block(opts.seed, spec, lo, lo + 1_000);
    for r in 0..block.n_rows() {
        for c in 0..block.n_cols() {
            assert_eq!(
                block.code(r, c),
                ds.code(lo + r, c),
                "streamed generation is not split-invariant at row {}",
                lo + r
            );
        }
    }

    let order = random_ranking(opts.seed, rows);
    let ranking = Ranking::from_order(order).expect("permutation");
    let cfg = DetectConfig::new(rows / 20, 10, 49);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(20)));

    let mut t = Table::new(&[
        "shards", "build_ms", "run_ms", "speedup", "groups", "patterns",
    ]);
    let mut json_rows: Vec<Value> = Vec::new();
    let mut unsharded: Option<(rankfair::core::AuditOutcome, f64)> = None;
    let mut speedup_at_floor: Option<f64> = None;
    for &shards in shard_counts {
        let t0 = std::time::Instant::now();
        let audit = Audit::builder(Arc::clone(&ds))
            .ranking(ranking.clone())
            .shards(shards)
            .build()
            .expect("audit build");
        let build_s = t0.elapsed().as_secs_f64();
        assert_eq!(audit.index().shard_count(), shards);
        let t0 = std::time::Instant::now();
        let out = audit
            .run(&cfg, &task, Engine::Optimized)
            .expect("audit run");
        let run_s = t0.elapsed().as_secs_f64();
        // Correctness gate: every sharded outcome must equal the
        // unsharded audit of the same task, k for k. The speedup is
        // end-to-end (index build + run): shard builds fan out over one
        // thread per shard, and per-shard counting fans out too once the
        // universe is large enough for scans to dominate spawn cost.
        let total_s = build_s + run_s;
        let speedup = match &unsharded {
            None => {
                unsharded = Some((out.clone(), total_s));
                1.0
            }
            Some((base, base_s)) => {
                assert_eq!(
                    base.per_k, out.per_k,
                    "sharded audit ({shards} shards) diverged from unsharded"
                );
                base_s / total_s.max(1e-9)
            }
        };
        if shards == 4 {
            speedup_at_floor = Some(speedup);
        }
        t.row(&[
            shards.to_string(),
            format!("{:.1}", build_s * 1000.0),
            format!("{:.1}", run_s * 1000.0),
            format!("{speedup:.2}x"),
            out.total_groups().to_string(),
            out.stats.patterns_examined().to_string(),
        ]);
        json_rows.push(Value::object([
            ("shards", Value::from(shards)),
            ("build_ms", Value::from(build_s * 1000.0)),
            ("run_ms", Value::from(run_s * 1000.0)),
            ("speedup_vs_unsharded", Value::from(speedup)),
            ("groups", Value::from(out.total_groups())),
            (
                "patterns_examined",
                Value::from(out.stats.patterns_examined()),
            ),
        ]));
    }
    print!("{}", t.render());
    println!("(every shard count cross-checked: sharded per-k results == unsharded audit)");

    // Subsampled control: a small prefix of the same streamed table (its
    // own dataset by split-invariance), audited sharded and unsharded.
    let control_rows = (rows / 100).max(10_000).min(rows);
    let control_spec = RandomSpec {
        rows: control_rows,
        ..spec
    };
    let control = Arc::new(random_dataset_block(
        opts.seed,
        control_spec,
        0,
        control_rows,
    ));
    let control_ranking =
        Ranking::from_order(random_ranking(opts.seed ^ 1, control_rows)).expect("permutation");
    let control_cfg = DetectConfig::new(control_rows / 20, 10, 49);
    let base = Audit::builder(Arc::clone(&control))
        .ranking(control_ranking.clone())
        .build()
        .expect("control build")
        .run(&control_cfg, &task, Engine::Optimized)
        .expect("control run");
    for shards in [3usize, 7] {
        let out = Audit::builder(Arc::clone(&control))
            .ranking(control_ranking.clone())
            .shards(shards)
            .build()
            .expect("control build")
            .run(&control_cfg, &task, Engine::Optimized)
            .expect("control run");
        assert_eq!(
            base.per_k, out.per_k,
            "subsampled control diverged at {shards} shards"
        );
    }
    println!("(subsampled control: {control_rows} rows re-audited at 3 and 7 shards, equal)");

    let json = Value::object([
        ("bench", Value::from("shard")),
        (
            "config",
            Value::object([
                ("rows", Value::from(rows)),
                ("attrs", Value::from(spec.attrs)),
                ("max_card", Value::from(spec.max_card)),
                ("tau_s", Value::from(rows / 20)),
                ("k_min", Value::from(10usize)),
                ("k_max", Value::from(49usize)),
                ("task", Value::from("under(global_lower=20)")),
                ("seed", Value::from(opts.seed as usize)),
                ("quick", Value::from(opts.quick)),
                ("cores", Value::from(cores)),
                ("generate_ms", Value::from(gen_s * 1000.0)),
                ("control_rows", Value::from(control_rows)),
            ]),
        ),
        ("rows", Value::array(json_rows)),
    ]);
    match std::fs::write("BENCH_shard.json", json.render() + "\n") {
        Ok(()) => println!("wrote BENCH_shard.json"),
        Err(e) => eprintln!("could not write BENCH_shard.json: {e}"),
    }

    if opts.quick {
        let speedup = speedup_at_floor.expect("4 shards is in every sweep");
        if cores < SHARD_FLOOR_MIN_CORES {
            println!(
                "speedup floor skipped: {cores} core(s) < {SHARD_FLOOR_MIN_CORES} (per-shard \
                 counting stays sequential; correctness still checked above)"
            );
        } else if speedup < SHARD_QUICK_FLOOR_AT_4 {
            eprintln!(
                "SHARD BENCH REGRESSION: speedup {speedup:.2}x at 4 shards below the floor \
                 {SHARD_QUICK_FLOOR_AT_4}x on a {cores}-core host"
            );
            std::process::exit(1);
        } else {
            println!("speedup floor met: {speedup:.2}x >= {SHARD_QUICK_FLOOR_AT_4}x at 4 shards");
        }
    }
}

/// Floors the `--quick` network bench enforces (exit 1 on regression).
/// Deliberately loose — shared CI runners are slow and 1-core containers
/// serialize everything — they catch order-of-magnitude regressions
/// (an accidental global barrier, a lost flush), not few-percent drift.
const NET_QUICK_MIN_QPS: f64 = 50.0;
const NET_QUICK_MAX_P99_MS: f64 = 2_000.0;

/// Network serving: mixed audit/update/snapshot traffic from concurrent
/// TCP connections against `serve-net`, spread over 64 distinct monitors
/// (each with its own dataset registry entry, so the per-resource lanes
/// can actually parallelize). Measures per-class round-trip latency
/// (p50/p99) and total qps; writes `BENCH_net.json`; with `--quick`
/// enforces the floors above.
fn serve_net_bench(opts: &Opts) {
    use rankfair::json::Value;
    use rankfair::service::net::{serve_net, NetListeners, NetOptions};
    use rankfair::service::AuditService;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    const MONITORS: usize = 64;
    const CLIENTS: usize = 8;
    let rounds = if opts.quick { 4 } else { 16 };
    let rows = if opts.quick { 200 } else { 600 };
    let cores = host_cores();
    println!("\n## serve-net: mixed audit/update/snapshot over {MONITORS} monitors ({CLIENTS} connections, {cores} core(s))");

    let ds = Arc::new(rankfair::synth::student(rankfair::synth::SynthConfig::new(
        rows, 5,
    )));
    let service = AuditService::new();
    // One registry entry per monitor: updates to different monitors hold
    // different dataset lanes and different monitor lanes — nothing
    // global between them but the worker pool itself.
    for m in 0..MONITORS {
        service.register_dataset(&format!("ds{m}"), Arc::clone(&ds));
    }
    let listeners = NetListeners::bind(&["tcp:127.0.0.1:0".to_string()]).expect("bind loopback");
    let addr = listeners
        .local_addrs()
        .remove(0)
        .strip_prefix("tcp:")
        .expect("tcp addr")
        .to_string();
    let handle = listeners.handle();
    let net_opts = NetOptions {
        workers: cores.clamp(2, 8),
        strip_timing: true,
        idle_timeout: Duration::from_secs(60),
        ..NetOptions::default()
    };

    let audit_line = |m: usize| {
        format!(
            concat!(
                r#"{{"dataset": "ds{}", "ranking": {{"rank_by": "G3"}}, "#,
                r#""task": {{"type": "under", "measure": {{"type": "global", "lower": 2}}}}, "#,
                r#""config": {{"tau": 10, "kmin": 5, "kmax": 40}}, "#,
                r#""attributes": ["school", "sex", "address"]}}"#
            ),
            m
        )
    };
    let register_line = |m: usize| {
        format!(
            concat!(
                r#"{{"op": "register_monitor", "name": "m{}", "dataset": "ds{}", "#,
                r#""rank_by": "G3", "task": {{"type": "under", "measure": {{"type": "global", "lower": 2}}}}, "#,
                r#""config": {{"tau": 10, "kmin": 5, "kmax": 40}}, "#,
                r#""attributes": ["school", "sex", "address"]}}"#
            ),
            m, m
        )
    };
    let update_line = |m: usize, round: usize| {
        // Deterministic score churn: every monitor sees a different edit
        // stream, every round moves a different row.
        let row = (round * 31 + m * 7) % rows;
        let score = ((round * 13 + m * 17) % 200) as f64 / 10.0;
        format!(
            r#"{{"op": "update", "monitor": "m{m}", "edits": [{{"edit": "score", "row": {row}, "score": {score}}}]}}"#
        )
    };
    let snapshot_line = |m: usize| format!(r#"{{"op": "snapshot", "monitor": "m{m}"}}"#);

    // (elapsed total, per-class latencies)
    let (elapsed_s, per_class) = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_net(&service, listeners, &net_opts));
        let t0 = std::time::Instant::now();
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                let (audit_line, register_line, update_line, snapshot_line) =
                    (&audit_line, &register_line, &update_line, &snapshot_line);
                scope.spawn(move || {
                    let conn = TcpStream::connect(&addr).expect("connect");
                    conn.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                    let mut conn = conn;
                    let mut line = String::new();
                    let mut roundtrip = |req: &str| -> f64 {
                        let t = std::time::Instant::now();
                        // One write per request: a trailing-newline write
                        // of its own would sit in Nagle's buffer waiting
                        // for the delayed ACK.
                        conn.write_all(format!("{req}\n").as_bytes()).expect("send");
                        line.clear();
                        reader.read_line(&mut line).expect("recv");
                        assert!(line.contains(r#""ok":true"#), "request failed: {line}");
                        t.elapsed().as_secs_f64() * 1000.0
                    };
                    // This connection owns an eighth of the monitors.
                    let mine: Vec<usize> = (0..MONITORS).filter(|m| m % CLIENTS == c).collect();
                    for &m in &mine {
                        roundtrip(&register_line(m));
                    }
                    let mut lat = [Vec::new(), Vec::new(), Vec::new()];
                    for round in 0..rounds {
                        for &m in &mine {
                            lat[0].push(roundtrip(&update_line(m, round)));
                            lat[1].push(roundtrip(&snapshot_line(m)));
                            lat[2].push(roundtrip(&audit_line(m)));
                        }
                    }
                    lat
                })
            })
            .collect();
        let mut per_class = [Vec::new(), Vec::new(), Vec::new()];
        for h in clients {
            let lat = h.join().expect("client thread");
            for (all, mine) in per_class.iter_mut().zip(lat) {
                all.extend(mine);
            }
        }
        let elapsed_s = t0.elapsed().as_secs_f64();
        handle.shutdown();
        let summary = server.join().expect("server thread");
        assert_eq!(summary.errors, 0, "bench traffic must not error");
        (elapsed_s, per_class)
    });

    let pct = |sorted: &[f64], p: f64| {
        let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len().saturating_sub(1));
        sorted.get(idx).copied().unwrap_or(0.0)
    };
    let mut t = Table::new(&["class", "count", "p50_ms", "p99_ms", "max_ms"]);
    let mut json_rows: Vec<Value> = Vec::new();
    let mut total = 0usize;
    let mut worst_p99 = 0.0f64;
    for (class, mut lat) in ["update", "snapshot", "audit"].into_iter().zip(per_class) {
        lat.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99) = (pct(&lat, 0.50), pct(&lat, 0.99));
        let max = lat.last().copied().unwrap_or(0.0);
        total += lat.len();
        worst_p99 = worst_p99.max(p99);
        t.row(&[
            class.to_string(),
            lat.len().to_string(),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
            format!("{max:.2}"),
        ]);
        json_rows.push(Value::object([
            ("class", Value::from(class)),
            ("count", Value::from(lat.len())),
            ("p50_ms", Value::from(p50)),
            ("p99_ms", Value::from(p99)),
            ("max_ms", Value::from(max)),
        ]));
    }
    let qps = total as f64 / elapsed_s;
    print!("{}", t.render());
    println!(
        "({total} round-trip requests plus {MONITORS} registrations in {:.1} ms — {qps:.0} qps)",
        elapsed_s * 1000.0
    );

    let json = Value::object([
        ("bench", Value::from("serve_net")),
        (
            "config",
            Value::object([
                ("rows", Value::from(rows)),
                ("monitors", Value::from(MONITORS)),
                ("clients", Value::from(CLIENTS)),
                ("workers", Value::from(net_opts.workers)),
                ("rounds", Value::from(rounds)),
                ("seed", Value::from(opts.seed as usize)),
                ("quick", Value::from(opts.quick)),
                ("cores", Value::from(cores)),
            ]),
        ),
        ("qps", Value::from(qps)),
        ("elapsed_ms", Value::from(elapsed_s * 1000.0)),
        ("rows", Value::array(json_rows)),
    ]);
    match std::fs::write("BENCH_net.json", json.render() + "\n") {
        Ok(()) => println!("wrote BENCH_net.json"),
        Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
    }

    if opts.quick {
        let mut failures = Vec::new();
        if qps < NET_QUICK_MIN_QPS {
            failures.push(format!("qps {qps:.1} below the floor {NET_QUICK_MIN_QPS}"));
        }
        if worst_p99 > NET_QUICK_MAX_P99_MS {
            failures.push(format!(
                "worst p99 {worst_p99:.1} ms above the ceiling {NET_QUICK_MAX_P99_MS} ms"
            ));
        }
        if failures.is_empty() {
            println!(
                "net floors met: {qps:.0} qps >= {NET_QUICK_MIN_QPS}, worst p99 {worst_p99:.1} ms <= {NET_QUICK_MAX_P99_MS} ms"
            );
        } else {
            for f in &failures {
                eprintln!("NET BENCH REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}

/// Theorem 3.3: the adversarial instance is exponential.
fn worstcase(opts: &Opts) {
    println!("\n## Theorem 3.3: worst-case instance (n attributes, n+1 tuples, k = n)");
    let mut t = Table::new(&[
        "n",
        "C(n,n/2)",
        "global_groups",
        "global_ms",
        "prop_groups",
        "prop_ms",
    ]);
    let cap = if opts.quick { 12 } else { 18 };
    for n in (4..=cap).step_by(2) {
        let (ds, order) = rankfair::synth::worst_case(n);
        let ranking = rankfair::rank::Ranking::from_order(order).unwrap();
        let audit = rankfair::core::Audit::builder(std::sync::Arc::new(ds))
            .ranking(ranking)
            .build()
            .unwrap();
        let cfg = DetectConfig::new(1, n, n).with_deadline(opts.timeout);
        let g_task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(n / 2 + 1)));
        let t0 = std::time::Instant::now();
        let g = audit.run(&cfg, &g_task, Engine::Optimized).unwrap();
        let g_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let alpha = (n as f64 + 3.0) / (n as f64 + 4.0);
        let p_task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha });
        let t0 = std::time::Instant::now();
        let p = audit.run(&cfg, &p_task, Engine::Optimized).unwrap();
        let p_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let cell = |out: &rankfair::core::AuditOutcome, ms: f64| match out.per_k.first() {
            Some(kr) if !out.stats.timed_out => (kr.under.len().to_string(), format!("{ms:.1}")),
            _ => ("-".to_string(), "TIMEOUT".to_string()),
        };
        let (g_groups, g_time) = cell(&g, g_ms);
        let (p_groups, p_time) = cell(&p, p_ms);
        t.row(&[
            n.to_string(),
            rankfair::synth::worst_case_result_count(n).to_string(),
            g_groups,
            g_time,
            p_groups,
            p_time,
        ]);
        if g.stats.timed_out && p.stats.timed_out {
            break;
        }
    }
    print!("{}", t.render());
    println!("(result counts grow as C(n, n/2) — exponential, matching the theorem)");
}

fn main() {
    let (cmd, opts) = parse_args();
    println!(
        "# rankfair experiments — reproducing ICDE 2023 §VI (seed {}, timeout {:?}{})",
        opts.seed,
        opts.timeout,
        if opts.quick { ", quick mode" } else { "" }
    );
    match cmd.as_str() {
        "fig4" => fig45(true, &opts),
        "fig5" => fig45(false, &opts),
        "fig6" => fig67(true, &opts),
        "fig7" => fig67(false, &opts),
        "fig8" => fig89(true, &opts),
        "fig9" => fig89(false, &opts),
        "fig10" => fig10(&opts),
        "gain" => gain(&opts),
        "casestudy" => casestudy(&opts),
        "resultsize" => resultsize(&opts),
        "worstcase" => worstcase(&opts),
        "faststeps" => faststeps(&opts),
        "scaling" => scaling(&opts),
        "overrep" => overrep(&opts),
        "serve" => serve_bench(&opts),
        "monitor" => monitor_bench(&opts),
        "shard" => shard_bench(&opts),
        "serve-net" => serve_net_bench(&opts),
        "all" => {
            fig45(true, &opts);
            fig45(false, &opts);
            fig67(true, &opts);
            fig67(false, &opts);
            fig89(true, &opts);
            fig89(false, &opts);
            gain(&opts);
            fig10(&opts);
            casestudy(&opts);
            resultsize(&opts);
            worstcase(&opts);
            faststeps(&opts);
            scaling(&opts);
            overrep(&opts);
            serve_bench(&opts);
            monitor_bench(&opts);
            shard_bench(&opts);
            serve_net_bench(&opts);
        }
        other => {
            eprintln!("unknown experiment `{other}`; expected one of: fig4 fig5 fig6 fig7 fig8 fig9 fig10 gain casestudy resultsize worstcase faststeps scaling overrep serve monitor shard serve-net all");
            std::process::exit(2);
        }
    }
}
