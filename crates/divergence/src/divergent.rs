//! Divergence computation over the frequent subgroups.

use rankfair_data::Dataset;
use rankfair_rank::Ranking;

use crate::apriori::{frequent_itemsets, Item, Itemset};

/// Configuration for [`divergent_subgroups`].
#[derive(Debug, Clone)]
pub struct DivergenceConfig {
    /// Minimum support as a fraction of the dataset (§VI-D uses 0.13,
    /// matching the detection algorithms’ τs = 50 on 395 tuples).
    pub min_support: f64,
    /// Cap on subgroup description length (0 = unbounded).
    pub max_len: usize,
    /// Dataset columns defining subgroups; `None` = all categorical.
    pub columns: Option<Vec<usize>>,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        DivergenceConfig {
            min_support: 0.13,
            max_len: 0,
            columns: None,
        }
    }
}

/// A subgroup with its divergence.
#[derive(Debug, Clone)]
pub struct Subgroup {
    /// The conjunction of attribute=value items describing the group.
    pub items: Itemset,
    /// Number of tuples in the group.
    pub support: usize,
    /// Average outcome `o(G)`.
    pub outcome: f64,
    /// `o(G) − o(D)`.
    pub divergence: f64,
    /// Welch t-statistic of `o(G)` against the rest of the dataset —
    /// the significance measure DivExplorer reports alongside divergence.
    /// Zero when either side is empty or has no variance.
    pub t_statistic: f64,
}

/// Welch’s t for two Bernoulli samples given their (mean, size).
fn welch_t(mean_g: f64, n_g: usize, mean_rest: f64, n_rest: usize) -> f64 {
    if n_g == 0 || n_rest == 0 {
        return 0.0;
    }
    let var_g = mean_g * (1.0 - mean_g);
    let var_rest = mean_rest * (1.0 - mean_rest);
    let se = (var_g / n_g as f64 + var_rest / n_rest as f64).sqrt();
    if se == 0.0 {
        0.0
    } else {
        (mean_g - mean_rest) / se
    }
}

/// Renders an itemset as `{col=label, …}` against the dataset dictionary.
pub fn display_items(ds: &Dataset, items: &[Item]) -> String {
    let mut out = String::from("{");
    for (i, &(c, v)) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let col = ds.column(c);
        out.push_str(col.name());
        out.push('=');
        out.push_str(col.label_of(v).unwrap_or("?"));
    }
    out.push('}');
    out
}

/// Computes all subgroups with support ≥ `cfg.min_support · |D|` and their
/// divergences under the top-`k` outcome function (`o(t) = 1` iff `t` is
/// ranked in the top-`k`), sorted by divergence ascending — the most
/// *under-performing* subgroups first, mirroring how the case study reads
/// the output for under-representation (most negative divergence = group
/// most absent from the top-k).
pub fn divergent_subgroups(
    ds: &Dataset,
    ranking: &Ranking,
    k: usize,
    cfg: &DivergenceConfig,
) -> Vec<Subgroup> {
    let n = ds.n_rows();
    assert!(n > 0, "empty dataset");
    let cols = cfg
        .columns
        .clone()
        .unwrap_or_else(|| ds.categorical_columns());
    let min_count = (cfg.min_support * n as f64).ceil().max(1.0) as usize;
    // Outcome vector: 1 for top-k tuples.
    let mut outcome = vec![0.0f64; n];
    for &r in ranking.top_k(k) {
        outcome[r as usize] = 1.0;
    }
    let o_d: f64 = outcome.iter().sum::<f64>() / n as f64;

    let total_outcome: f64 = outcome.iter().sum();
    let mut out: Vec<Subgroup> = frequent_itemsets(ds, &cols, min_count, cfg.max_len)
        .into_iter()
        .map(|(items, support)| {
            let sum: f64 = (0..n)
                .filter(|&r| items.iter().all(|&(c, v)| ds.code(r, c) == v))
                .map(|r| outcome[r])
                .sum();
            let o_g = sum / support as f64;
            let n_rest = n - support;
            let o_rest = if n_rest == 0 {
                0.0
            } else {
                (total_outcome - sum) / n_rest as f64
            };
            Subgroup {
                items,
                support,
                outcome: o_g,
                divergence: o_g - o_d,
                t_statistic: welch_t(o_g, support, o_rest, n_rest),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        a.divergence
            .partial_cmp(&b.divergence)
            .expect("divergences are finite")
            .then(a.items.cmp(&b.items))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    fn setup() -> (Dataset, Ranking) {
        let ds = students_fig1();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        (ds, ranking)
    }

    #[test]
    fn dataset_outcome_is_k_over_n() {
        let (ds, ranking) = setup();
        let cfg = DivergenceConfig {
            min_support: 0.2,
            max_len: 1,
            columns: None,
        };
        let subs = divergent_subgroups(&ds, &ranking, 4, &cfg);
        // o(D) = 4/16; a subgroup holding all four top tuples would have
        // divergence 0.75.
        for s in &subs {
            assert!(s.divergence >= -0.25 - 1e-12 && s.divergence <= 0.75 + 1e-12);
            assert!((s.outcome - (s.divergence + 0.25)).abs() < 1e-12);
        }
    }

    #[test]
    fn school_gp_diverges_negatively_at_k5() {
        // Example 2.3: only one of eight GP students is in the top-5, so
        // o(GP) = 1/8 < o(D) = 5/16.
        let (ds, ranking) = setup();
        let cfg = DivergenceConfig {
            min_support: 0.2,
            max_len: 1,
            columns: None,
        };
        let subs = divergent_subgroups(&ds, &ranking, 5, &cfg);
        let school = ds.column_index("School").unwrap();
        let gp = ds.column(school).code_of("GP").unwrap();
        let s = subs
            .iter()
            .find(|s| s.items.as_slice() == [(school, gp)])
            .expect("GP is frequent");
        assert!((s.outcome - 0.125).abs() < 1e-12);
        assert!((s.divergence - (0.125 - 0.3125)).abs() < 1e-12);
        // Sorted ascending: the most under-represented groups first.
        assert!(subs.windows(2).all(|w| w[0].divergence <= w[1].divergence));
    }

    #[test]
    fn output_contains_subsumed_subgroups_unlike_detection() {
        // The §VI-D behavioural difference: the divergence method reports
        // descendants together with their ancestors.
        let (ds, ranking) = setup();
        let cfg = DivergenceConfig {
            min_support: 0.2,
            max_len: 0,
            columns: None,
        };
        let subs = divergent_subgroups(&ds, &ranking, 5, &cfg);
        let has_subsumed_pair = subs.iter().any(|a| {
            subs.iter().any(|b| {
                a.items.len() < b.items.len() && a.items.iter().all(|i| b.items.contains(i))
            })
        });
        assert!(has_subsumed_pair);
        assert!(
            subs.len() > 9,
            "expected many subgroups, got {}",
            subs.len()
        );
    }

    #[test]
    fn display_renders_labels() {
        let (ds, _) = setup();
        let school = ds.column_index("School").unwrap();
        let gender = ds.column_index("Gender").unwrap();
        let text = display_items(&ds, &[(gender, 0), (school, 1)]);
        assert_eq!(text, "{Gender=F, School=GP}");
    }

    #[test]
    fn restricting_columns_limits_descriptions() {
        let (ds, ranking) = setup();
        let gender = ds.column_index("Gender").unwrap();
        let cfg = DivergenceConfig {
            min_support: 0.1,
            max_len: 0,
            columns: Some(vec![gender]),
        };
        let subs = divergent_subgroups(&ds, &ranking, 5, &cfg);
        assert!(subs
            .iter()
            .all(|s| s.items.iter().all(|&(c, _)| c == gender)));
        assert_eq!(subs.len(), 2); // F and M
    }
}

#[cfg(test)]
mod t_stat_tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    #[test]
    fn t_statistic_sign_follows_divergence() {
        let ds = students_fig1();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let cfg = DivergenceConfig {
            min_support: 0.2,
            max_len: 2,
            columns: None,
        };
        for s in divergent_subgroups(&ds, &ranking, 5, &cfg) {
            if s.divergence > 1e-12 {
                assert!(s.t_statistic > 0.0, "{:?}", s.items);
            }
            if s.divergence < -1e-12 {
                assert!(s.t_statistic < 0.0, "{:?}", s.items);
            }
        }
    }

    #[test]
    fn welch_t_known_value() {
        // o(G) = 0.5 over 8 vs o(rest) = 0.25 over 8:
        // se = sqrt(0.25/8 + 0.1875/8); t = 0.25 / se.
        let t = welch_t(0.5, 8, 0.25, 8);
        let se = (0.25f64 / 8.0 + 0.1875 / 8.0).sqrt();
        assert!((t - 0.25 / se).abs() < 1e-12);
        assert_eq!(welch_t(0.5, 0, 0.25, 8), 0.0);
        assert_eq!(welch_t(1.0, 8, 1.0, 8), 0.0); // zero variance
    }

    #[test]
    fn larger_groups_get_stronger_statistics() {
        // Same divergence, more data → larger |t|.
        let small = welch_t(0.4, 10, 0.6, 10).abs();
        let large = welch_t(0.4, 100, 0.6, 100).abs();
        assert!(large > small);
    }
}
