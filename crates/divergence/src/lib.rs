//! Divergence-based biased-subgroup detection — a from-scratch
//! reimplementation of the comparison method of Pastor, de Alfaro &
//! Baralis (“Identifying biased subgroups in ranking and classification”),
//! which the paper evaluates against in §VI-D.
//!
//! The method differs from the paper’s by design:
//!
//! * subgroups are **all frequent patterns** (support ≥ s) — not just the
//!   most general ones — mined here with a classic level-wise Apriori
//!   ([`frequent_itemsets`]);
//! * each tuple gets an outcome `o(t)`; for ranking, `o(t) = 1` iff `t` is
//!   among the top-k (the instantiation §VI-D uses);
//! * a subgroup’s **divergence** is `o(G) − o(D)`: how much its average
//!   outcome deviates from the dataset average; results are reported
//!   sorted by divergence.
//!
//! Consequently its output is typically much larger than the detection
//! algorithms’ and contains subgroups subsumed by one another — exactly
//! the behavioural difference the paper’s case study demonstrates, and
//! which the integration tests of this workspace reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apriori;
mod divergent;

pub use apriori::{frequent_itemsets, Item, Itemset};
pub use divergent::{display_items, divergent_subgroups, DivergenceConfig, Subgroup};
