//! Level-wise Apriori frequent-pattern mining over attribute=value items
//! (Agrawal & Srikant), the substrate the divergence baseline runs on.

use rankfair_data::{Dataset, ValueCode};
use std::collections::HashSet;

/// One item: `(dataset column index, dictionary code)`.
pub type Item = (usize, ValueCode);

/// An itemset: items sorted by column index, at most one per column.
pub type Itemset = Vec<Item>;

fn row_matches(ds: &Dataset, row: usize, items: &[Item]) -> bool {
    items.iter().all(|&(c, v)| ds.code(row, c) == v)
}

fn support(ds: &Dataset, items: &[Item]) -> usize {
    (0..ds.n_rows())
        .filter(|&r| row_matches(ds, r, items))
        .count()
}

/// Joins two k-itemsets sharing their first k−1 items into a (k+1)-
/// candidate; `None` if the last items collide on the same column.
fn join(a: &Itemset, b: &Itemset) -> Option<Itemset> {
    let k = a.len();
    if a[..k - 1] != b[..k - 1] {
        return None;
    }
    let (la, lb) = (a[k - 1], b[k - 1]);
    if la.0 >= lb.0 {
        return None; // same column (unsatisfiable) or unordered pair
    }
    let mut c = a.clone();
    c.push(lb);
    Some(c)
}

/// All itemsets with support ≥ `min_support_count` over the given
/// categorical columns, paired with their supports. `max_len = 0` means
/// unbounded length.
///
/// # Panics
/// Panics if any column in `cols` is not categorical.
pub fn frequent_itemsets(
    ds: &Dataset,
    cols: &[usize],
    min_support_count: usize,
    max_len: usize,
) -> Vec<(Itemset, usize)> {
    for &c in cols {
        assert!(
            ds.column(c).is_categorical(),
            "column `{}` is not categorical",
            ds.column(c).name()
        );
    }
    let mut out: Vec<(Itemset, usize)> = Vec::new();
    // L1.
    let mut level: Vec<(Itemset, usize)> = Vec::new();
    for &c in cols {
        let card = ds.column(c).cardinality().expect("categorical checked");
        for v in 0..card as ValueCode {
            let s = support(ds, &[(c, v)]);
            if s >= min_support_count {
                level.push((vec![(c, v)], s));
            }
        }
    }
    let mut k = 1usize;
    while !level.is_empty() {
        out.extend(level.iter().cloned());
        if max_len != 0 && k >= max_len {
            break;
        }
        // Candidate generation: prefix join + subset pruning.
        let frequent: HashSet<&Itemset> = level.iter().map(|(i, _)| i).collect();
        let mut next: Vec<(Itemset, usize)> = Vec::new();
        for i in 0..level.len() {
            for j in 0..level.len() {
                let Some(cand) = join(&level[i].0, &level[j].0) else {
                    continue;
                };
                // Apriori pruning: every k-subset must be frequent.
                let prunable = (0..cand.len()).any(|drop| {
                    let mut sub = cand.clone();
                    sub.remove(drop);
                    !frequent.contains(&sub)
                });
                if prunable {
                    continue;
                }
                let s = support(ds, &cand);
                if s >= min_support_count {
                    next.push((cand, s));
                }
            }
        }
        level = next;
        k += 1;
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::students_fig1;

    fn fig1_cols() -> (Dataset, Vec<usize>) {
        let ds = students_fig1();
        let cols = ds.categorical_columns();
        (ds, cols)
    }

    #[test]
    fn level1_supports_match_hand_counts() {
        let (ds, cols) = fig1_cols();
        let sets = frequent_itemsets(&ds, &cols, 1, 1);
        // Gender F/M: 8/8; School MS/GP: 8/8; Address R/U: 8/8;
        // Failures 1/2/0: 8/4/4 → 9 singletons.
        assert_eq!(sets.len(), 9);
        let school = ds.column_index("School").unwrap();
        let gp = ds.column(school).code_of("GP").unwrap();
        let (_, s) = sets
            .iter()
            .find(|(i, _)| i.as_slice() == [(school, gp)])
            .unwrap();
        assert_eq!(*s, 8);
    }

    #[test]
    fn min_support_filters() {
        let (ds, cols) = fig1_cols();
        let sets = frequent_itemsets(&ds, &cols, 5, 1);
        // Only the size-8 singletons survive (failures 2/0 have 4 each).
        assert_eq!(sets.len(), 7);
    }

    #[test]
    fn supports_are_anti_monotone_and_exact() {
        let (ds, cols) = fig1_cols();
        let sets = frequent_itemsets(&ds, &cols, 2, 0);
        for (items, s) in &sets {
            assert_eq!(*s, support(&ds, items), "support must be exact");
            assert!(*s >= 2);
            // Every subset must be at least as frequent.
            for drop in 0..items.len() {
                let mut sub = items.clone();
                sub.remove(drop);
                if !sub.is_empty() {
                    assert!(support(&ds, &sub) >= *s);
                }
            }
        }
    }

    #[test]
    fn finds_multiterm_sets_exhaustively() {
        // Brute-force cross-check on the level-2 itemsets.
        let (ds, cols) = fig1_cols();
        let sets = frequent_itemsets(&ds, &cols, 3, 2);
        let level2: Vec<_> = sets.iter().filter(|(i, _)| i.len() == 2).collect();
        let mut expect = 0usize;
        for (ai, &a) in cols.iter().enumerate() {
            for &b in &cols[ai + 1..] {
                for va in 0..ds.column(a).cardinality().unwrap() as u16 {
                    for vb in 0..ds.column(b).cardinality().unwrap() as u16 {
                        if support(&ds, &[(a, va), (b, vb)]) >= 3 {
                            expect += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(level2.len(), expect);
    }

    #[test]
    fn max_len_caps_depth() {
        let (ds, cols) = fig1_cols();
        let sets = frequent_itemsets(&ds, &cols, 1, 2);
        assert!(sets.iter().all(|(i, _)| i.len() <= 2));
        let unbounded = frequent_itemsets(&ds, &cols, 1, 0);
        assert!(unbounded.iter().any(|(i, _)| i.len() > 2));
    }

    #[test]
    #[should_panic(expected = "not categorical")]
    fn numeric_column_rejected() {
        let ds = students_fig1();
        let grade = ds.column_index("Grade").unwrap();
        frequent_itemsets(&ds, &[grade], 1, 1);
    }
}
