use std::time::{Duration, Instant};

use crate::pattern::Pattern;

/// Shared configuration of a detection run.
#[derive(Debug, Clone)]
pub struct DetectConfig {
    /// Size threshold `τs`: only groups with `s_D(p) ≥ τs` are reported.
    pub tau_s: usize,
    /// Smallest `k` of the range (inclusive).
    pub k_min: usize,
    /// Largest `k` of the range (inclusive).
    pub k_max: usize,
    /// Optional wall-clock budget; the search aborts (marking the output
    /// [`SearchStats::timed_out`]) when exceeded. Mirrors the 10-minute
    /// timeout of the paper’s experiments.
    pub deadline: Option<Duration>,
}

impl DetectConfig {
    /// Creates a config with no deadline.
    ///
    /// # Panics
    /// Panics if `k_min == 0` or `k_min > k_max`.
    pub fn new(tau_s: usize, k_min: usize, k_max: usize) -> Self {
        assert!(k_min >= 1, "k_min must be at least 1");
        assert!(k_min <= k_max, "k_min must not exceed k_max");
        DetectConfig {
            tau_s,
            k_min,
            k_max,
            deadline: None,
        }
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Number of `k` values in the range.
    pub fn range_len(&self) -> usize {
        self.k_max - self.k_min + 1
    }
}

/// Instrumentation counters for one detection run.
///
/// `patterns_examined` is the metric the paper uses to quantify the gain of
/// the optimized algorithms over the baseline (§VI-B: “we compared the
/// number of patterns examined during the search”).
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Fresh pattern evaluations (one bitmap-intersection scan each).
    pub nodes_evaluated: u64,
    /// O(1) count updates performed by the incremental walk.
    pub nodes_touched: u64,
    /// `k̃`-schedule entries popped and validated (proportional only).
    pub schedule_pops: u64,
    /// Full top-down rebuilds (1 for the initial search; +1 per bound step
    /// for the global measure).
    pub full_searches: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether the deadline aborted the run (results are then truncated to
    /// the `k` values completed in time).
    pub timed_out: bool,
}

impl SearchStats {
    /// Total patterns examined: the unit of work the paper reports.
    pub fn patterns_examined(&self) -> u64 {
        self.nodes_evaluated + self.nodes_touched + self.schedule_pops
    }

    /// Folds the counters of another (concurrent or sequential) sub-search
    /// into this one. Counters add; `elapsed` takes the max (parallel
    /// workers overlap in wall-clock time — sequential phases that want a
    /// sum overwrite it afterwards); `timed_out` is sticky.
    pub fn merge(&mut self, part: &SearchStats) {
        self.nodes_evaluated += part.nodes_evaluated;
        self.nodes_touched += part.nodes_touched;
        self.schedule_pops += part.schedule_pops;
        self.full_searches += part.full_searches;
        self.elapsed = self.elapsed.max(part.elapsed);
        self.timed_out |= part.timed_out;
    }
}

/// Work counters of the checkpointed replay drivers (`lower_replay` /
/// `upper_replay`): how often a delta re-audit could seek to a stored
/// engine snapshot versus paying a from-scratch build, and how many `k`
/// positions the replay actually computed — the quantity segmented
/// replay minimizes.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReplayCounters {
    /// Segment starts that resumed from a stored checkpoint.
    pub seeks: u64,
    /// Delta runs (and initial builds) that had no usable checkpoint and
    /// paid a from-scratch engine build.
    pub cold_builds: u64,
    /// Seek checkpoints repaired in place from a top-`k` set diff
    /// because the edit hull had swallowed them.
    pub repairs: u64,
    /// Every `k` position the replay drivers computed — cold builds,
    /// catch-up steps from a seek point to a segment start, and in-segment
    /// advances. Hull-vs-segmented comparisons of this counter measure
    /// exactly the `k` work segmentation saves.
    pub replayed_steps: u64,
    /// Node activations served by the stored `s_D` plus a truncated
    /// prefix-only recount instead of a full fused `counts(p, k)` scan.
    pub prefix_recounts: u64,
    /// Replay segments driven (per engine direction). Hull replay is one
    /// segment per delta; segmented replay drives one per merged run of
    /// changed `k` values.
    pub segments: u64,
}

/// The most general biased patterns at one value of `k`, in canonical
/// order (sorted by terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KResult {
    /// The `k` this result refers to.
    pub k: usize,
    /// Most general patterns with biased representation in the top-`k`.
    pub patterns: Vec<Pattern>,
}

/// Full output of a detection run: one [`KResult`] per `k` in
/// `[k_min, k_max]` (possibly truncated on timeout), plus instrumentation.
#[derive(Debug, Clone)]
pub struct DetectionOutput {
    /// Per-`k` result sets, ordered by `k`.
    pub per_k: Vec<KResult>,
    /// Instrumentation counters.
    pub stats: SearchStats,
}

impl DetectionOutput {
    /// The result set for a specific `k`, if computed.
    pub fn at_k(&self, k: usize) -> Option<&KResult> {
        self.per_k.iter().find(|r| r.k == k)
    }

    /// Total number of reported (k, pattern) pairs.
    pub fn total_patterns(&self) -> usize {
        self.per_k.iter().map(|r| r.patterns.len()).sum()
    }
}

/// Cooperative deadline checker: polls the clock every `CHECK_EVERY` ticks
/// so the hot loops pay one branch, not one syscall, per node.
#[derive(Debug)]
pub(crate) struct DeadlineGuard {
    start: Instant,
    deadline: Option<Duration>,
    ticks: u32,
    expired: bool,
}

impl DeadlineGuard {
    const CHECK_EVERY: u32 = 1024;

    pub(crate) fn new(deadline: Option<Duration>) -> Self {
        DeadlineGuard {
            start: Instant::now(),
            deadline,
            ticks: 0,
            expired: false,
        }
    }

    /// Returns `true` once the deadline has passed. Latches.
    ///
    /// The clock is polled on the **first** call and then every
    /// `CHECK_EVERY` ticks: searches that finish in under a batch of ticks
    /// would otherwise never observe an already-expired (e.g. zero)
    /// deadline, making truncation behavior depend on problem size.
    #[inline]
    pub(crate) fn expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        let Some(d) = self.deadline else { return false };
        if self.ticks == 0 || self.ticks >= Self::CHECK_EVERY {
            self.ticks = 0;
            if self.start.elapsed() > d {
                self.expired = true;
            }
        }
        self.ticks += 1;
        self.expired
    }

    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let c = DetectConfig::new(5, 10, 49);
        assert_eq!(c.range_len(), 40);
    }

    #[test]
    #[should_panic(expected = "k_min must be at least 1")]
    fn zero_kmin_rejected() {
        DetectConfig::new(5, 0, 3);
    }

    #[test]
    #[should_panic(expected = "k_min must not exceed k_max")]
    fn inverted_range_rejected() {
        DetectConfig::new(5, 5, 3);
    }

    #[test]
    fn stats_sum_examined() {
        let s = SearchStats {
            nodes_evaluated: 10,
            nodes_touched: 5,
            schedule_pops: 2,
            ..SearchStats::default()
        };
        assert_eq!(s.patterns_examined(), 17);
    }

    #[test]
    fn deadline_guard_without_deadline_never_expires() {
        let mut g = DeadlineGuard::new(None);
        for _ in 0..10_000 {
            assert!(!g.expired());
        }
    }

    #[test]
    fn deadline_guard_expires() {
        let mut g = DeadlineGuard::new(Some(Duration::from_nanos(1)));
        std::thread::sleep(Duration::from_millis(2));
        let mut expired = false;
        for _ in 0..5000 {
            if g.expired() {
                expired = true;
                break;
            }
        }
        assert!(expired);
        assert!(g.expired()); // latched
    }

    #[test]
    fn detection_output_lookup() {
        let out = DetectionOutput {
            per_k: vec![
                KResult {
                    k: 4,
                    patterns: vec![Pattern::single(0, 1)],
                },
                KResult {
                    k: 5,
                    patterns: vec![],
                },
            ],
            stats: SearchStats::default(),
        };
        assert_eq!(out.at_k(4).unwrap().patterns.len(), 1);
        assert!(out.at_k(6).is_none());
        assert_eq!(out.total_patterns(), 1);
    }
}
