//! The owned, thread-safe audit API: one builder, one task enum, one
//! entry point for every detection mode in the paper.
//!
//! [`Audit`] owns its dataset (behind an [`Arc`]), the pattern space, the
//! ranking and the ranked counting index ([`AuditIndex`]: a single
//! [`RankedIndex`] or a [`ShardedIndex`] merging per-shard counts
//! additively), so it is `Send + Sync` and can be shared across threads,
//! held in a server, or cached between requests. The detection mode is a
//! value, not a method name:
//!
//! * [`AuditTask::UnderRep`] — the paper's Problems 3.1/3.2 (most general
//!   under-represented groups, Algorithms 1–3);
//! * [`AuditTask::OverRep`] — the §III upper-bound extension (groups whose
//!   top-`k` count exceeds `U_k`, most specific or most general);
//! * [`AuditTask::Combined`] — both directions at once, the paper's
//!   "plausible problem definition" accounting for both bounds.
//!
//! Each task runs on either the optimized incremental engines or the
//! brute-force baseline ([`Engine`]), which keeps every mode
//! differentially testable. [`Audit::run`] splits the `k` range across
//! scoped threads ([`AuditBuilder::threads`]) sharing the immutable index;
//! results are byte-identical to the single-threaded run.
//!
//! ```
//! use std::sync::Arc;
//! use rankfair_core::{Audit, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine};
//! use rankfair_data::examples::{students_fig1, fig1_rank_order};
//! use rankfair_rank::Ranking;
//!
//! let audit = Audit::builder(Arc::new(students_fig1()))
//!     .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
//!     .build()
//!     .unwrap();
//! let out = audit
//!     .run(
//!         &DetectConfig::new(4, 4, 5),
//!         &AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
//!         Engine::Optimized,
//!     )
//!     .unwrap();
//! let k4: Vec<String> = out.per_k[0].under.iter().map(|p| audit.describe(p)).collect();
//! assert!(k4.contains(&"{Address=U}".to_string())); // Example 4.6
//! ```

use std::fmt;
use std::sync::Arc;

use rankfair_data::{Dataset, TupleId, ValueCode};
use rankfair_rank::{Ranker, Ranking};

use crate::bounds::{BiasMeasure, Bounds};
use crate::engine;
use crate::oracle;
use crate::pattern::Pattern;
use crate::report::{summarize_audit, KReport};
use crate::shard::ShardedIndex;
use crate::space::{AttrId, CountsProvider, PatternSpace, RankedIndex, SpaceError};
use crate::stats::{
    DeadlineGuard, DetectConfig, DetectionOutput, KResult, ReplayCounters, SearchStats,
};
use crate::topdown;
use crate::upper_engine::{self, UpperStream};

/// Typed error for audit construction and execution, replacing the
/// `SpaceError`-or-`String` mix of the old facade.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The pattern space could not be built.
    Space(SpaceError),
    /// Neither [`AuditBuilder::ranking`] nor [`AuditBuilder::ranker`] was
    /// called.
    MissingRanking,
    /// The ranking length does not match the dataset.
    RankingMismatch {
        /// Tuples in the ranking.
        ranking: usize,
        /// Rows in the dataset.
        rows: usize,
    },
    /// `k_max` exceeds the number of ranked tuples.
    InvalidKRange {
        /// Largest requested `k`.
        k_max: usize,
        /// Ranked tuples available.
        n: usize,
    },
    /// The proportional factor `α` must be positive and finite (a NaN
    /// silently classifies nothing as biased).
    InvalidAlpha(f64),
    /// A [`Bounds::LinearFraction`] must be finite and non-negative (a NaN
    /// or negative fraction silently empties or floods the result set).
    InvalidBound(f64),
    /// A dataset-preparation hook (bucketization) failed.
    Prepare(String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Space(e) => write!(f, "pattern space: {e}"),
            AuditError::MissingRanking => {
                write!(f, "no ranking: call AuditBuilder::ranking or ::ranker")
            }
            AuditError::RankingMismatch { ranking, rows } => write!(
                f,
                "ranking covers {ranking} tuples but the dataset has {rows} rows"
            ),
            AuditError::InvalidKRange { k_max, n } => {
                write!(
                    f,
                    "k_max ({k_max}) exceeds the number of ranked tuples ({n})"
                )
            }
            AuditError::InvalidAlpha(a) => {
                write!(f, "alpha must be positive and finite, got {a}")
            }
            AuditError::InvalidBound(v) => write!(
                f,
                "LinearFraction bounds must be finite and non-negative, got {v}"
            ),
            AuditError::Prepare(e) => write!(f, "preparing dataset: {e}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<SpaceError> for AuditError {
    fn from(e: SpaceError) -> Self {
        AuditError::Space(e)
    }
}

/// Which implementation executes a task: the paper's optimized algorithms
/// or the from-scratch baselines used for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// `GlobalBounds` / `PropBounds` for under-representation, the
    /// incremental upper engine (persistent node store, per-`k` subtree
    /// walks, incremental maximal frontier) for over-representation.
    Optimized,
    /// `IterTD` for under-representation; brute-force enumeration with
    /// naive row-scan counting for over-representation. Kept as the
    /// differential anchor for the incremental engines.
    Baseline,
}

/// Which boundary of the (subset-closed) over-represented set is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverRepScope {
    /// Most specific substantial patterns exceeding the bound — the
    /// narrowest actionable descriptions (the paper's primary variant).
    MostSpecific,
    /// Most general patterns exceeding the bound — the broadest groups.
    MostGeneral,
}

/// One detection mode of the paper, unified as a value.
#[derive(Debug, Clone)]
pub enum AuditTask {
    /// Most general substantial groups below the measure's lower bound
    /// (Problems 3.1 and 3.2, Algorithms 1–3).
    UnderRep(BiasMeasure),
    /// Groups whose top-`k` count exceeds `U_k` (§III upper bounds).
    OverRep {
        /// The upper bound `U_k`.
        upper: Bounds,
        /// Report the most specific or the most general qualifying
        /// patterns.
        scope: OverRepScope,
    },
    /// Both directions at once: most general groups below `lower` and most
    /// specific substantial groups above `upper`.
    Combined {
        /// The lower bound `L_k`.
        lower: Bounds,
        /// The upper bound `U_k`.
        upper: Bounds,
    },
}

/// Result set of one `k` under an [`AuditTask`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditKResult {
    /// The `k` this refers to.
    pub k: usize,
    /// Most general under-represented patterns (empty for
    /// [`AuditTask::OverRep`]).
    pub under: Vec<Pattern>,
    /// Over-represented patterns (empty for [`AuditTask::UnderRep`]).
    pub over: Vec<Pattern>,
}

/// Full output of [`Audit::run`]: one [`AuditKResult`] per `k`, plus
/// instrumentation summed over every sub-search (and every worker thread).
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Per-`k` result sets, ordered by `k`.
    pub per_k: Vec<AuditKResult>,
    /// Instrumentation counters.
    pub stats: SearchStats,
}

impl AuditOutcome {
    /// The result set for a specific `k`, if computed.
    pub fn at_k(&self, k: usize) -> Option<&AuditKResult> {
        self.per_k.iter().find(|r| r.k == k)
    }

    /// Total number of reported `(k, pattern)` pairs, both directions.
    pub fn total_groups(&self) -> usize {
        self.per_k
            .iter()
            .map(|r| r.under.len() + r.over.len())
            .sum()
    }

    /// The under-representation side as a classic [`DetectionOutput`]
    /// (what the deprecated `Detector` methods returned).
    pub fn detection_output(&self) -> DetectionOutput {
        DetectionOutput {
            per_k: self
                .per_k
                .iter()
                .map(|r| KResult {
                    k: r.k,
                    patterns: r.under.clone(),
                })
                .collect(),
            stats: self.stats.clone(),
        }
    }
}

/// The counting index an [`Audit`] executes against: one [`RankedIndex`]
/// over the whole ranking, or a [`ShardedIndex`] whose per-shard counts
/// merge additively ([`AuditBuilder::shards`]). Both satisfy the
/// [`CountsProvider`] contract the engines consume, so every task,
/// engine and streaming mode runs unchanged on either variant and the
/// results are identical — the differential suite sweeps that equality.
#[derive(Debug, Clone)]
pub enum AuditIndex {
    /// A single index over the whole ranking (the default).
    Single(RankedIndex),
    /// Rows partitioned into contiguous rank blocks with one shard-local
    /// index per block.
    Sharded(ShardedIndex),
}

impl AuditIndex {
    /// Number of ranked tuples.
    pub fn n(&self) -> usize {
        match self {
            AuditIndex::Single(i) => i.n(),
            AuditIndex::Sharded(i) => i.n(),
        }
    }

    /// `(s_D(p), s_Rk(p))` in one pass.
    pub fn counts(&self, p: &Pattern, k: usize) -> (usize, usize) {
        match self {
            AuditIndex::Single(i) => i.counts(p, k),
            AuditIndex::Sharded(i) => i.counts(p, k),
        }
    }

    /// `s_Rk(p)` alone via a truncated prefix scan — the arena engines'
    /// re-activation fast path (the stored `s_D` makes the full fused
    /// scan redundant).
    pub fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        match self {
            AuditIndex::Single(i) => i.prefix_count(p, k),
            AuditIndex::Sharded(i) => i.prefix_count(p, k),
        }
    }

    /// `s_D(p)` alone.
    pub fn size_in_data(&self, p: &Pattern) -> usize {
        self.counts(p, 0).0
    }

    /// Value of `attr` for the tuple at rank position `pos`.
    pub fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode {
        match self {
            AuditIndex::Single(i) => i.code_at(pos, attr),
            AuditIndex::Sharded(i) => i.code_at(pos, attr),
        }
    }

    /// Whether the tuple at rank position `pos` satisfies `p`.
    pub fn matches_at(&self, pos: usize, p: &Pattern) -> bool {
        p.matches(|a| self.code_at(pos, a))
    }

    /// Number of shards (`1` for the single-index variant).
    pub fn shard_count(&self) -> usize {
        match self {
            AuditIndex::Single(_) => 1,
            AuditIndex::Sharded(i) => i.shard_count(),
        }
    }
}

impl CountsProvider for AuditIndex {
    fn n(&self) -> usize {
        AuditIndex::n(self)
    }

    fn counts(&self, p: &Pattern, k: usize) -> (usize, usize) {
        AuditIndex::counts(self, p, k)
    }

    fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode {
        AuditIndex::code_at(self, pos, attr)
    }

    fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        AuditIndex::prefix_count(self, p, k)
    }
}

type PrepareHook = Box<dyn FnOnce(&mut Dataset) -> Result<(), String>>;

/// Fluent construction of an [`Audit`].
///
/// The dataset arrives as an `Arc` so a server can hand the same in-memory
/// dataset to many audits without copying; the ranking is either supplied
/// precomputed or produced by a [`Ranker`] on the *unprepared* dataset
/// (the paper ranks on raw numeric attributes and detects on the
/// bucketized ones — [`AuditBuilder::bucketize`] reproduces exactly that
/// split).
pub struct AuditBuilder {
    dataset: Arc<Dataset>,
    ranking: Option<Ranking>,
    attrs: Option<Vec<String>>,
    prepare: Vec<PrepareHook>,
    threads: usize,
    shards: usize,
}

impl AuditBuilder {
    /// Starts a builder over `dataset`.
    pub fn new(dataset: impl Into<Arc<Dataset>>) -> Self {
        AuditBuilder {
            dataset: dataset.into(),
            ranking: None,
            attrs: None,
            prepare: Vec::new(),
            threads: 1,
            shards: 1,
        }
    }

    /// Uses a precomputed ranking.
    pub fn ranking(mut self, ranking: Ranking) -> Self {
        self.ranking = Some(ranking);
        self
    }

    /// Ranks the (raw, unprepared) dataset with `ranker` now.
    pub fn ranker(mut self, ranker: &dyn Ranker) -> Self {
        self.ranking = Some(ranker.rank(&self.dataset));
        self
    }

    /// Restricts the pattern attributes to the named columns (the
    /// experiments vary the attribute count this way). Default: every
    /// categorical column.
    pub fn attributes<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.attrs = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Bucketizes a numeric column into `bins` equal-width bins before
    /// detection (after ranking). May be called repeatedly.
    pub fn bucketize(mut self, column: &str, bins: usize) -> Self {
        let column = column.to_string();
        self.prepare.push(Box::new(move |ds| {
            rankfair_data::bucketize::bucketize_in_place(
                ds,
                &column,
                bins,
                rankfair_data::bucketize::BinStrategy::EqualWidth,
            )
            .map_err(|e| format!("bucketizing `{column}`: {e}"))
        }));
        self
    }

    /// Arbitrary dataset-preparation hook, run (in registration order,
    /// after ranking) on a private copy of the dataset.
    pub fn prepare_with(
        mut self,
        hook: impl FnOnce(&mut Dataset) -> Result<(), String> + 'static,
    ) -> Self {
        self.prepare.push(Box::new(hook));
        self
    }

    /// Number of worker threads [`Audit::run`] splits the `k` range
    /// across. `0` means one per available CPU; default 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Partitions the ranking into `shards` contiguous rank blocks, each
    /// with its own shard-local index; pattern counts are merged
    /// additively across shards ([`ShardedIndex`]). `0` or `1` keeps the
    /// single unsharded index; results are identical either way.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builds the audit: ranks (if needed), applies preparation hooks,
    /// constructs the pattern space and the ranked bitmap index.
    pub fn build(self) -> Result<Audit, AuditError> {
        let Some(ranking) = self.ranking else {
            return Err(AuditError::MissingRanking);
        };
        let dataset = if self.prepare.is_empty() {
            self.dataset
        } else {
            let mut ds = (*self.dataset).clone();
            for hook in self.prepare {
                hook(&mut ds).map_err(AuditError::Prepare)?;
            }
            Arc::new(ds)
        };
        if ranking.len() != dataset.n_rows() {
            return Err(AuditError::RankingMismatch {
                ranking: ranking.len(),
                rows: dataset.n_rows(),
            });
        }
        let space = match &self.attrs {
            Some(attrs) => {
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                PatternSpace::from_column_names(&dataset, &refs)?
            }
            None => PatternSpace::from_dataset(&dataset)?,
        };
        let index = if self.shards <= 1 {
            AuditIndex::Single(RankedIndex::build(&dataset, &space, &ranking))
        } else {
            AuditIndex::Sharded(ShardedIndex::build(&dataset, &space, &ranking, self.shards))
        };
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        Ok(Audit {
            dataset,
            space,
            ranking,
            index,
            threads,
        })
    }
}

/// An owned, `Send + Sync` audit: dataset + ranking + pattern space +
/// ranked index, executing [`AuditTask`]s. Built by [`AuditBuilder`].
#[derive(Debug, Clone)]
pub struct Audit {
    dataset: Arc<Dataset>,
    space: PatternSpace,
    ranking: Ranking,
    index: AuditIndex,
    threads: usize,
}

// Compile-time half of the thread-safety contract: `Audit` (and the types
// an audit run shares across worker threads) must stay `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Audit>();
    assert_send_sync::<AuditOutcome>();
    assert_send_sync::<AuditTask>();
};

impl Audit {
    /// Starts an [`AuditBuilder`] over `dataset`.
    pub fn builder(dataset: impl Into<Arc<Dataset>>) -> AuditBuilder {
        AuditBuilder::new(dataset)
    }

    /// The (prepared) dataset the audit detects on.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// A clone of the shared dataset handle.
    pub fn dataset_arc(&self) -> Arc<Dataset> {
        Arc::clone(&self.dataset)
    }

    /// The pattern space (attribute order, cardinalities, labels).
    pub fn space(&self) -> &PatternSpace {
        &self.space
    }

    /// The ranking in use.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// The ranked counting index (single or sharded).
    pub fn index(&self) -> &AuditIndex {
        &self.index
    }

    /// Worker threads [`Audit::run`] uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Renders a pattern with attribute names and value labels.
    pub fn describe(&self, p: &Pattern) -> String {
        self.space.display(p)
    }

    /// Row ids of the tuples matching `p`.
    pub fn group_members(&self, p: &Pattern) -> Vec<u32> {
        let n = u32::try_from(self.dataset.n_rows()).expect("row count fits TupleId");
        (0..n)
            .filter(|&r| p.matches(|a| self.dataset.code(r as usize, self.space.dataset_col(a))))
            .collect()
    }

    /// Enriches an outcome into per-`k` display reports (both directions).
    pub fn report(&self, out: &AuditOutcome, task: &AuditTask) -> Vec<KReport> {
        summarize_audit(out, &self.index, &self.space, task)
    }

    fn validate(&self, cfg: &DetectConfig, task: &AuditTask) -> Result<(), AuditError> {
        validate_task(cfg, task, self.index.n())
    }

    /// The borrowed execution core shared with [`crate::MonitorAudit`].
    fn parts(&self) -> AuditParts<'_, AuditIndex> {
        AuditParts {
            dataset: &self.dataset,
            space: &self.space,
            ranking: &self.ranking,
            index: &self.index,
        }
    }

    /// Executes `task` over `cfg`'s `k` range.
    ///
    /// With [`AuditBuilder::threads`] > 1 (and no deadline) the range is
    /// split into contiguous chunks executed on `std::thread::scope`
    /// workers that share the immutable index; every algorithm is exact
    /// for any starting `k`, so the concatenated `per_k` is identical to
    /// the single-threaded result (only the work counters differ, since
    /// each chunk pays its own initial build). Deadline-bound runs stay
    /// sequential so truncation keeps its prefix semantics; both the
    /// under- and over-representation loops honor the deadline and mark
    /// [`SearchStats::timed_out`].
    pub fn run(
        &self,
        cfg: &DetectConfig,
        task: &AuditTask,
        engine: Engine,
    ) -> Result<AuditOutcome, AuditError> {
        self.validate(cfg, task)?;
        let threads = self.threads.min(cfg.range_len()).max(1);
        if threads == 1 || cfg.deadline.is_some() {
            return Ok(self.run_range(cfg, task, engine));
        }
        let chunk = cfg.range_len().div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|i| {
                let lo = cfg.k_min + i * chunk;
                let hi = (lo + chunk - 1).min(cfg.k_max);
                (lo, hi)
            })
            .filter(|(lo, hi)| lo <= hi)
            .collect();
        let parts: Vec<AuditOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    let sub = DetectConfig {
                        tau_s: cfg.tau_s,
                        k_min: lo,
                        k_max: hi,
                        deadline: None,
                    };
                    s.spawn(move || self.run_range(&sub, task, engine))
                })
                .collect();
            handles
                .into_iter()
                // lint:allow(panic-reachability) -- join() only errs if the worker panicked; re-raising that panic is propagation, not a new panic path
                .map(|h| h.join().expect("audit worker"))
                .collect()
        });
        let mut per_k = Vec::with_capacity(cfg.range_len());
        let mut stats = SearchStats::default();
        for part in parts {
            per_k.extend(part.per_k);
            stats.merge(&part.stats);
        }
        Ok(AuditOutcome { per_k, stats })
    }

    /// Sequential execution over one contiguous sub-range (already
    /// validated).
    fn run_range(&self, cfg: &DetectConfig, task: &AuditTask, engine: Engine) -> AuditOutcome {
        self.parts().run_range(cfg, task, engine)
    }
}

/// Shared validation of a `(config, task)` pair against a universe of `n`
/// ranked tuples — used by [`Audit`] and [`crate::MonitorAudit`].
pub(crate) fn validate_task(
    cfg: &DetectConfig,
    task: &AuditTask,
    n: usize,
) -> Result<(), AuditError> {
    if cfg.k_max > n {
        return Err(AuditError::InvalidKRange {
            k_max: cfg.k_max,
            n,
        });
    }
    // The finiteness check must come first: a bare `alpha <= 0.0` is
    // false for NaN, which would sail through and mark nothing biased.
    if let AuditTask::UnderRep(BiasMeasure::Proportional { alpha }) = task {
        if !alpha.is_finite() || *alpha <= 0.0 {
            return Err(AuditError::InvalidAlpha(*alpha));
        }
    }
    let bounds_of = |task: &AuditTask| -> Vec<Bounds> {
        match task {
            AuditTask::UnderRep(BiasMeasure::GlobalLower(b)) => vec![b.clone()],
            AuditTask::UnderRep(BiasMeasure::Proportional { .. }) => Vec::new(),
            AuditTask::OverRep { upper, .. } => vec![upper.clone()],
            AuditTask::Combined { lower, upper } => vec![lower.clone(), upper.clone()],
        }
    };
    for b in bounds_of(task) {
        b.validate().map_err(AuditError::InvalidBound)?;
    }
    Ok(())
}

/// The borrowed pieces an audit task executes against. [`Audit`] owns one
/// set; [`crate::MonitorAudit`] owns an *evolving* set and re-runs tasks
/// over sub-ranges of `k` after ranking edits — both drive exactly this
/// code, so a delta re-audit can never drift from a full audit.
pub(crate) struct AuditParts<'a, I: CountsProvider> {
    pub dataset: &'a Dataset,
    pub space: &'a PatternSpace,
    pub ranking: &'a Ranking,
    pub index: &'a I,
}

/// The persistent engine state a [`crate::MonitorAudit`] carries between
/// delta re-audits: per-direction stores (the shared node arena plus
/// counts-only engine snapshots every `cadence` values of `k`, grid
/// `k ≡ k_min (mod cadence)`) and the replay work counters. The monitor
/// invalidates entries that an edit batch made stale — the changed-`k`
/// segments for a pure reorder, everything (arena included) for an
/// insertion — and [`AuditParts::run_range_checkpointed`] heals the holes
/// while recomputing.
#[derive(Debug)]
pub(crate) struct EngineCheckpoints {
    /// Grid spacing `C`: one snapshot every `C` values of `k`.
    pub(crate) cadence: usize,
    /// Lower-engine arena + snapshots (UnderRep and the lower half of
    /// Combined).
    pub(crate) lower: engine::LowerStore,
    /// Upper-engine arena + snapshots (OverRep and the upper half of
    /// Combined).
    pub(crate) upper: upper_engine::UpperStore,
    /// Seek/build/replay counters accumulated over the monitor's life.
    pub(crate) counters: ReplayCounters,
    /// Checkpoints dropped by edit invalidation so far.
    pub(crate) invalidated: u64,
}

impl EngineCheckpoints {
    pub(crate) fn new(cadence: usize) -> Self {
        EngineCheckpoints {
            cadence: cadence.max(1),
            lower: engine::LowerStore::default(),
            upper: upper_engine::UpperStore::default(),
            counters: ReplayCounters::default(),
            invalidated: 0,
        }
    }

    /// Drops every checkpoint *and* both arenas — an insertion moved `n`
    /// and `s_D`, which every interned node's pruned verdict and every
    /// snapshot's classification depend on.
    pub(crate) fn invalidate_all(&mut self) {
        self.invalidated += (self.lower.snaps.len() + self.upper.snaps.len()) as u64;
        self.lower.snaps.clear();
        self.lower.arena.clear();
        self.upper.snaps.clear();
        self.upper.arena.clear();
    }

    /// Live checkpoints per direction.
    pub(crate) fn live(&self) -> (usize, usize) {
        (self.lower.snaps.len(), self.upper.snaps.len())
    }

    /// Total node slots held across every stored snapshot (each one
    /// `u32` count plus frontier bits — the arena is shared, not cloned).
    pub(crate) fn stored_nodes(&self) -> usize {
        self.lower
            .snaps
            .iter()
            .map(|cp| cp.stored_nodes())
            .sum::<usize>()
            + self
                .upper
                .snaps
                .iter()
                .map(|cp| cp.stored_nodes())
                .sum::<usize>()
    }

    /// Nodes interned across both arenas (the steady-state memory
    /// driver; checkpoints only add counts-vector slots on top).
    pub(crate) fn arena_nodes(&self) -> usize {
        self.lower.arena.len() + self.upper.arena.len()
    }
}

/// Shared checkpoint-grid maintenance for both engines' snapshot stores
/// (one definition so the heal/prune policy cannot drift between them).
/// Writes a snapshot at `k` when it sits on the grid
/// (`k ≡ k_min (mod cadence)`): reorder replays pass a `heal_cutoff` so
/// only the snapshots near the span start — where the next seek lands —
/// are (re)written, and deeper stale ones are dropped instead of
/// recloned; full builds (no cutoff) lay the whole grid. Returns whether
/// a snapshot was written (inserted or overwritten) at `k` — segmented
/// replays track written grid `k`s so a later segment of the same call
/// never re-repairs state that already holds the new order.
pub(crate) fn maintain_grid_snapshot<T>(
    store: &mut Vec<T>,
    k: usize,
    k_min: usize,
    cadence: usize,
    heal_cutoff: Option<usize>,
    key: impl FnMut(&T) -> usize,
    snapshot: impl FnOnce() -> T,
) -> bool {
    if k < k_min || !(k - k_min).is_multiple_of(cadence) {
        return false;
    }
    match store.binary_search_by_key(&k, key) {
        Ok(i) => match heal_cutoff {
            Some(cut) if k > cut => {
                store.remove(i);
                false
            }
            _ => {
                store[i] = snapshot();
                true
            }
        },
        Err(i) => {
            if heal_cutoff.is_none_or(|cut| k <= cut) {
                store.insert(i, snapshot());
                true
            } else {
                false
            }
        }
    }
}

/// How a pure-reorder edit batch moved the ranking: the hull start `lo`
/// (smallest rank position whose occupant changed) and the pre-batch
/// order. A checkpoint at `k ≤ lo` or `k > hi` is untouched by the
/// reorder; the one seek checkpoint that can land inside `(lo, hi]` is
/// **repaired** from this spec instead of discarded — the top-`k` set
/// diff is bounded by the number of moved tuples, never by the span, so
/// the repair costs a handful of ±count walks plus one store rescan
/// where a discard would cost a from-scratch build at `k_min`.
pub(crate) struct ReorderSpec {
    /// Smallest rank position whose occupant changed.
    pub lo: usize,
    /// The full pre-batch rank order.
    pub old_order: Vec<TupleId>,
}

/// The top-`k` set transition of a reorder whose hull starts at `lo`:
/// `(entering, leaving)` rank positions **in the new order**. Entering
/// tuples (joined the top-`k`) sit at their new positions `< k`; leaving
/// tuples sit at their new positions `≥ k`, where the patched index can
/// still read their attribute codes.
pub(crate) fn top_k_diff(
    k: usize,
    lo: usize,
    old_order: &[TupleId],
    new_order: &[TupleId],
) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(lo < k && k <= old_order.len() && old_order.len() == new_order.len());
    // Only the window [lo, k) can differ between the two top-k sets; hash
    // the windows so the diff stays linear in the window even when a
    // top-of-ranking edit meets a large `k_min` (window = [0, k_min)).
    let old_w: crate::util::FxHashSet<TupleId> = old_order[lo..k].iter().copied().collect();
    let new_w: crate::util::FxHashSet<TupleId> = new_order[lo..k].iter().copied().collect();
    let entering: Vec<usize> = (lo..k)
        .filter(|&p| !old_w.contains(&new_order[p]))
        .collect();
    let mut remaining: crate::util::FxHashSet<TupleId> =
        old_w.difference(&new_w).copied().collect();
    debug_assert_eq!(entering.len(), remaining.len());
    let mut leaving = Vec::with_capacity(remaining.len());
    if !remaining.is_empty() {
        for (off, r) in new_order[k..].iter().enumerate() {
            if remaining.remove(r) {
                leaving.push(k + off);
                if remaining.is_empty() {
                    break;
                }
            }
        }
        debug_assert!(remaining.is_empty(), "leaving tuples must reappear below k");
    }
    (entering, leaving)
}

impl<I: CountsProvider> AuditParts<'_, I> {
    /// Sequential execution over one contiguous, already validated `k`
    /// sub-range.
    pub(crate) fn run_range(
        &self,
        cfg: &DetectConfig,
        task: &AuditTask,
        engine: Engine,
    ) -> AuditOutcome {
        match task {
            AuditTask::UnderRep(measure) => {
                let out = self.run_under(cfg, measure, engine);
                AuditOutcome {
                    per_k: out
                        .per_k
                        .into_iter()
                        .map(|kr| AuditKResult {
                            k: kr.k,
                            under: kr.patterns,
                            over: Vec::new(),
                        })
                        .collect(),
                    stats: out.stats,
                }
            }
            AuditTask::OverRep { upper, scope } => {
                let (per_k, stats) = self.run_over(cfg, upper, *scope, engine);
                AuditOutcome {
                    per_k: per_k
                        .into_iter()
                        .map(|kr| AuditKResult {
                            k: kr.k,
                            under: Vec::new(),
                            over: kr.patterns,
                        })
                        .collect(),
                    stats,
                }
            }
            AuditTask::Combined { lower, upper } => {
                let low = self.run_under(cfg, &BiasMeasure::GlobalLower(lower.clone()), engine);
                // Only compute the over side for the k values the (possibly
                // deadline-truncated) under side produced — no work whose
                // results would be discarded by the zip below — and give it
                // the *remaining* wall-clock budget, not a fresh one.
                let (high, over_stats) = match low.per_k.last() {
                    Some(last) => {
                        let over_cfg = DetectConfig {
                            k_max: last.k,
                            deadline: cfg.deadline.map(|d| d.saturating_sub(low.stats.elapsed)),
                            ..cfg.clone()
                        };
                        self.run_over(&over_cfg, upper, OverRepScope::MostSpecific, engine)
                    }
                    None => (Vec::new(), SearchStats::default()),
                };
                let mut stats = low.stats.clone();
                stats.merge(&over_stats);
                // The two phases ran back to back: report their total, not
                // the max merge_stats uses for parallel workers.
                stats.elapsed = low.stats.elapsed + over_stats.elapsed;
                AuditOutcome {
                    per_k: low
                        .per_k
                        .into_iter()
                        .zip(high)
                        .map(|(l, h)| AuditKResult {
                            k: l.k,
                            under: l.patterns,
                            over: h.patterns,
                        })
                        .collect(),
                    stats,
                }
            }
        }
    }

    /// Checkpointed execution over the disjoint ascending `k` segments
    /// `spans` (each `[lo, hi]` inclusive) —
    /// [`crate::MonitorAudit`]'s delta path with `Engine::Optimized`.
    ///
    /// Functionally identical to [`AuditParts::run_range`] over the same
    /// `k` values (both directions drive the same engine step code; the
    /// differential sweeps assert equality), but it seeks into `ckpts`'s
    /// stored snapshots instead of building the engines from scratch at
    /// each segment's first `k`, repairing the seek checkpoint against
    /// `reorder` when an edit swallowed it, and refreshes snapshots as it
    /// replays. Deadlines are unsupported (monitors reject them at
    /// construction): a truncated replay would leave the checkpoint store
    /// inconsistent with the cached results.
    pub(crate) fn run_range_checkpointed(
        &self,
        cfg: &DetectConfig,
        spans: &[(usize, usize)],
        task: &AuditTask,
        ckpts: &mut EngineCheckpoints,
        reorder: Option<&ReorderSpec>,
    ) -> AuditOutcome {
        debug_assert!(cfg.deadline.is_none(), "checkpointed runs take no deadline");
        let cadence = ckpts.cadence;
        let lower_side = |measure: &BiasMeasure, ckpts: &mut EngineCheckpoints| {
            engine::lower_replay(
                self.index,
                self.space,
                measure,
                cfg,
                spans,
                reorder.map(|r| (r, self.ranking.order())),
                &mut ckpts.lower,
                cadence,
                &mut ckpts.counters,
            )
        };
        let upper_side = |upper: &Bounds, scope: OverRepScope, ckpts: &mut EngineCheckpoints| {
            upper_engine::upper_replay(
                self.index,
                self.space,
                cfg,
                upper,
                scope,
                spans,
                reorder.map(|r| (r, self.ranking.order())),
                &mut ckpts.upper,
                cadence,
                &mut ckpts.counters,
            )
        };
        match task {
            AuditTask::UnderRep(measure) => {
                let out = lower_side(measure, ckpts);
                AuditOutcome {
                    per_k: out
                        .per_k
                        .into_iter()
                        .map(|kr| AuditKResult {
                            k: kr.k,
                            under: kr.patterns,
                            over: Vec::new(),
                        })
                        .collect(),
                    stats: out.stats,
                }
            }
            AuditTask::OverRep { upper, scope } => {
                let (per_k, stats) = upper_side(upper, *scope, ckpts);
                AuditOutcome {
                    per_k: per_k
                        .into_iter()
                        .map(|kr| AuditKResult {
                            k: kr.k,
                            under: Vec::new(),
                            over: kr.patterns,
                        })
                        .collect(),
                    stats,
                }
            }
            AuditTask::Combined { lower, upper } => {
                let low = lower_side(&BiasMeasure::GlobalLower(lower.clone()), ckpts);
                let (high, over_stats) = upper_side(upper, OverRepScope::MostSpecific, ckpts);
                let mut stats = low.stats.clone();
                stats.merge(&over_stats);
                // Sequential phases: wall clocks add (merge takes the max
                // for parallel workers).
                stats.elapsed = low.stats.elapsed + over_stats.elapsed;
                AuditOutcome {
                    per_k: low
                        .per_k
                        .into_iter()
                        .zip(high)
                        .map(|(l, h)| AuditKResult {
                            k: l.k,
                            under: l.patterns,
                            over: h.patterns,
                        })
                        .collect(),
                    stats,
                }
            }
        }
    }

    fn run_under(
        &self,
        cfg: &DetectConfig,
        measure: &BiasMeasure,
        engine_sel: Engine,
    ) -> DetectionOutput {
        match engine_sel {
            Engine::Baseline => topdown::iter_td(self.index, self.space, cfg, measure),
            Engine::Optimized => match measure {
                BiasMeasure::GlobalLower(b) => {
                    engine::global_bounds(self.index, self.space, cfg, b)
                }
                BiasMeasure::Proportional { alpha } => {
                    engine::prop_bounds(self.index, self.space, cfg, *alpha)
                }
            },
        }
    }

    fn run_over(
        &self,
        cfg: &DetectConfig,
        upper: &Bounds,
        scope: OverRepScope,
        engine_sel: Engine,
    ) -> (Vec<KResult>, SearchStats) {
        // The optimized path is the incremental engine: one build at
        // `k_min`, then per-`k` subtree walks and frontier deltas instead
        // of a fresh DFS plus full maximality sweep at every `k`.
        if engine_sel == Engine::Optimized {
            return upper_engine::upper_incremental(self.index, self.space, cfg, upper, scope);
        }
        // The guard starts before the substantial-set enumeration so that
        // time counts against the budget; within each per-`k` scan it is
        // polled per pattern, so a deadline overrun is bounded by one
        // naive count, not by a whole `k` value (tens of seconds on the
        // larger benches).
        let mut guard = DeadlineGuard::new(cfg.deadline);
        let mut stats = SearchStats::default();
        let mut per_k = Vec::with_capacity(cfg.range_len());
        // The substantial set depends only on τs, not on k: enumerate once
        // per run for the brute-force baseline.
        let substantial =
            oracle::enumerate_substantial(self.dataset, self.space, self.ranking, cfg.tau_s);
        stats.nodes_evaluated += substantial.len() as u64;
        for k in cfg.k_min..=cfg.k_max {
            stats.full_searches += 1;
            match self.oracle_over(&substantial, k, upper.at(k), scope, &mut guard) {
                Some(patterns) => per_k.push(KResult { k, patterns }),
                None => {
                    stats.timed_out = true;
                    break;
                }
            }
        }
        stats.elapsed = guard.elapsed();
        (per_k, stats)
    }

    /// Brute-force over-representation baseline on a different code path
    /// from the optimized searches: naive row-scan counting over the
    /// pre-enumerated substantial patterns, then a quadratic
    /// maximality/minimality filter. Returns `None` on deadline expiry.
    fn oracle_over(
        &self,
        substantial: &[Pattern],
        k: usize,
        u: usize,
        scope: OverRepScope,
        guard: &mut DeadlineGuard,
    ) -> Option<Vec<Pattern>> {
        let mut qualifying: Vec<&Pattern> = Vec::new();
        for p in substantial {
            if guard.expired() {
                return None;
            }
            if oracle::naive_counts(self.dataset, self.space, self.ranking, p, k).1 > u {
                qualifying.push(p);
            }
        }
        let mut out: Vec<Pattern> = Vec::new();
        for p in &qualifying {
            if guard.expired() {
                return None;
            }
            let dominated = match scope {
                OverRepScope::MostSpecific => qualifying.iter().any(|q| p.is_proper_subset_of(q)),
                OverRepScope::MostGeneral => qualifying.iter().any(|q| q.is_proper_subset_of(p)),
            };
            if !dominated {
                out.push((*p).clone());
            }
        }
        out.sort_unstable();
        Some(out)
    }
}

impl Audit {
    /// Lazily yields the [`AuditKResult`] for each `k` on demand,
    /// maintaining the incremental engines between pulls — the owned
    /// successor of the deprecated `DetectionStream`.
    ///
    /// Later `k` values cost nothing unless pulled; **both** directions
    /// run their optimized incremental engine (the under side via
    /// `GlobalBounds`/`PropBounds`, the over side via the incremental
    /// upper engine).
    pub fn run_streaming(
        &self,
        cfg: &DetectConfig,
        task: &AuditTask,
    ) -> Result<AuditStream<'_>, AuditError> {
        self.validate(cfg, task)?;
        let under = match task {
            AuditTask::UnderRep(BiasMeasure::GlobalLower(b)) => {
                Some(engine::StreamCore::global(&self.index, &self.space, cfg, b))
            }
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha }) => Some(
                engine::StreamCore::proportional(&self.index, &self.space, cfg, *alpha),
            ),
            AuditTask::Combined { lower, .. } => Some(engine::StreamCore::global(
                &self.index,
                &self.space,
                cfg,
                lower,
            )),
            AuditTask::OverRep { .. } => None,
        };
        let over = match task {
            AuditTask::UnderRep(_) => None,
            AuditTask::OverRep { upper, scope } => Some(UpperStream::new(
                &self.index,
                &self.space,
                cfg,
                upper.clone(),
                *scope,
            )),
            AuditTask::Combined { upper, .. } => Some(UpperStream::new(
                &self.index,
                &self.space,
                cfg,
                upper.clone(),
                OverRepScope::MostSpecific,
            )),
        };
        Ok(AuditStream {
            k_max: cfg.k_max,
            under,
            over,
            next_k: cfg.k_min,
        })
    }
}

/// Lazy per-`k` iterator returned by [`Audit::run_streaming`].
pub struct AuditStream<'a> {
    k_max: usize,
    under: Option<engine::StreamCore<'a, AuditIndex>>,
    over: Option<UpperStream<'a, AuditIndex>>,
    next_k: usize,
}

impl AuditStream<'_> {
    /// Instrumentation counters accumulated so far (both directions).
    pub fn stats(&self) -> SearchStats {
        let mut stats = self.over.as_ref().map(|s| s.stats()).unwrap_or_default();
        if let Some(s) = &self.under {
            stats.merge(s.stats());
        }
        stats
    }

    /// Whether either side stopped early on the deadline.
    pub fn timed_out(&self) -> bool {
        let under = self.under.as_ref().is_some_and(|s| s.timed_out());
        under || self.over.as_ref().is_some_and(|s| s.timed_out())
    }
}

impl Iterator for AuditStream<'_> {
    type Item = AuditKResult;

    fn next(&mut self) -> Option<AuditKResult> {
        if self.next_k > self.k_max {
            return None;
        }
        // Each side enforces the deadline inside its incremental engine;
        // if either truncates, the zipped stream ends (truncate-and-flag,
        // matching the batch path).
        let k = self.next_k;
        let under = match &mut self.under {
            Some(stream) => stream.next()?.patterns,
            None => Vec::new(),
        };
        let over = match &mut self.over {
            Some(stream) => stream.next()?.patterns,
            None => Vec::new(),
        };
        self.next_k += 1;
        Some(AuditKResult { k, under, over })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::{AttributeRanker, SortKey};

    fn fig1_audit() -> Audit {
        Audit::builder(Arc::new(students_fig1()))
            .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_with_ranker_matches_precomputed() {
        let ds = Arc::new(students_fig1());
        let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
        let via_ranker = Audit::builder(Arc::clone(&ds))
            .ranker(&ranker)
            .build()
            .unwrap();
        let via_order = fig1_audit();
        let cfg = DetectConfig::new(4, 4, 5);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        assert_eq!(
            via_ranker
                .run(&cfg, &task, Engine::Optimized)
                .unwrap()
                .per_k,
            via_order.run(&cfg, &task, Engine::Optimized).unwrap().per_k,
        );
    }

    #[test]
    fn builder_errors_are_typed() {
        let ds = Arc::new(students_fig1());
        assert_eq!(
            Audit::builder(Arc::clone(&ds)).build().unwrap_err(),
            AuditError::MissingRanking
        );
        let short = Ranking::from_order(vec![0, 1, 2]).unwrap();
        assert!(matches!(
            Audit::builder(Arc::clone(&ds))
                .ranking(short)
                .build()
                .unwrap_err(),
            AuditError::RankingMismatch {
                ranking: 3,
                rows: 16
            }
        ));
        let bad_attr = Audit::builder(Arc::clone(&ds))
            .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
            .attributes(["Nope"])
            .build();
        assert!(matches!(
            bad_attr.unwrap_err(),
            AuditError::Space(SpaceError::UnknownColumn(_))
        ));
    }

    #[test]
    fn run_validates_range_and_alpha() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(2, 2, 17);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        assert_eq!(
            audit.run(&cfg, &task, Engine::Optimized).unwrap_err(),
            AuditError::InvalidKRange { k_max: 17, n: 16 }
        );
        let cfg = DetectConfig::new(2, 2, 5);
        let bad = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.0 });
        assert_eq!(
            audit.run(&cfg, &bad, Engine::Optimized).unwrap_err(),
            AuditError::InvalidAlpha(0.0)
        );
    }

    #[test]
    fn run_rejects_nan_and_negative_parameters() {
        // Regression: a NaN α passed `alpha <= 0.0` (false for NaN) and a
        // NaN/negative `LinearFraction` was never inspected — both
        // produced silently empty or all-biased results.
        let audit = fig1_audit();
        let cfg = DetectConfig::new(2, 2, 5);
        let nan_alpha = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: f64::NAN });
        assert!(matches!(
            audit.run(&cfg, &nan_alpha, Engine::Optimized).unwrap_err(),
            AuditError::InvalidAlpha(a) if a.is_nan()
        ));
        let nan_lower =
            AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::LinearFraction(f64::NAN)));
        assert!(matches!(
            audit.run(&cfg, &nan_lower, Engine::Optimized).unwrap_err(),
            AuditError::InvalidBound(v) if v.is_nan()
        ));
        let neg_upper = AuditTask::OverRep {
            upper: Bounds::LinearFraction(-0.5),
            scope: OverRepScope::MostSpecific,
        };
        assert_eq!(
            audit.run(&cfg, &neg_upper, Engine::Optimized).unwrap_err(),
            AuditError::InvalidBound(-0.5)
        );
        let bad_combined = AuditTask::Combined {
            lower: Bounds::constant(1),
            upper: Bounds::LinearFraction(f64::INFINITY),
        };
        assert!(matches!(
            audit
                .run(&cfg, &bad_combined, Engine::Optimized)
                .unwrap_err(),
            AuditError::InvalidBound(_)
        ));
        // The streaming entry point validates identically.
        assert!(audit.run_streaming(&cfg, &nan_alpha).is_err());
        // Well-formed fractional bounds still pass.
        let ok = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::LinearFraction(0.25)));
        assert!(audit.run(&cfg, &ok, Engine::Optimized).is_ok());
    }

    #[test]
    fn under_rep_matches_example_4_6() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(4, 4, 5);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        let k4: Vec<String> = out.per_k[0]
            .under
            .iter()
            .map(|p| audit.describe(p))
            .collect();
        for e in ["{School=GP}", "{Address=U}", "{Failures=1}", "{Failures=2}"] {
            assert!(k4.contains(&e.to_string()), "missing {e}: {k4:?}");
        }
        assert!(out.per_k.iter().all(|kr| kr.over.is_empty()));
    }

    #[test]
    fn all_tasks_agree_between_engines_on_fig1() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(2, 3, 16);
        let tasks = [
            AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 }),
            AuditTask::OverRep {
                upper: Bounds::constant(2),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::OverRep {
                upper: Bounds::constant(1),
                scope: OverRepScope::MostGeneral,
            },
            AuditTask::Combined {
                lower: Bounds::constant(2),
                upper: Bounds::constant(3),
            },
        ];
        for task in &tasks {
            let opt = audit.run(&cfg, task, Engine::Optimized).unwrap();
            let base = audit.run(&cfg, task, Engine::Baseline).unwrap();
            assert_eq!(opt.per_k, base.per_k, "{task:?}");
        }
    }

    #[test]
    fn combined_reports_both_directions() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(4, 4, 6);
        let task = AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(2),
        };
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        assert_eq!(out.per_k.len(), 3);
        assert!(out.per_k.iter().any(|kr| !kr.under.is_empty()));
        assert!(out.per_k.iter().any(|kr| !kr.over.is_empty()));
        for kr in &out.per_k {
            for p in &kr.over {
                let (sd, count) = audit.index().counts(p, kr.k);
                assert!(sd >= 4 && count > 2);
            }
        }
    }

    #[test]
    fn parallel_run_is_byte_identical_for_every_task() {
        let ds = Arc::new(students_fig1());
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let seq = Audit::builder(Arc::clone(&ds))
            .ranking(ranking.clone())
            .build()
            .unwrap();
        let par = Audit::builder(Arc::clone(&ds))
            .ranking(ranking)
            .threads(4)
            .build()
            .unwrap();
        let cfg = DetectConfig::new(2, 2, 16);
        let tasks = [
            AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::steps(vec![
                (2, 1),
                (6, 2),
                (10, 3),
            ]))),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.9 }),
            AuditTask::OverRep {
                upper: Bounds::constant(2),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::Combined {
                lower: Bounds::constant(2),
                upper: Bounds::constant(3),
            },
        ];
        for task in &tasks {
            let a = seq.run(&cfg, task, Engine::Optimized).unwrap();
            let b = par.run(&cfg, task, Engine::Optimized).unwrap();
            assert_eq!(a.per_k, b.per_k, "{task:?}");
            assert_eq!(
                a.detection_output().per_k,
                b.detection_output().per_k,
                "{task:?}"
            );
        }
    }

    #[test]
    fn sharded_builder_matches_unsharded_for_every_task() {
        let ds = Arc::new(students_fig1());
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let single = Audit::builder(Arc::clone(&ds))
            .ranking(ranking.clone())
            .build()
            .unwrap();
        assert_eq!(single.index().shard_count(), 1);
        let cfg = DetectConfig::new(2, 2, 16);
        let tasks = [
            AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 }),
            AuditTask::OverRep {
                upper: Bounds::constant(2),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::Combined {
                lower: Bounds::constant(2),
                upper: Bounds::constant(3),
            },
        ];
        for shards in [2, 4, 7] {
            let sharded = Audit::builder(Arc::clone(&ds))
                .ranking(ranking.clone())
                .shards(shards)
                .build()
                .unwrap();
            assert_eq!(sharded.index().shard_count(), shards);
            for task in &tasks {
                for engine in [Engine::Optimized, Engine::Baseline] {
                    let a = single.run(&cfg, task, engine).unwrap();
                    let b = sharded.run(&cfg, task, engine).unwrap();
                    assert_eq!(a.per_k, b.per_k, "shards={shards} {task:?} {engine:?}");
                }
                let streamed: Vec<AuditKResult> =
                    sharded.run_streaming(&cfg, task).unwrap().collect();
                assert_eq!(
                    single.run(&cfg, task, Engine::Optimized).unwrap().per_k,
                    streamed,
                    "streaming shards={shards} {task:?}"
                );
            }
        }
    }

    #[test]
    fn audit_is_shareable_across_threads() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(2, 4, 8);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let expected = audit.run(&cfg, &task, Engine::Optimized).unwrap().per_k;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (audit, cfg, task, expected) = (&audit, &cfg, &task, &expected);
                s.spawn(move || {
                    let got = audit.run(cfg, task, Engine::Optimized).unwrap();
                    assert_eq!(&got.per_k, expected);
                });
            }
        });
    }

    #[test]
    fn streaming_matches_batch_for_every_task() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(2, 3, 16);
        let tasks = [
            AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 }),
            AuditTask::OverRep {
                upper: Bounds::constant(2),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::Combined {
                lower: Bounds::constant(2),
                upper: Bounds::constant(3),
            },
        ];
        for task in &tasks {
            let batch = audit.run(&cfg, task, Engine::Optimized).unwrap();
            let streamed: Vec<AuditKResult> = audit.run_streaming(&cfg, task).unwrap().collect();
            assert_eq!(batch.per_k, streamed, "{task:?}");
        }
    }

    #[test]
    fn streaming_is_lazy_and_stoppable() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(2, 2, 16);
        let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
        let mut stream = audit.run_streaming(&cfg, &task).unwrap();
        let first = stream.next().unwrap();
        assert_eq!(first.k, 2);
        let after_one = stream.stats().nodes_evaluated;
        let ks: Vec<usize> = stream.by_ref().take(3).map(|kr| kr.k).collect();
        assert_eq!(ks, vec![3, 4, 5]);
        assert!(stream.stats().nodes_evaluated >= after_one);
        assert!(!stream.timed_out());
    }

    #[test]
    fn over_rep_honors_deadline() {
        let audit = fig1_audit();
        let cfg = DetectConfig::new(1, 2, 16).with_deadline(std::time::Duration::ZERO);
        let task = AuditTask::OverRep {
            upper: Bounds::constant(1),
            scope: OverRepScope::MostSpecific,
        };
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        // A zero deadline truncates (possibly to nothing) and says so.
        assert!(out.stats.timed_out || out.per_k.len() == 15);
        if out.stats.timed_out {
            assert!(out.per_k.len() < 15);
        }
        // Produced prefixes are exact.
        let full = audit
            .run(&DetectConfig::new(1, 2, 16), &task, Engine::Optimized)
            .unwrap();
        for (got, want) in out.per_k.iter().zip(&full.per_k) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn bucketize_hook_prepares_detection_dataset() {
        // Rank on the numeric Grade, then bucketize it for detection: the
        // grade becomes a pattern attribute without disturbing the ranking.
        let ds = Arc::new(students_fig1());
        let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
        let audit = Audit::builder(Arc::clone(&ds))
            .ranker(&ranker)
            .bucketize("Grade", 3)
            .build()
            .unwrap();
        assert_eq!(audit.space().n_attrs(), 5); // 4 categorical + bucketized Grade
        assert!(audit.space().attr_by_name("Grade").is_some());
        // The source dataset is untouched (copy-on-prepare).
        assert!(ds.column_by_name("Grade").unwrap().codes().is_none());
        // Hooks that fail surface as typed errors.
        let err = Audit::builder(Arc::clone(&ds))
            .ranker(&ranker)
            .bucketize("Nope", 3)
            .build()
            .unwrap_err();
        assert!(matches!(err, AuditError::Prepare(_)));
    }
}
