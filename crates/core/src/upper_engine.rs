//! The incremental over-representation engine: §III upper-bound detection
//! without the per-`k` rescan.
//!
//! The per-`k` searches in [`crate::upper`] re-run a fresh DFS plus
//! `O(m·card)` maximality probes at **every** `k` — exactly the cost
//! blow-up the paper's Algorithms 2–3 eliminate for the lower-bound
//! problems. This engine applies the same observation (Proposition 4.3:
//! consecutive top-`k` sets differ by one tuple) to the upper-bound side.
//!
//! Qualification here is `s_D(p) ≥ τs ∧ s_Rk(p) > U_k`, which is
//! **subset-closed**: both counts are anti-monotone in specialization, so
//! a subset of a qualifying pattern qualifies. The engine keeps every
//! pattern it has evaluated in a persistent node store and maintains these
//! invariants between `k` values:
//!
//! * **exact counts** — the tuple entering the top-`k` satisfies a
//!   connected subtree of the stored search tree; one root walk bumps all
//!   their counts (no dataset scans), exactly like the lower engine's
//!   `walk_counts`;
//! * **tree closure** — every qualifying node is expanded (its search-tree
//!   children are live), so the live store always covers the full
//!   qualifying set plus one boundary layer. With `U_k` fixed, counts only
//!   grow, so nodes only *start* qualifying — the closure is repaired by
//!   expanding exactly the newly qualifying nodes (and, recursively, their
//!   fresh qualifying children);
//! * **maximal frontier** — the reported most-specific patterns. A pattern
//!   leaves the frontier only when a one-term extension starts qualifying,
//!   and every such extension is itself a live node when it flips (its
//!   tree prefixes are subsets, hence qualify, hence are expanded). So the
//!   per-step frontier delta is: drop the one-term subsets of each newly
//!   qualifying node, then run the `O(m·card)` maximality probe **only on
//!   the newly qualifying nodes** — not on the whole qualifying set as the
//!   per-`k` rescan does. Probes read stored nodes exclusively: an
//!   extension outside the live closure has a non-qualifying (unopened)
//!   prefix, so by subset-closure it cannot qualify — no probe ever costs
//!   a fresh pattern evaluation.
//!
//! On an upper-bound step (`U_k ≠ U_{k-1}`) nodes can flip in both
//! directions, so the engine reclassifies the whole live store in one pass
//! — a store rescan with zero fresh evaluations, not a from-scratch
//! rebuild — expands any newly qualifying region, and applies the same
//! frontier delta with the *lost* nodes folded in: a lost node leaves the
//! frontier, and its still-qualifying one-term subsets (for which it may
//! have been the last qualifying blocker) join the probe candidates.
//! Probes stay confined to the flipped region, so bounds that change at
//! every `k` (e.g. [`Bounds::LinearFraction`]) remain incremental;
//! decreasing bounds are covered too, since the growing qualifying set is
//! re-covered by the expansion cascade.
//!
//! For [`OverRepScope::MostGeneral`] the answer collapses: the qualifying
//! set is subset-closed, so every qualifying multi-term pattern has a
//! qualifying single-term subset, and the most general qualifying patterns
//! are exactly the qualifying **single-term** patterns. The engine then
//! maintains only the root level of the store.
//!
//! ## Arena store and run state
//!
//! Node *structure* — the pattern, its pruned (`s_D < τs`) verdict and
//! the generated children — is independent of `k` and of the bound, so it
//! lives in an append-only [`UpperArena`] owned by the monitor's
//! [`UpperStore`] and shared by every run and checkpoint. Run state is
//! three flat vectors indexed by node id (`counts`, the `open` frontier,
//! the `qualified` flags) plus the maximal frontier set, making an
//! [`UpperCheckpoint`] a counts-plus-frontier memcpy rather than a deep
//! clone of the node store. Re-activating a stored node costs one
//! truncated *prefix* recount (`s_Rk` only — the stored pruned verdict
//! stands in for `s_D`), never a full fused scan.

use crate::audit::OverRepScope;
use crate::bounds::Bounds;
use crate::pattern::Pattern;
use crate::space::{AttrId, CountsProvider, PatternSpace};
use crate::stats::{DeadlineGuard, DetectConfig, KResult, ReplayCounters, SearchStats};
use crate::util::FxHashSet;
use rankfair_data::ValueCode;

/// Sentinel in `counts` marking a node that is not live in the current
/// run. Real counts are bounded by `n`, which fits `TupleId` (u32).
const NOT_LIVE: u32 = u32::MAX;

/// Everything about a node that is a function of its pattern alone —
/// shared across runs, checkpoints and replays without cloning. (`s_D`
/// itself is not stored: the upper side only ever reads its `≥ τs`
/// verdict.)
#[derive(Debug, Clone)]
struct UpperNodeMeta {
    pattern: Pattern,
    /// Structural: the children have been generated and stored. Distinct
    /// from the run-level `open` frontier — a node expanded in an earlier
    /// run re-activates its stored children instead of re-evaluating them.
    expanded: bool,
    /// Children in (attribute, value) order for attributes past
    /// `max_attr`, enabling arithmetic child lookup on the walk.
    children: Vec<u32>,
}

/// The upper engine's index-addressed node arena: flat `Vec` of
/// [`UpperNodeMeta`] plus the level-1 child index. Append-only (node
/// structure is independent of `k` and of the bound), owned by the
/// [`UpperStore`] between runs and moved — not cloned — into the engine
/// for the duration of a replay.
#[derive(Debug, Default)]
pub(crate) struct UpperArena {
    nodes: Vec<UpperNodeMeta>,
    /// `s_D < τs` per node (never qualifies, never expanded, counts never
    /// read), kept out of [`UpperNodeMeta`] so the hot walks resolve the
    /// prune-skip from one flat byte array.
    pruned: Vec<bool>,
    /// Level-1 nodes laid out by `card_prefix[attr] + value` — the walk's
    /// entry points.
    root_children: Vec<u32>,
}

impl UpperArena {
    /// Number of interned nodes — the steady-state memory driver.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Drops all interned structure (insertions change `s_D` and the
    /// pruned verdicts, so the arena is rebuilt from scratch).
    pub(crate) fn clear(&mut self) {
        self.nodes.clear();
        self.pruned.clear();
        self.root_children.clear();
    }
}

/// The persistent upper-side store a monitor keeps between batches: one
/// shared arena plus the `k`-grid of counts-only snapshots taken over it.
#[derive(Debug, Default)]
pub(crate) struct UpperStore {
    pub(crate) arena: UpperArena,
    pub(crate) snaps: Vec<UpperCheckpoint>,
}

pub(crate) struct UpperEngine<'a, I: CountsProvider> {
    index: &'a I,
    space: &'a PatternSpace,
    tau_s: usize,
    scope: OverRepScope,
    arena: UpperArena,
    /// Per-run `s_Rk` per node, [`NOT_LIVE`] until activated this run.
    counts: Vec<u32>,
    /// Run-level expansion frontier: walks descend through `open` nodes
    /// only. `open[id]` implies every stored child of `id` is live.
    open: Vec<bool>,
    /// `s_D ≥ τs ∧ count > U_k` under the current `(k, U_k)`, per node.
    qualified: Vec<bool>,
    /// `card_prefix[a] = Σ_{b<a} card(b)` — the walk's child-lookup
    /// arithmetic, shared with the lower engine.
    card_prefix: Vec<u32>,
    /// Node ids of the maximal frontier (most-specific qualifying
    /// patterns). Unused for [`OverRepScope::MostGeneral`].
    maximal: FxHashSet<u32>,
    stats: SearchStats,
    /// Activations served by the stored pruned verdict plus a truncated
    /// prefix scan instead of a full fused evaluation.
    prefix_recounts: u64,
    /// Reused walk buffers: the DFS stack and the entering tuple's value
    /// codes. Taken/returned by the walks so a replay's per-step walks
    /// never hit the allocator.
    scratch_stack: Vec<u32>,
    scratch_codes: Vec<ValueCode>,
}

impl<'a, I: CountsProvider> UpperEngine<'a, I> {
    fn new(index: &'a I, space: &'a PatternSpace, tau_s: usize, scope: OverRepScope) -> Self {
        let mut card_prefix = Vec::with_capacity(space.n_attrs() + 1);
        let mut acc = 0u32;
        card_prefix.push(0);
        for a in space.attr_ids() {
            acc += u32::try_from(space.card(a)).expect("dictionary cap keeps cardinality in u32");
            card_prefix.push(acc);
        }
        UpperEngine {
            index,
            space,
            tau_s,
            scope,
            arena: UpperArena::default(),
            counts: Vec::new(),
            open: Vec::new(),
            qualified: Vec::new(),
            card_prefix,
            maximal: FxHashSet::default(),
            stats: SearchStats::default(),
            prefix_recounts: 0,
            scratch_stack: Vec::new(),
            scratch_codes: Vec::new(),
        }
    }

    /// An engine over a pre-existing arena (no run state yet): the replay
    /// entry point. The arena is moved in, not cloned, and handed back by
    /// [`UpperEngine::into_parts`].
    fn with_arena(
        index: &'a I,
        space: &'a PatternSpace,
        tau_s: usize,
        scope: OverRepScope,
        arena: UpperArena,
    ) -> Self {
        let mut engine = UpperEngine::new(index, space, tau_s, scope);
        engine.counts = vec![NOT_LIVE; arena.nodes.len()];
        engine.open = vec![false; arena.nodes.len()];
        engine.qualified = vec![false; arena.nodes.len()];
        engine.arena = arena;
        engine
    }

    /// Tears the engine down, returning the (possibly grown) arena to its
    /// store along with the run's instrumentation.
    fn into_parts(self) -> (UpperArena, SearchStats, u64) {
        (self.arena, self.stats, self.prefix_recounts)
    }

    /// Evaluates a fresh pattern (one fused, zero-allocation bitmap scan),
    /// interns the node in the arena, and classifies it under `(k, u)`.
    fn eval_new(&mut self, pattern: Pattern, k: usize, u: usize) -> u32 {
        let (sd, count) = self.index.counts(&pattern, k);
        self.stats.nodes_evaluated += 1;
        let pruned = sd < self.tau_s;
        let id = u32::try_from(self.arena.nodes.len()).expect("node ids fit u32");
        self.arena.nodes.push(UpperNodeMeta {
            pattern,
            expanded: false,
            children: Vec::new(),
        });
        self.arena.pruned.push(pruned);
        // Row counts are bounded by n, which fits TupleId (u32).
        self.counts
            .push(u32::try_from(count).expect("row counts fit TupleId"));
        self.open.push(false);
        self.qualified.push(!pruned && count > u);
        id
    }

    /// Brings a stored node into the current run: the stored pruned
    /// verdict is reused and only the top-`k` prefix is recounted (a
    /// truncated scan that never touches blocks past `k`). Idempotent —
    /// an already-live node is left untouched.
    fn activate(&mut self, id: u32, k: usize, u: usize) {
        if self.counts[id as usize] != NOT_LIVE {
            return;
        }
        if self.arena.pruned[id as usize] {
            // Live marker only; counts of pruned nodes are never read.
            self.counts[id as usize] = 0;
            return;
        }
        let count = self
            .index
            .prefix_count(&self.arena.nodes[id as usize].pattern, k);
        self.stats.nodes_evaluated += 1;
        self.prefix_recounts += 1;
        self.counts[id as usize] = u32::try_from(count).expect("row counts fit TupleId");
        self.qualified[id as usize] = count > u;
    }

    /// Finds the live node for sorted `terms` by walking the child
    /// arithmetic from the root, or `None` if the path leaves the live
    /// closure. Every pattern whose proper tree prefixes all qualify is
    /// reachable (qualifying nodes are always open).
    fn lookup(&self, terms: &[(AttrId, ValueCode)]) -> Option<u32> {
        let (&(a0, v0), rest) = terms.split_first()?;
        let mut id =
            self.arena.root_children[self.card_prefix[usize::from(a0)] as usize + usize::from(v0)];
        let mut ma = a0;
        for &(a, v) in rest {
            if !self.open[id as usize] {
                return None;
            }
            let base = self.card_prefix[usize::from(ma) + 1];
            id = self.arena.nodes[id as usize].children
                [(self.card_prefix[usize::from(a)] - base) as usize + usize::from(v)];
            ma = a;
        }
        Some(id)
    }

    /// Phase 1 of a step: bump the count of every live node the newly
    /// ranked tuple satisfies (a connected subtree reachable from the
    /// root). With `fresh = Some(..)` the qualification flag is updated
    /// in place and nodes that flip qualifying are collected; with `None`
    /// only counts move (a bound step reclassifies every flag afterwards).
    fn walk_counts(&mut self, k: usize, u: usize, mut fresh: Option<&mut Vec<u32>>) {
        let t_pos = k - 1;
        let m = self.space.n_attrs() as AttrId;
        // Hoist the tuple's value codes into one contiguous buffer: the
        // inner loop below reads a code per remaining attribute for every
        // open node, and `code_at` is a per-column indirection. Both
        // buffers are engine-owned scratch, so steady-state steps are
        // allocation-free.
        let mut codes = std::mem::take(&mut self.scratch_codes);
        codes.clear();
        codes.extend((0..m).map(|a| self.index.code_at(t_pos, a)));
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        for a in 0..m {
            let idx =
                self.card_prefix[usize::from(a)] as usize + usize::from(codes[usize::from(a)]);
            stack.push(self.arena.root_children[idx]);
        }
        while let Some(id) = stack.pop() {
            if self.arena.pruned[id as usize] {
                continue; // counts of pruned nodes are never read
            }
            self.counts[id as usize] += 1;
            self.stats.nodes_touched += 1;
            if let Some(list) = fresh.as_deref_mut() {
                if !self.qualified[id as usize] && (self.counts[id as usize] as usize) > u {
                    self.qualified[id as usize] = true;
                    list.push(id);
                }
            }
            if self.open[id as usize] {
                let start = self.arena.nodes[id as usize]
                    .pattern
                    .max_attr()
                    .map_or(0, |a| a + 1);
                let base = self.card_prefix[usize::from(start)];
                for a in start..m {
                    let idx = (self.card_prefix[usize::from(a)] - base) as usize
                        + usize::from(codes[usize::from(a)]);
                    stack.push(self.arena.nodes[id as usize].children[idx]);
                }
            }
        }
        self.scratch_codes = codes;
        self.scratch_stack = stack;
    }

    /// Phase 2: repair the tree closure. Every node in `fresh` (newly
    /// qualifying) is opened; stored children re-activate with prefix
    /// recounts, never-expanded nodes generate (and fully evaluate) their
    /// children fresh. Children that qualify under `(k, u)` join the
    /// worklist, so the closure grows to cover the whole new qualifying
    /// region.
    fn cascade(
        &mut self,
        fresh: &mut Vec<u32>,
        k: usize,
        u: usize,
        guard: &mut DeadlineGuard,
    ) -> bool {
        let m = self.space.n_attrs() as AttrId;
        let mut i = 0;
        while i < fresh.len() {
            if guard.expired() {
                return false;
            }
            let id = fresh[i];
            i += 1;
            if self.open[id as usize] {
                // Re-qualifying after a bound step: children already live
                // and walked; their own flips were collected independently.
                continue;
            }
            if self.arena.nodes[id as usize].expanded {
                for ci in 0..self.arena.nodes[id as usize].children.len() {
                    let c = self.arena.nodes[id as usize].children[ci];
                    self.activate(c, k, u);
                    if self.qualified[c as usize] {
                        fresh.push(c);
                    }
                }
            } else {
                let (start, pattern) = {
                    let nd = &self.arena.nodes[id as usize];
                    (
                        nd.pattern.max_attr().map_or(0, |a| a + 1),
                        nd.pattern.clone(),
                    )
                };
                let mut children = Vec::new();
                for a in start..m {
                    for v in self.space.value_codes(a) {
                        let c = self.eval_new(pattern.child(a, v), k, u);
                        if self.qualified[c as usize] {
                            fresh.push(c);
                        }
                        children.push(c);
                    }
                }
                let nd = &mut self.arena.nodes[id as usize];
                nd.children = children;
                nd.expanded = true;
            }
            self.open[id as usize] = true;
        }
        true
    }

    /// Whether any one-term extension of `id` qualifies under the current
    /// bound `u` — entirely from live state, with **zero** fresh pattern
    /// evaluations: a `lookup` miss means some tree prefix of the
    /// extension is unopened, i.e. non-qualifying, and qualification is
    /// subset-closed, so the extension cannot qualify either. Returns
    /// `None` on deadline expiry.
    fn probe_maximal(&mut self, id: u32, u: usize, guard: &mut DeadlineGuard) -> Option<bool> {
        let pattern = self.arena.nodes[id as usize].pattern.clone();
        let m = self.space.n_attrs() as AttrId;
        let mut ext: Vec<(AttrId, ValueCode)> = Vec::with_capacity(pattern.len() + 1);
        for a in 0..m {
            if pattern.value_of(a).is_some() {
                continue;
            }
            for v in self.space.value_codes(a) {
                if guard.expired() {
                    return None;
                }
                ext.clear();
                ext.extend_from_slice(pattern.terms());
                ext.push((a, v));
                ext.sort_unstable();
                let qualifies = match self.lookup(&ext) {
                    Some(eid) => {
                        self.stats.nodes_touched += 1;
                        debug_assert!(self.counts[eid as usize] != NOT_LIVE);
                        !self.arena.pruned[eid as usize] && (self.counts[eid as usize] as usize) > u
                    }
                    None => false,
                };
                if qualifies {
                    return Some(false);
                }
            }
        }
        Some(true)
    }

    /// The sorted one-term-deletion subsets of a stored node's pattern
    /// (empty for single-term patterns, whose only subset is the
    /// never-reported empty pattern), resolved to node ids. The subsets of
    /// a pattern that qualifies — or qualified before this step — are
    /// always live and reachable, hence the `expect`.
    fn one_term_subset_ids(&self, id: u32) -> Vec<u32> {
        let pattern = &self.arena.nodes[id as usize].pattern;
        if pattern.len() < 2 {
            return Vec::new();
        }
        let terms = pattern.terms();
        let mut sub: Vec<(AttrId, ValueCode)> = Vec::with_capacity(terms.len() - 1);
        (0..terms.len())
            .map(|drop_i| {
                sub.clear();
                sub.extend(
                    terms
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != drop_i)
                        .map(|(_, &t)| t),
                );
                self.lookup(&sub)
                    // lint:allow(panic-reachability) -- closure invariant: every one-term subset of a stored pattern is itself stored; the expect is the loud invariant check
                    .expect("one-term subsets of a qualifying pattern are stored")
            })
            .collect()
    }

    /// Applies the frontier delta once a step has finalized every
    /// qualification flag and repaired the closure. `fresh` holds the
    /// nodes that started qualifying, `lost` those that stopped (possible
    /// only on bound steps).
    ///
    /// Correctness: a pattern's frontier membership changes only when (a)
    /// it flips qualification itself, or (b) a one-term extension flips —
    /// and every extension that flips is a live node in `fresh`/`lost`
    /// (its tree prefixes are subsets, hence qualify(ed), hence are
    /// expanded). Exits are therefore the lost nodes plus the one-term
    /// subsets of fresh nodes; entry candidates are the fresh nodes plus
    /// the still-qualifying one-term subsets of lost nodes (the lost
    /// extension may have been their last qualifying blocker). Only the
    /// entry candidates are probed — never the whole qualifying set.
    fn apply_frontier_delta(
        &mut self,
        fresh: &[u32],
        lost: &[u32],
        u: usize,
        guard: &mut DeadlineGuard,
    ) -> bool {
        for &id in lost {
            self.maximal.remove(&id);
        }
        for &id in fresh {
            for sid in self.one_term_subset_ids(id) {
                self.maximal.remove(&sid);
            }
        }
        let mut cands: Vec<u32> = fresh.to_vec();
        let mut seen: FxHashSet<u32> = fresh.iter().copied().collect();
        for &id in lost {
            for sid in self.one_term_subset_ids(id) {
                if self.qualified[sid as usize] && seen.insert(sid) {
                    cands.push(sid);
                }
            }
        }
        for id in cands {
            // A candidate already in the frontier kept its verdict: any
            // newly qualifying extension would have evicted it above.
            if !self.qualified[id as usize] || self.maximal.contains(&id) {
                continue;
            }
            match self.probe_maximal(id, u, guard) {
                None => return false,
                Some(true) => {
                    self.maximal.insert(id);
                }
                Some(false) => {}
            }
        }
        true
    }

    /// Initial build at the first `k`: bring the root level live (fresh
    /// evaluations only on a virgin arena — otherwise prefix recounts),
    /// grow the closure over the qualifying set, compute the frontier
    /// (every qualifying node is "fresh", so the delta probes each
    /// exactly once).
    fn build(&mut self, k: usize, u: usize, guard: &mut DeadlineGuard) -> bool {
        if guard.expired() {
            return false;
        }
        self.stats.full_searches += 1;
        let mut fresh = Vec::new();
        if self.arena.root_children.is_empty() {
            let m = self.space.n_attrs() as AttrId;
            for a in 0..m {
                for v in self.space.value_codes(a) {
                    let id = self.eval_new(Pattern::single(a, v), k, u);
                    self.arena.root_children.push(id);
                    if self.qualified[id as usize] {
                        fresh.push(id);
                    }
                }
            }
        } else {
            for i in 0..self.arena.root_children.len() {
                let id = self.arena.root_children[i];
                self.activate(id, k, u);
                if self.qualified[id as usize] {
                    fresh.push(id);
                }
            }
        }
        if self.scope == OverRepScope::MostGeneral {
            return true;
        }
        self.cascade(&mut fresh, k, u, guard) && self.apply_frontier_delta(&fresh, &[], u, guard)
    }

    /// Clears the run state for a fresh build. The arena is kept: the
    /// follow-up [`UpperEngine::build`] re-activates the stored structure
    /// with prefix recounts instead of re-evaluating it.
    fn reset(&mut self) {
        self.counts.clear();
        self.counts.resize(self.arena.nodes.len(), NOT_LIVE);
        self.open.clear();
        self.open.resize(self.arena.nodes.len(), false);
        self.qualified.clear();
        self.qualified.resize(self.arena.nodes.len(), false);
        self.maximal.clear();
    }

    /// Incremental step `k−1 → k` with an unchanged bound: walk the new
    /// tuple's subtree, repair the closure, and apply the frontier delta.
    /// With `U` fixed, counts only grow, so no node can stop qualifying —
    /// `lost` is empty.
    fn step(&mut self, k: usize, u: usize, guard: &mut DeadlineGuard) -> bool {
        if guard.expired() {
            return false;
        }
        let mut fresh = Vec::new();
        self.walk_counts(k, u, Some(&mut fresh));
        if self.scope == OverRepScope::MostGeneral {
            return true;
        }
        self.cascade(&mut fresh, k, u, guard) && self.apply_frontier_delta(&fresh, &[], u, guard)
    }

    /// Step across a bound change `U_{k-1} ≠ U_k`: bump counts, then
    /// reclassify the entire live store in one pass (no fresh
    /// evaluations), repair the closure where the qualifying set grew, and
    /// apply the frontier delta with both gains and losses. Handles
    /// increasing *and* decreasing bounds; frontier probes stay confined
    /// to the flipped region, so even a bound that changes at every `k`
    /// ([`Bounds::LinearFraction`]) keeps the engine incremental.
    fn bound_step(&mut self, k: usize, u: usize, guard: &mut DeadlineGuard) -> bool {
        if guard.expired() {
            return false;
        }
        self.walk_counts(k, u, None);
        self.reclassify_all(k, u, guard)
    }

    /// Reclassifies every live node under `(k, u)` after counts moved in
    /// bulk (a bound step, or a checkpoint repair), repairs the closure
    /// where the qualifying set grew, and applies the frontier delta with
    /// both gains and losses. Arena nodes that are not live this run are
    /// skipped.
    fn reclassify_all(&mut self, k: usize, u: usize, guard: &mut DeadlineGuard) -> bool {
        let mut fresh = Vec::new();
        let mut lost = Vec::new();
        for id in 0..u32::try_from(self.arena.nodes.len()).expect("node ids fit u32") {
            let idx = id as usize;
            if self.arena.pruned[idx] || self.counts[idx] == NOT_LIVE {
                continue;
            }
            self.stats.nodes_touched += 1;
            let q = (self.counts[idx] as usize) > u;
            if q != self.qualified[idx] {
                self.qualified[idx] = q;
                if q {
                    fresh.push(id);
                } else {
                    lost.push(id);
                }
            }
        }
        if self.scope == OverRepScope::MostGeneral {
            return true;
        }
        self.cascade(&mut fresh, k, u, guard) && self.apply_frontier_delta(&fresh, &lost, u, guard)
    }

    /// Adds or removes one tuple's worth of counts: the subtree walk of
    /// [`UpperEngine::walk_counts`] with a signed delta and no flag
    /// maintenance (a repair reclassifies the whole store afterwards).
    /// `t_pos` is any rank position whose index codes are the tuple's.
    fn walk_delta(&mut self, t_pos: usize, up: bool) {
        let m = self.space.n_attrs() as AttrId;
        let mut codes = std::mem::take(&mut self.scratch_codes);
        codes.clear();
        codes.extend((0..m).map(|a| self.index.code_at(t_pos, a)));
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        for a in 0..m {
            let idx =
                self.card_prefix[usize::from(a)] as usize + usize::from(codes[usize::from(a)]);
            stack.push(self.arena.root_children[idx]);
        }
        while let Some(id) = stack.pop() {
            if self.arena.pruned[id as usize] {
                continue; // counts of pruned nodes are never read
            }
            if up {
                self.counts[id as usize] += 1;
            } else {
                self.counts[id as usize] -= 1;
            }
            self.stats.nodes_touched += 1;
            if self.open[id as usize] {
                let start = self.arena.nodes[id as usize]
                    .pattern
                    .max_attr()
                    .map_or(0, |a| a + 1);
                let base = self.card_prefix[usize::from(start)];
                for a in start..m {
                    let idx = (self.card_prefix[usize::from(a)] - base) as usize
                        + usize::from(codes[usize::from(a)]);
                    stack.push(self.arena.nodes[id as usize].children[idx]);
                }
            }
        }
        self.scratch_codes = codes;
        self.scratch_stack = stack;
    }

    /// Repairs this state (positioned at `k`, bound `u = U_k`) after a
    /// pure reorder changed its top-`k` **set**: subtract the leaving
    /// tuples, add the entering ones, then reclassify the whole store —
    /// the bound-step machinery, which already handles flips in both
    /// directions. Sound for reorders only: `s_D`, `n` and the pruned
    /// flags are untouched (insertions void the store instead).
    fn repair(
        &mut self,
        k: usize,
        u: usize,
        entering: &[usize],
        leaving: &[usize],
        guard: &mut DeadlineGuard,
    ) -> bool {
        for &pos in leaving {
            self.walk_delta(pos, false);
        }
        for &pos in entering {
            self.walk_delta(pos, true);
        }
        self.reclassify_all(k, u, guard)
    }

    /// One incremental step `k−1 → k` under `upper`: a store rescan when
    /// the bound moved, a plain walk + closure repair otherwise. Shared
    /// by [`UpperStream`] and the checkpointed monitor replay.
    fn advance(&mut self, k: usize, upper: &Bounds, guard: &mut DeadlineGuard) -> bool {
        let u = upper.at(k);
        if u != upper.at(k - 1) {
            self.bound_step(k, u, guard)
        } else {
            self.step(k, u, guard)
        }
    }

    /// Copies the run state into a resumable [`UpperCheckpoint`] anchored
    /// at `k` — three flat-vector memcpys plus the frontier set; the
    /// arena (patterns, pruned verdicts, tree structure) is **not**
    /// cloned.
    fn to_checkpoint(&self, k: usize) -> UpperCheckpoint {
        UpperCheckpoint {
            k,
            counts: self.counts.clone(),
            open: self.open.clone(),
            qualified: self.qualified.clone(),
            maximal: self.maximal.clone(),
        }
    }

    /// Overwrites the run state from a stored checkpoint, positioning the
    /// engine at `cp.k`; the next [`UpperEngine::advance`] call must be
    /// for `cp.k + 1`. Nodes interned after the snapshot was taken
    /// restore as not-live.
    fn restore(&mut self, cp: &UpperCheckpoint) {
        self.counts.clear();
        self.counts.extend_from_slice(&cp.counts);
        self.counts.resize(self.arena.nodes.len(), NOT_LIVE);
        self.open.clear();
        self.open.extend_from_slice(&cp.open);
        self.open.resize(self.arena.nodes.len(), false);
        self.qualified.clear();
        self.qualified.extend_from_slice(&cp.qualified);
        self.qualified.resize(self.arena.nodes.len(), false);
        self.maximal = cp.maximal.clone();
    }

    /// The current result set for `k`, sorted canonically.
    fn snapshot(&self, k: usize) -> KResult {
        let mut patterns: Vec<Pattern> = match self.scope {
            OverRepScope::MostSpecific => self
                .maximal
                .iter()
                .map(|&id| self.arena.nodes[id as usize].pattern.clone())
                .collect(),
            OverRepScope::MostGeneral => self
                .arena
                .root_children
                .iter()
                .filter(|&&id| self.qualified[id as usize])
                .map(|&id| self.arena.nodes[id as usize].pattern.clone())
                .collect(),
        };
        patterns.sort_unstable();
        KResult { k, patterns }
    }
}

/// Lazy, resumable over-representation detection: yields the [`KResult`]
/// for each `k` on demand, maintaining the incremental engine between
/// pulls. Both [`crate::Audit::run`] and [`crate::Audit::run_streaming`]
/// drive this for `Engine::Optimized`.
pub(crate) struct UpperStream<'a, I: CountsProvider> {
    engine: UpperEngine<'a, I>,
    upper: Bounds,
    k_min: usize,
    k_max: usize,
    guard: DeadlineGuard,
    next_k: usize,
    failed: bool,
}

impl<'a, I: CountsProvider> UpperStream<'a, I> {
    pub(crate) fn new(
        index: &'a I,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        upper: Bounds,
        scope: OverRepScope,
    ) -> Self {
        debug_assert!(cfg.k_max <= index.n(), "k_max exceeds the ranked tuples");
        UpperStream {
            engine: UpperEngine::new(index, space, cfg.tau_s, scope),
            upper,
            k_min: cfg.k_min,
            k_max: cfg.k_max,
            guard: DeadlineGuard::new(cfg.deadline),
            next_k: cfg.k_min,
            failed: false,
        }
    }

    /// Instrumentation accumulated so far, with up-to-date wall clock and
    /// timeout flag.
    pub(crate) fn stats(&self) -> SearchStats {
        let mut stats = self.engine.stats.clone();
        stats.elapsed = self.guard.elapsed();
        stats.timed_out = self.failed;
        stats
    }

    /// Whether the stream stopped early on the deadline.
    pub(crate) fn timed_out(&self) -> bool {
        self.failed
    }
}

impl<I: CountsProvider> Iterator for UpperStream<'_, I> {
    type Item = KResult;

    fn next(&mut self) -> Option<KResult> {
        if self.failed || self.next_k > self.k_max {
            return None;
        }
        let k = self.next_k;
        let ok = if k == self.k_min {
            self.engine.build(k, self.upper.at(k), &mut self.guard)
        } else {
            self.engine.advance(k, &self.upper, &mut self.guard)
        };
        if !ok {
            self.failed = true;
            return None;
        }
        self.next_k += 1;
        Some(self.engine.snapshot(k))
    }
}

/// A resumable snapshot of the upper engine's **run state** — per-node
/// counts, the open frontier, the qualification flags and the maximal
/// frontier — anchored at a specific `k`. The node structure itself
/// (patterns, pruned verdicts, tree shape) lives in the [`UpperArena`]
/// shared by every snapshot, so taking one is a counts-plus-frontier
/// memcpy, not a deep clone of the node store. Same validity contract as
/// the lower engine's `LowerCheckpoint`: exact outside a reordered
/// position span (and at every `k` no row's net movement crossed — the
/// fact segmented replay exploits), void after an insertion.
#[derive(Debug, Clone)]
pub(crate) struct UpperCheckpoint {
    /// The `k` whose state this snapshot holds.
    pub(crate) k: usize,
    counts: Vec<u32>,
    open: Vec<bool>,
    qualified: Vec<bool>,
    maximal: FxHashSet<u32>,
}

impl UpperCheckpoint {
    /// Number of node slots snapshotted (the checkpoint's memory
    /// footprint driver — one `u32` + two `bool`s each, not a node
    /// clone).
    pub(crate) fn stored_nodes(&self) -> usize {
        self.counts.len()
    }
}

/// Grid-snapshot maintenance for the upper store — the shared policy
/// lives in [`crate::audit::maintain_grid_snapshot`]. Returns whether a
/// snapshot was written (inserted or overwritten) at `k`.
fn maybe_checkpoint<I: CountsProvider>(
    store: &mut Vec<UpperCheckpoint>,
    engine: &UpperEngine<'_, I>,
    k: usize,
    k_min: usize,
    cadence: usize,
    heal_cutoff: Option<usize>,
) -> bool {
    crate::audit::maintain_grid_snapshot(
        store,
        k,
        k_min,
        cadence,
        heal_cutoff,
        |cp| cp.k,
        || engine.to_checkpoint(k),
    )
}

/// Checkpointed execution of the over-representation side over the given
/// `k` **segments** (sorted, disjoint) — the upper half of the monitor's
/// delta re-audit.
///
/// For each segment the replay seeks to the latest stored checkpoint at
/// or below the segment start (or keeps stepping from the previous
/// segment's end when that is at least as cheap) and replays forward
/// (bound changes are store rescans, never rebuilds, so even
/// per-`k`-changing [`Bounds::LinearFraction`] bounds replay
/// incrementally). When the edit hull swallowed a seek checkpoint
/// (`cp.k > reorder.lo`), it is **repaired** in place from the top-`k`
/// set diff rather than discarded — but only when that diff is non-empty:
/// checkpoints in the gaps *between* segments are exact by construction
/// (no row's net movement crossed their `k`), and checkpoints already
/// healed by an earlier segment of this call hold the new state, so both
/// are used as-is. A pure reorder therefore costs **zero** from-scratch
/// builds; only an empty store (initial audit, or after an insertion
/// voided it) pays a build at `k_min` — on the shared arena, so even cold
/// builds after the first run on prefix recounts. Replayed grid `k`s
/// rewrite their snapshots, keeping the whole store valid after every
/// batch. Output-equivalent to [`upper_incremental`] on the replayed `k`
/// values — asserted by the differential sweeps.
#[allow(clippy::too_many_arguments)]
pub(crate) fn upper_replay<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    upper: &Bounds,
    scope: OverRepScope,
    spans: &[(usize, usize)],
    reorder: Option<(&crate::audit::ReorderSpec, &[rankfair_data::TupleId])>,
    store: &mut UpperStore,
    cadence: usize,
    counters: &mut ReplayCounters,
) -> (Vec<KResult>, SearchStats) {
    debug_assert!(cadence >= 1);
    debug_assert!(spans
        .iter()
        .all(|&(lo, hi)| cfg.k_min <= lo && lo <= hi && hi <= cfg.k_max));
    debug_assert!(spans.windows(2).all(|w| w[0].1 < w[1].0));
    // No deadline: monitors reject deadlines at construction, so a replay
    // can never truncate mid-span.
    let mut guard = DeadlineGuard::new(None);
    let mut per_k = Vec::with_capacity(spans.iter().map(|&(lo, hi)| hi - lo + 1).sum());
    counters.segments += spans.len() as u64;
    let mut engine = UpperEngine::with_arena(
        index,
        space,
        cfg.tau_s,
        scope,
        std::mem::take(&mut store.arena),
    );
    // Grid ks whose snapshot was rewritten by this call: those hold the
    // *new* state, so a later segment seeking to one must not repair it.
    let mut healed: FxHashSet<usize> = FxHashSet::default();
    let mut positioned: Option<usize> = None;
    for &(k_lo, k_hi) in spans {
        // Reorder replays re-clone at most the grid snapshots nearest each
        // segment start; see `maybe_checkpoint`.
        let heal_cutoff = reorder.is_some().then_some(k_lo + cadence);
        let seek = store.snaps.iter().rposition(|cp| cp.k <= k_lo);
        let mut k_cur = match (positioned, seek) {
            // Stepping on from the previous segment's end is at least as
            // cheap as restoring a snapshot at or below it.
            (Some(p), seek) if p <= k_lo && seek.is_none_or(|i| store.snaps[i].k <= p) => p,
            (_, Some(i)) => {
                counters.seeks += 1;
                let cp_k = store.snaps[i].k;
                engine.restore(&store.snaps[i]);
                if let Some((spec, new_order)) = reorder {
                    if cp_k > spec.lo && !healed.contains(&cp_k) {
                        let (entering, leaving) =
                            crate::audit::top_k_diff(cp_k, spec.lo, &spec.old_order, new_order);
                        if !(entering.is_empty() && leaving.is_empty()) {
                            engine.repair(cp_k, upper.at(cp_k), &entering, &leaving, &mut guard);
                            counters.repairs += 1;
                            store.snaps[i] = engine.to_checkpoint(cp_k);
                            healed.insert(cp_k);
                        }
                    }
                }
                cp_k
            }
            _ => {
                counters.cold_builds += 1;
                counters.replayed_steps += 1;
                engine.reset();
                engine.build(cfg.k_min, upper.at(cfg.k_min), &mut guard);
                if maybe_checkpoint(
                    &mut store.snaps,
                    &engine,
                    cfg.k_min,
                    cfg.k_min,
                    cadence,
                    None,
                ) {
                    healed.insert(cfg.k_min);
                }
                cfg.k_min
            }
        };
        if k_cur >= k_lo {
            per_k.push(engine.snapshot(k_cur));
        }
        while k_cur < k_hi {
            k_cur += 1;
            engine.advance(k_cur, upper, &mut guard);
            counters.replayed_steps += 1;
            if k_cur >= k_lo {
                per_k.push(engine.snapshot(k_cur));
            }
            if maybe_checkpoint(
                &mut store.snaps,
                &engine,
                k_cur,
                cfg.k_min,
                cadence,
                heal_cutoff,
            ) {
                healed.insert(k_cur);
            }
        }
        positioned = Some(k_cur);
    }
    let (arena, mut stats, prefix_recounts) = engine.into_parts();
    store.arena = arena;
    counters.prefix_recounts += prefix_recounts;
    stats.elapsed = guard.elapsed();
    (per_k, stats)
}

/// Batch driver: runs the incremental engine over the whole `k` range.
pub(crate) fn upper_incremental<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    upper: &Bounds,
    scope: OverRepScope,
) -> (Vec<KResult>, SearchStats) {
    let mut stream = UpperStream::new(index, space, cfg, upper.clone(), scope);
    let per_k: Vec<KResult> = stream.by_ref().collect();
    (per_k, stream.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::RankedIndex;
    use crate::upper::{upper_most_general_single_k, upper_most_specific_single_k};
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn fig1() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    #[test]
    fn incremental_matches_per_k_search_on_fig1() {
        let (space, index) = fig1();
        for tau in [1, 2, 4] {
            for u in [0, 1, 2, 4] {
                for scope in [OverRepScope::MostSpecific, OverRepScope::MostGeneral] {
                    let cfg = DetectConfig::new(tau, 2, 16);
                    let (per_k, _) =
                        upper_incremental(&index, &space, &cfg, &Bounds::constant(u), scope);
                    assert_eq!(per_k.len(), 15);
                    for kr in &per_k {
                        let mut stats = SearchStats::default();
                        let want = match scope {
                            OverRepScope::MostSpecific => upper_most_specific_single_k(
                                &index, &space, tau, kr.k, u, &mut stats,
                            ),
                            OverRepScope::MostGeneral => upper_most_general_single_k(
                                &index, &space, tau, kr.k, u, &mut stats,
                            ),
                        };
                        assert_eq!(kr.patterns, want, "tau={tau} u={u} k={} {scope:?}", kr.k);
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_matches_per_k_search_across_bound_steps() {
        let (space, index) = fig1();
        // Includes an increasing and a decreasing step, exercising the
        // store-rescan path in both directions.
        let bounds = Bounds::steps(vec![(0, 1), (6, 3), (11, 2)]);
        let cfg = DetectConfig::new(2, 2, 16);
        let (per_k, _) =
            upper_incremental(&index, &space, &cfg, &bounds, OverRepScope::MostSpecific);
        for kr in &per_k {
            let mut stats = SearchStats::default();
            let want =
                upper_most_specific_single_k(&index, &space, 2, kr.k, bounds.at(kr.k), &mut stats);
            assert_eq!(kr.patterns, want, "k={}", kr.k);
        }
    }

    #[test]
    fn incremental_evaluates_fewer_nodes_than_per_k_rescan() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let (_, inc_stats) = upper_incremental(
            &index,
            &space,
            &cfg,
            &Bounds::constant(2),
            OverRepScope::MostSpecific,
        );
        let mut rescan = SearchStats::default();
        for k in 2..=16 {
            upper_most_specific_single_k(&index, &space, 2, k, 2, &mut rescan);
        }
        assert!(
            inc_stats.nodes_evaluated < rescan.nodes_evaluated,
            "incremental {} >= rescan {}",
            inc_stats.nodes_evaluated,
            rescan.nodes_evaluated
        );
    }

    #[test]
    fn upper_replay_matches_batch_and_seeks_checkpoints() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        // A per-k-changing bound and a stepped one, both scopes.
        for upper in [
            Bounds::LinearFraction(0.4),
            Bounds::steps(vec![(0, 1), (6, 3), (11, 2)]),
        ] {
            for scope in [OverRepScope::MostSpecific, OverRepScope::MostGeneral] {
                let (want, _) = upper_incremental(&index, &space, &cfg, &upper, scope);
                for cadence in [1usize, 4, 8] {
                    let mut store = UpperStore::default();
                    let mut counters = ReplayCounters::default();
                    let (full, _) = upper_replay(
                        &index,
                        &space,
                        &cfg,
                        &upper,
                        scope,
                        &[(2, 16)],
                        None,
                        &mut store,
                        cadence,
                        &mut counters,
                    );
                    assert_eq!(full, want, "{upper:?} {scope:?} cadence {cadence}");
                    assert_eq!(counters.cold_builds, 1);
                    assert!(store.snaps.windows(2).all(|w| w[0].k < w[1].k));
                    let mut counters = ReplayCounters::default();
                    let (sub, _) = upper_replay(
                        &index,
                        &space,
                        &cfg,
                        &upper,
                        scope,
                        &[(10, 14)],
                        None,
                        &mut store,
                        cadence,
                        &mut counters,
                    );
                    assert_eq!(
                        sub[..],
                        want[8..=12],
                        "{upper:?} {scope:?} cadence {cadence}"
                    );
                    assert_eq!(counters.seeks, 1);
                    assert_eq!(counters.cold_builds, 0);
                }
            }
        }
    }

    #[test]
    fn upper_replay_segmented_spans_match_batch() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let upper = Bounds::LinearFraction(0.4);
        for scope in [OverRepScope::MostSpecific, OverRepScope::MostGeneral] {
            let (want, _) = upper_incremental(&index, &space, &cfg, &upper, scope);
            for cadence in [1usize, 3, 8] {
                let mut store = UpperStore::default();
                let mut counters = ReplayCounters::default();
                let (full, _) = upper_replay(
                    &index,
                    &space,
                    &cfg,
                    &upper,
                    scope,
                    &[(2, 16)],
                    None,
                    &mut store,
                    cadence,
                    &mut counters,
                );
                assert_eq!(full, want);
                // Two disjoint segments of the same range replay only the
                // four spanned ks (plus catch-up), and match the batch run
                // value-for-value.
                let mut counters = ReplayCounters::default();
                let (got, _) = upper_replay(
                    &index,
                    &space,
                    &cfg,
                    &upper,
                    scope,
                    &[(4, 5), (12, 13)],
                    None,
                    &mut store,
                    cadence,
                    &mut counters,
                );
                let got_ks: Vec<usize> = got.iter().map(|r| r.k).collect();
                assert_eq!(got_ks, vec![4, 5, 12, 13], "{scope:?} cadence {cadence}");
                assert_eq!(got[..2], want[2..=3], "{scope:?} cadence {cadence}");
                assert_eq!(got[2..4], want[10..=11], "{scope:?} cadence {cadence}");
                assert_eq!(counters.segments, 2);
                assert_eq!(counters.cold_builds, 0);
                assert!(
                    (1..=2).contains(&counters.seeks),
                    "{scope:?} cadence {cadence}: seeks {}",
                    counters.seeks
                );
            }
        }
    }

    #[test]
    fn zero_deadline_truncates_and_flags() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(1, 2, 16).with_deadline(std::time::Duration::ZERO);
        let (per_k, stats) = upper_incremental(
            &index,
            &space,
            &cfg,
            &Bounds::constant(1),
            OverRepScope::MostSpecific,
        );
        assert!(per_k.is_empty());
        assert!(stats.timed_out);
    }
}
