//! Sharded counting: rows partitioned across shard-local ranked indexes,
//! pattern counts merged additively.
//!
//! Both quantities the detection engines consume are **additive over
//! disjoint row partitions**: `s_D(p)` is a sum of per-partition match
//! counts, and — because the partition is by *contiguous rank blocks* —
//! the global top-`k` prefix splits into per-shard prefixes, so
//! `s_Rk(p)` is a sum too. Concretely, for shard `s` spanning global rank
//! positions `[lo_s, hi_s)`:
//!
//! ```text
//! counts(p, k) = Σ_s  shard_s.counts(p, clamp(k, lo_s, hi_s) − lo_s)
//! ```
//!
//! This is the whole trick: each shard is an ordinary [`RankedIndex`]
//! over its block of the rank order, [`ShardedIndex::counts`] reduces the
//! per-shard fused counts with two additions per shard, and the engines
//! run unchanged behind the [`CountsProvider`] surface. Per-shard
//! counting fans out over scoped threads when the universe is large
//! enough for the scan to dominate the spawn cost.

use rankfair_data::{Dataset, TupleId, ValueCode};
use rankfair_rank::Ranking;

use crate::pattern::Pattern;
use crate::space::{AttrId, CountsProvider, PatternSpace, RankedIndex};

/// Rows partitioned into contiguous rank blocks, one [`RankedIndex`] per
/// block, with `counts(p, k)` an additive merge of the per-shard counts.
///
/// Built by [`ShardedIndex::build`]; drop-in for [`RankedIndex`] anywhere
/// a [`CountsProvider`] is accepted (every engine, the audit tasks, the
/// report enrichment). A single-shard instance degenerates to exactly the
/// unsharded index.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    n: usize,
    /// `boundaries[s]..boundaries[s+1]` is shard `s`'s global rank span;
    /// `boundaries[0] == 0`, `boundaries[last] == n`. Spans may be empty
    /// when there are more shards than rows.
    boundaries: Vec<usize>,
    shards: Vec<RankedIndex>,
    /// Fan counting out over scoped threads: decided once at build time —
    /// more than one non-empty shard, a universe large enough that the
    /// per-shard scan dominates thread spawn cost, and more than one core.
    parallel: bool,
}

/// Split `n` rank positions into `shards` contiguous blocks whose sizes
/// differ by at most one (the first `n % shards` blocks get the extra
/// row). Returns the `shards + 1` block boundaries.
fn shard_boundaries(n: usize, shards: usize) -> Vec<usize> {
    let base = n / shards;
    let rem = n % shards;
    let mut boundaries = Vec::with_capacity(shards + 1);
    let mut at = 0;
    boundaries.push(at);
    for s in 0..shards {
        at += base + usize::from(s < rem);
        boundaries.push(at);
    }
    boundaries
}

impl ShardedIndex {
    /// Universe size below which per-shard counting stays sequential: a
    /// sub-64Ki-row scan finishes in the time a thread spawn costs.
    pub const PARALLEL_MIN_ROWS: usize = 1 << 16;

    /// Builds `shards` shard-local indexes over contiguous blocks of the
    /// rank order. Shard sizes differ by at most one row; `shards` may
    /// exceed the row count, leaving trailing shards empty.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the ranking length differs from the
    /// dataset.
    pub fn build(ds: &Dataset, space: &PatternSpace, ranking: &Ranking, shards: usize) -> Self {
        assert_eq!(
            ranking.len(),
            ds.n_rows(),
            "ranking must cover every dataset row"
        );
        Self::build_from_order(ds, space, ranking.order(), shards)
    }

    /// [`ShardedIndex::build`] over a raw rank order (the monitor-free
    /// path used by tests and benches).
    pub fn build_from_order(
        ds: &Dataset,
        space: &PatternSpace,
        order: &[TupleId],
        shards: usize,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        let n = order.len();
        let boundaries = shard_boundaries(n, shards);
        let spans: Vec<(usize, usize)> = boundaries.windows(2).map(|w| (w[0], w[1])).collect();
        let many_cores = std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
        let build_parallel = shards > 1 && many_cores && n >= Self::PARALLEL_MIN_ROWS;
        let shard_indexes: Vec<RankedIndex> = if build_parallel {
            let mut slots: Vec<Option<RankedIndex>> = (0..shards).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (slot, &(lo, hi)) in slots.iter_mut().zip(&spans) {
                    scope.spawn(move || {
                        *slot = Some(RankedIndex::build_from_order(ds, space, &order[lo..hi]));
                    });
                }
            });
            // lint:allow(panic-reachability) -- thread::scope joins every worker before returning, so each slot was written; a panicked worker re-raises inside scope() first
            slots.into_iter().map(|s| s.expect("shard built")).collect()
        } else {
            spans
                .iter()
                .map(|&(lo, hi)| RankedIndex::build_from_order(ds, space, &order[lo..hi]))
                .collect()
        };
        let non_empty = spans.iter().filter(|&&(lo, hi)| hi > lo).count();
        ShardedIndex {
            n,
            boundaries,
            shards: shard_indexes,
            parallel: non_empty > 1 && many_cores && n >= Self::PARALLEL_MIN_ROWS,
        }
    }

    /// Number of tuples across all shards.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of shards (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard row counts.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.boundaries.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The global top-`k` prefix restricted to shard `s`: its length
    /// within the shard's span.
    fn local_k(&self, s: usize, k: usize) -> usize {
        k.clamp(self.boundaries[s], self.boundaries[s + 1]) - self.boundaries[s]
    }

    /// `(s_D(p), s_Rk(p))` as the additive merge of per-shard fused
    /// counts — the identity in the module docs. Fans out over scoped
    /// threads for large universes, one thread per non-empty shard.
    pub fn counts(&self, p: &Pattern, k: usize) -> (usize, usize) {
        if self.shards.len() == 1 {
            return self.shards[0].counts(p, k);
        }
        if self.parallel {
            let mut partials: Vec<(usize, usize)> = vec![(0, 0); self.shards.len()];
            std::thread::scope(|scope| {
                for (s, (shard, slot)) in self.shards.iter().zip(partials.iter_mut()).enumerate() {
                    if shard.n() == 0 {
                        continue;
                    }
                    let local_k = self.local_k(s, k);
                    scope.spawn(move || *slot = shard.counts(p, local_k));
                }
            });
            partials
                .into_iter()
                .fold((0, 0), |(sd, topk), (s_sd, s_topk)| {
                    (sd + s_sd, topk + s_topk)
                })
        } else {
            self.shards
                .iter()
                .enumerate()
                .fold((0, 0), |(sd, topk), (s, shard)| {
                    let (s_sd, s_topk) = shard.counts(p, self.local_k(s, k));
                    (sd + s_sd, topk + s_topk)
                })
        }
    }

    /// `s_D(p)` alone.
    pub fn size_in_data(&self, p: &Pattern) -> usize {
        self.counts(p, 0).0
    }

    /// `s_Rk(p)` alone: only the shards whose span overlaps the top-`k`
    /// prefix are consulted, each with a truncated prefix scan — shards
    /// entirely past `k` contribute nothing and are skipped outright.
    pub fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        self.shards
            .iter()
            .enumerate()
            .take_while(|&(s, _)| self.boundaries[s] < k)
            .map(|(s, shard)| shard.prefix_count(p, self.local_k(s, k)))
            .sum()
    }

    /// Value of `attr` for the tuple at **global** rank position `pos`:
    /// locates the owning shard by boundary search, then reads the
    /// shard-local position.
    pub fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode {
        // First boundary strictly above `pos`, minus one, is the owning
        // shard; repeated boundaries (empty shards) resolve past them.
        let s = self.boundaries.partition_point(|&b| b <= pos) - 1;
        self.shards[s].code_at(pos - self.boundaries[s], attr)
    }

    /// Whether the tuple at global rank position `pos` satisfies `p`.
    pub fn matches_at(&self, pos: usize, p: &Pattern) -> bool {
        p.matches(|a| self.code_at(pos, a))
    }
}

impl CountsProvider for ShardedIndex {
    fn n(&self) -> usize {
        ShardedIndex::n(self)
    }

    fn counts(&self, p: &Pattern, k: usize) -> (usize, usize) {
        ShardedIndex::counts(self, p, k)
    }

    fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode {
        ShardedIndex::code_at(self, pos, attr)
    }

    fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        ShardedIndex::prefix_count(self, p, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    fn fig1_sharded(shards: usize) -> (PatternSpace, RankedIndex, ShardedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let single = RankedIndex::build(&ds, &space, &ranking);
        let sharded = ShardedIndex::build(&ds, &space, &ranking, shards);
        (space, single, sharded)
    }

    #[test]
    fn boundaries_cover_and_balance() {
        assert_eq!(shard_boundaries(16, 1), vec![0, 16]);
        assert_eq!(shard_boundaries(16, 3), vec![0, 6, 11, 16]);
        assert_eq!(shard_boundaries(2, 4), vec![0, 1, 2, 2, 2]);
        assert_eq!(shard_boundaries(0, 3), vec![0, 0, 0, 0]);
    }

    #[test]
    fn merged_counts_equal_single_index_all_patterns_all_k() {
        for shards in [1, 2, 3, 5, 16, 20] {
            let (space, single, sharded) = fig1_sharded(shards);
            assert_eq!(sharded.n(), 16);
            assert_eq!(sharded.shard_count(), shards);
            for a in 0..space.n_attrs() as AttrId {
                for v in 0..space.card(a) as u16 {
                    let p = Pattern::single(a, v);
                    for k in 0..=16 {
                        assert_eq!(
                            sharded.counts(&p, k),
                            single.counts(&p, k),
                            "shards={shards} a={a} v={v} k={k}"
                        );
                    }
                }
            }
            assert_eq!(
                sharded.counts(&Pattern::empty(), 5),
                single.counts(&Pattern::empty(), 5)
            );
        }
    }

    #[test]
    fn prefix_count_matches_fused_merge_all_shard_counts() {
        for shards in [1, 2, 3, 5, 16, 25] {
            let (space, single, sharded) = fig1_sharded(shards);
            for a in 0..space.n_attrs() as AttrId {
                for v in 0..space.card(a) as u16 {
                    let p = Pattern::single(a, v);
                    for k in 0..=16 {
                        assert_eq!(
                            sharded.prefix_count(&p, k),
                            single.counts(&p, k).1,
                            "shards={shards} a={a} v={v} k={k}"
                        );
                    }
                }
            }
            assert_eq!(sharded.prefix_count(&Pattern::empty(), 5), 5);
        }
    }

    #[test]
    fn code_at_resolves_across_shard_boundaries() {
        for shards in [2, 3, 7, 16, 25] {
            let (space, single, sharded) = fig1_sharded(shards);
            for pos in 0..16 {
                for a in 0..space.n_attrs() as AttrId {
                    assert_eq!(
                        sharded.code_at(pos, a),
                        single.code_at(pos, a),
                        "shards={shards} pos={pos} a={a}"
                    );
                }
            }
        }
    }

    #[test]
    fn more_shards_than_rows_leaves_empty_shards() {
        let (_space, single, sharded) = fig1_sharded(25);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 16);
        assert_eq!(sharded.shard_sizes().iter().filter(|&&s| s == 0).count(), 9);
        let p = Pattern::single(1, 0);
        assert_eq!(sharded.counts(&p, 4), single.counts(&p, 4));
    }

    #[test]
    fn k_smaller_than_first_shard_slice() {
        // With 2 shards of 8, k = 3 lies inside the first shard: every
        // other shard must contribute a zero prefix count.
        let (space, single, sharded) = fig1_sharded(2);
        let p = space.pattern(&[("School", "GP")]).unwrap();
        assert_eq!(sharded.counts(&p, 3), single.counts(&p, 3));
        assert_eq!(sharded.counts(&p, 0), single.counts(&p, 0));
    }
}
