//! JSON encodings of the report and error types, for the wire protocol of
//! `rankfair_service` and the CLI's `--format json`.
//!
//! Every encoding is a plain data mapping — deterministic field order,
//! integral counts as JSON integers, durations in fractional milliseconds
//! — so responses can be diffed byte-for-byte in golden tests. Patterns
//! are encoded twice over: as the human-readable `{Attr=value}` display
//! string and as structured `attr → value-label` terms, so wire consumers
//! never need to re-parse the display form.

use rankfair_json::{ToJson, Value};

use crate::audit::{AuditError, AuditTask, OverRepScope};
use crate::bounds::{BiasMeasure, Bounds};
use crate::pattern::Pattern;
use crate::report::{BiasedGroup, KReport};
use crate::space::PatternSpace;
use crate::stats::SearchStats;

/// Encodes a pattern as structured terms: `{"Attr": "label", …}` in
/// attribute order, resolved against `space`.
pub fn pattern_terms_json(p: &Pattern, space: &PatternSpace) -> Value {
    Value::Obj(
        p.terms()
            .iter()
            .map(|&(attr, code)| {
                (
                    space.attr_name(attr).to_string(),
                    Value::from(space.label(attr, code)),
                )
            })
            .collect(),
    )
}

impl ToJson for BiasedGroup {
    fn to_json(&self) -> Value {
        Value::object([
            ("group", Value::from(self.display.as_str())),
            ("direction", Value::from(self.direction.as_str())),
            ("size_in_data", Value::from(self.size_in_data)),
            ("size_in_topk", Value::from(self.size_in_topk)),
            ("required", Value::from(self.required)),
            ("bias_gap", Value::from(self.bias_gap)),
        ])
    }
}

impl ToJson for KReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("k", Value::from(self.k)),
            (
                "groups",
                Value::array(self.groups.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl ToJson for SearchStats {
    fn to_json(&self) -> Value {
        Value::object([
            ("nodes_evaluated", Value::from(self.nodes_evaluated)),
            ("nodes_touched", Value::from(self.nodes_touched)),
            ("schedule_pops", Value::from(self.schedule_pops)),
            ("full_searches", Value::from(self.full_searches)),
            ("patterns_examined", Value::from(self.patterns_examined())),
            (
                "elapsed_ms",
                Value::from(self.elapsed.as_secs_f64() * 1000.0),
            ),
            ("timed_out", Value::from(self.timed_out)),
        ])
    }
}

impl ToJson for Bounds {
    fn to_json(&self) -> Value {
        match self {
            Bounds::Constant(l) => Value::from(*l),
            Bounds::Steps(pairs) => Value::object([(
                "steps",
                Value::array(
                    pairs
                        .iter()
                        .map(|&(k, b)| Value::array(vec![Value::from(k), Value::from(b)]))
                        .collect(),
                ),
            )]),
            Bounds::LinearFraction(f) => Value::object([("fraction", Value::from(*f))]),
        }
    }
}

impl ToJson for AuditTask {
    fn to_json(&self) -> Value {
        match self {
            AuditTask::UnderRep(BiasMeasure::GlobalLower(b)) => Value::object([
                ("type", Value::from("under")),
                (
                    "measure",
                    Value::object([("type", Value::from("global")), ("lower", b.to_json())]),
                ),
            ]),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha }) => Value::object([
                ("type", Value::from("under")),
                (
                    "measure",
                    Value::object([
                        ("type", Value::from("proportional")),
                        ("alpha", Value::from(*alpha)),
                    ]),
                ),
            ]),
            AuditTask::OverRep { upper, scope } => Value::object([
                ("type", Value::from("over")),
                ("upper", upper.to_json()),
                (
                    "scope",
                    Value::from(match scope {
                        OverRepScope::MostSpecific => "specific",
                        OverRepScope::MostGeneral => "general",
                    }),
                ),
            ]),
            AuditTask::Combined { lower, upper } => Value::object([
                ("type", Value::from("combined")),
                ("lower", lower.to_json()),
                ("upper", upper.to_json()),
            ]),
        }
    }
}

impl ToJson for AuditError {
    fn to_json(&self) -> Value {
        let kind = match self {
            AuditError::Space(_) => "space",
            AuditError::MissingRanking => "missing_ranking",
            AuditError::RankingMismatch { .. } => "ranking_mismatch",
            AuditError::InvalidKRange { .. } => "invalid_k_range",
            AuditError::InvalidAlpha(_) => "invalid_alpha",
            AuditError::InvalidBound(_) => "invalid_bound",
            AuditError::Prepare(_) => "prepare",
        };
        Value::object([
            ("kind", Value::from(kind)),
            ("message", Value::from(self.to_string())),
        ])
    }
}

/// Enriched per-`k` reports with structured pattern terms attached —
/// [`KReport::to_json`] plus a `terms` member per group. The full-fidelity
/// encoding the service responds with.
pub fn reports_json(reports: &[KReport], space: &PatternSpace) -> Value {
    Value::array(
        reports
            .iter()
            .map(|r| {
                Value::object([
                    ("k", Value::from(r.k)),
                    (
                        "groups",
                        Value::array(
                            r.groups
                                .iter()
                                .map(|g| {
                                    let Value::Obj(mut pairs) = g.to_json() else {
                                        unreachable!("BiasedGroup encodes as an object")
                                    };
                                    pairs.insert(
                                        1,
                                        (
                                            "terms".to_string(),
                                            pattern_terms_json(&g.pattern, space),
                                        ),
                                    );
                                    Value::Obj(pairs)
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{Audit, AuditTask};
    use crate::bounds::{BiasMeasure, Bounds};
    use crate::stats::DetectConfig;
    use crate::Engine;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_json::parse;
    use rankfair_rank::Ranking;
    use std::sync::Arc;

    #[test]
    fn reports_encode_and_round_trip_through_text() {
        let audit = Audit::builder(Arc::new(students_fig1()))
            .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
            .build()
            .unwrap();
        let cfg = DetectConfig::new(4, 4, 5);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        let reports = audit.report(&out, &task);
        let v = reports_json(&reports, audit.space());
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        let k4 = &parsed.as_arr().unwrap()[0];
        assert_eq!(k4.get("k").unwrap().as_usize(), Some(4));
        let groups = k4.get("groups").unwrap().as_arr().unwrap();
        let gp = groups
            .iter()
            .find(|g| g.get("group").unwrap().as_str() == Some("{School=GP}"))
            .expect("GP group present");
        assert_eq!(gp.get("size_in_data").unwrap().as_usize(), Some(8));
        assert_eq!(gp.get("direction").unwrap().as_str(), Some("under"));
        assert_eq!(
            gp.get("terms").unwrap().get("School").unwrap().as_str(),
            Some("GP")
        );
    }

    #[test]
    fn stats_and_errors_encode() {
        let stats = SearchStats {
            nodes_evaluated: 7,
            nodes_touched: 3,
            ..SearchStats::default()
        };
        let v = stats.to_json();
        assert_eq!(v.get("patterns_examined").unwrap().as_usize(), Some(10));
        assert_eq!(v.get("timed_out").unwrap().as_bool(), Some(false));

        let e = AuditError::InvalidKRange { k_max: 20, n: 16 };
        let v = e.to_json();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid_k_range"));
        assert!(v.get("message").unwrap().as_str().unwrap().contains("20"));
    }
}
