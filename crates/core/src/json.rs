//! JSON encodings of the report and error types, for the wire protocol of
//! `rankfair_service` and the CLI's `--format json`.
//!
//! Every encoding is a plain data mapping — deterministic field order,
//! integral counts as JSON integers, durations in fractional milliseconds
//! — so responses can be diffed byte-for-byte in golden tests. Patterns
//! are encoded twice over: as the human-readable `{Attr=value}` display
//! string and as structured `attr → value-label` terms, so wire consumers
//! never need to re-parse the display form.

use rankfair_data::{Dataset, RowValue};
use rankfair_json::{ToJson, Value};

use crate::audit::{AuditError, AuditTask, OverRepScope};
use crate::bounds::{BiasMeasure, Bounds};
use crate::monitor::{DeltaReport, MonitorError, RankingEdit};
use crate::pattern::Pattern;
use crate::report::{BiasedGroup, KReport};
use crate::space::PatternSpace;
use crate::stats::SearchStats;

/// Encodes a pattern as structured terms: `{"Attr": "label", …}` in
/// attribute order, resolved against `space`.
pub fn pattern_terms_json(p: &Pattern, space: &PatternSpace) -> Value {
    Value::Obj(
        p.terms()
            .iter()
            .map(|&(attr, code)| {
                (
                    space.attr_name(attr).to_string(),
                    Value::from(space.label(attr, code)),
                )
            })
            .collect(),
    )
}

impl ToJson for BiasedGroup {
    fn to_json(&self) -> Value {
        Value::object([
            ("group", Value::from(self.display.as_str())),
            ("direction", Value::from(self.direction.as_str())),
            ("size_in_data", Value::from(self.size_in_data)),
            ("size_in_topk", Value::from(self.size_in_topk)),
            ("required", Value::from(self.required)),
            ("bias_gap", Value::from(self.bias_gap)),
        ])
    }
}

impl ToJson for KReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("k", Value::from(self.k)),
            (
                "groups",
                Value::array(self.groups.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl ToJson for SearchStats {
    fn to_json(&self) -> Value {
        Value::object([
            ("nodes_evaluated", Value::from(self.nodes_evaluated)),
            ("nodes_touched", Value::from(self.nodes_touched)),
            ("schedule_pops", Value::from(self.schedule_pops)),
            ("full_searches", Value::from(self.full_searches)),
            ("patterns_examined", Value::from(self.patterns_examined())),
            (
                "elapsed_ms",
                Value::from(self.elapsed.as_secs_f64() * 1000.0),
            ),
            ("timed_out", Value::from(self.timed_out)),
        ])
    }
}

impl ToJson for Bounds {
    fn to_json(&self) -> Value {
        match self {
            Bounds::Constant(l) => Value::from(*l),
            Bounds::Steps(pairs) => Value::object([(
                "steps",
                Value::array(
                    pairs
                        .iter()
                        .map(|&(k, b)| Value::array(vec![Value::from(k), Value::from(b)]))
                        .collect(),
                ),
            )]),
            Bounds::LinearFraction(f) => Value::object([("fraction", Value::from(*f))]),
        }
    }
}

impl ToJson for AuditTask {
    fn to_json(&self) -> Value {
        match self {
            AuditTask::UnderRep(BiasMeasure::GlobalLower(b)) => Value::object([
                ("type", Value::from("under")),
                (
                    "measure",
                    Value::object([("type", Value::from("global")), ("lower", b.to_json())]),
                ),
            ]),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha }) => Value::object([
                ("type", Value::from("under")),
                (
                    "measure",
                    Value::object([
                        ("type", Value::from("proportional")),
                        ("alpha", Value::from(*alpha)),
                    ]),
                ),
            ]),
            AuditTask::OverRep { upper, scope } => Value::object([
                ("type", Value::from("over")),
                ("upper", upper.to_json()),
                (
                    "scope",
                    Value::from(match scope {
                        OverRepScope::MostSpecific => "specific",
                        OverRepScope::MostGeneral => "general",
                    }),
                ),
            ]),
            AuditTask::Combined { lower, upper } => Value::object([
                ("type", Value::from("combined")),
                ("lower", lower.to_json()),
                ("upper", upper.to_json()),
            ]),
        }
    }
}

impl ToJson for AuditError {
    fn to_json(&self) -> Value {
        let kind = match self {
            AuditError::Space(_) => "space",
            AuditError::MissingRanking => "missing_ranking",
            AuditError::RankingMismatch { .. } => "ranking_mismatch",
            AuditError::InvalidKRange { .. } => "invalid_k_range",
            AuditError::InvalidAlpha(_) => "invalid_alpha",
            AuditError::InvalidBound(_) => "invalid_bound",
            AuditError::Prepare(_) => "prepare",
        };
        Value::object([
            ("kind", Value::from(kind)),
            ("message", Value::from(self.to_string())),
        ])
    }
}

/// Enriched per-`k` reports with structured pattern terms attached —
/// [`KReport::to_json`] plus a `terms` member per group. The full-fidelity
/// encoding the service responds with.
pub fn reports_json(reports: &[KReport], space: &PatternSpace) -> Value {
    Value::array(
        reports
            .iter()
            .map(|r| {
                Value::object([
                    ("k", Value::from(r.k)),
                    (
                        "groups",
                        Value::array(
                            r.groups
                                .iter()
                                .map(|g| {
                                    // BiasedGroup encodes as an object;
                                    // anything else passes through
                                    // un-enriched rather than panicking.
                                    let mut encoded = g.to_json();
                                    if let Value::Obj(pairs) = &mut encoded {
                                        pairs.insert(
                                            1,
                                            (
                                                "terms".to_string(),
                                                pattern_terms_json(&g.pattern, space),
                                            ),
                                        );
                                    }
                                    encoded
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Parses one ranking edit. Two shapes, strict (unknown members are
/// errors, like the rest of the wire protocol):
///
/// * `{"edit": "score", "row": N, "score": X}` — re-score a tuple;
/// * `{"edit": "insert", "cells": {column: value, …}}` — append a tuple.
///   Cells are keyed by column name and must cover **every** dataset
///   column exactly once; strings become categorical labels, numbers
///   numeric values.
///
/// The dataset is needed to resolve cell order and column kinds.
pub fn edit_from_json(v: &Value, ds: &Dataset) -> Result<RankingEdit, String> {
    let Some(pairs) = v.as_obj() else {
        return Err("edit must be a JSON object".to_string());
    };
    let kind = v
        .get("edit")
        .and_then(Value::as_str)
        .ok_or("`edit` must be \"score\" or \"insert\"")?;
    match kind {
        "score" => {
            reject_unknown_members(pairs, &["edit", "row", "score"], "score edit")?;
            let row = v
                .get("row")
                .and_then(Value::as_usize)
                .ok_or("`row` (non-negative integer) is required")?;
            // A bare `as u32` would wrap ids past u32::MAX and silently
            // re-score the wrong tuple.
            let row =
                u32::try_from(row).map_err(|_| format!("row {row} does not fit a TupleId"))?;
            let score = v
                .get("score")
                .and_then(Value::as_f64)
                .ok_or("`score` (number) is required")?;
            Ok(RankingEdit::ScoreUpdate { row, score })
        }
        "insert" => {
            reject_unknown_members(pairs, &["edit", "cells"], "insert edit")?;
            let cells_obj = v
                .get("cells")
                .and_then(Value::as_obj)
                .ok_or("`cells` (object of column → value) is required")?;
            let mut cells = Vec::with_capacity(ds.n_cols());
            for col in ds.columns() {
                let cell = cells_obj
                    .iter()
                    .find(|(k, _)| k == col.name())
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("insert is missing a cell for `{}`", col.name()))?;
                cells.push(match cell {
                    Value::Str(s) => RowValue::Label(s.clone()),
                    Value::Num(n) => RowValue::Number(*n),
                    _ => {
                        return Err(format!(
                            "cell `{}` must be a string label or a number",
                            col.name()
                        ))
                    }
                });
            }
            for (key, _) in cells_obj {
                if ds.column_index(key).is_none() {
                    return Err(format!("insert cell `{key}` names no dataset column"));
                }
            }
            Ok(RankingEdit::Insert { cells })
        }
        other => Err(format!("unknown edit kind `{other}`")),
    }
}

/// Member-allowlist check shared by the edit shapes — the core-side
/// counterpart of the wire layer's `reject_unknown`, so misspelled or
/// smuggled members fail loudly instead of being silently ignored.
fn reject_unknown_members(
    pairs: &[(String, Value)],
    allowed: &[&str],
    context: &str,
) -> Result<(), String> {
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown member `{key}` in {context}"));
        }
    }
    Ok(())
}

/// Parses an array of ranking edits (one `update` batch).
pub fn edits_from_json(v: &Value, ds: &Dataset) -> Result<Vec<RankingEdit>, String> {
    let items = v.as_arr().ok_or("`edits` must be an array")?;
    items.iter().map(|e| edit_from_json(e, ds)).collect()
}

fn patterns_json(patterns: &[Pattern], space: &PatternSpace) -> Value {
    Value::array(
        patterns
            .iter()
            .map(|p| {
                Value::object([
                    ("group", Value::from(space.display(p))),
                    ("terms", pattern_terms_json(p, space)),
                ])
            })
            .collect(),
    )
}

/// Encodes a [`DeltaReport`] — which groups entered/left the biased sets
/// at which `k` — with patterns resolved against `space`. `strip_timing`
/// zeroes the wall clock for byte-deterministic transcripts.
pub fn delta_report_json(d: &DeltaReport, space: &PatternSpace, strip_timing: bool) -> Value {
    let mut stats = d.stats.clone();
    if strip_timing {
        stats.elapsed = std::time::Duration::ZERO;
    }
    Value::object([
        ("edits", Value::from(d.edits)),
        (
            "recomputed",
            match d.recomputed {
                Some((lo, hi)) => Value::array(vec![Value::from(lo), Value::from(hi)]),
                None => Value::Null,
            },
        ),
        (
            "segments",
            Value::array(
                d.segments
                    .iter()
                    .map(|&(lo, hi)| Value::array(vec![Value::from(lo), Value::from(hi)]))
                    .collect(),
            ),
        ),
        ("total_changes", Value::from(d.total_changes())),
        (
            "changed",
            Value::array(
                d.changed
                    .iter()
                    .map(|kd| {
                        Value::object([
                            ("k", Value::from(kd.k)),
                            ("entered_under", patterns_json(&kd.entered_under, space)),
                            ("left_under", patterns_json(&kd.left_under, space)),
                            ("entered_over", patterns_json(&kd.entered_over, space)),
                            ("left_over", patterns_json(&kd.left_over, space)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("stats", stats.to_json()),
    ])
}

impl ToJson for crate::monitor::CheckpointStats {
    fn to_json(&self) -> Value {
        Value::object([
            ("cadence", Value::from(self.cadence)),
            ("lower", Value::from(self.lower_checkpoints)),
            ("upper", Value::from(self.upper_checkpoints)),
            ("stored_nodes", Value::from(self.stored_nodes)),
            ("arena_nodes", Value::from(self.arena_nodes)),
            ("seeks", Value::from(self.seeks as usize)),
            ("cold_builds", Value::from(self.cold_builds as usize)),
            ("repairs", Value::from(self.repairs as usize)),
            ("replayed_steps", Value::from(self.replayed_steps as usize)),
            (
                "prefix_recounts",
                Value::from(self.prefix_recounts as usize),
            ),
            ("segments", Value::from(self.segments as usize)),
            ("invalidated", Value::from(self.invalidated as usize)),
        ])
    }
}

impl ToJson for MonitorError {
    fn to_json(&self) -> Value {
        // Audit errors keep their own kind taxonomy; monitor-specific
        // failures get their own kinds.
        let kind = match self {
            MonitorError::Audit(a) => return a.to_json(),
            MonitorError::ScoreColumn(_) => "score_column",
            MonitorError::UnknownRow { .. } => "unknown_row",
            MonitorError::UnknownLabel { .. } => "unknown_label",
            MonitorError::BadEdit(_) => "bad_edit",
            MonitorError::DeadlineUnsupported => "deadline_unsupported",
        };
        Value::object([
            ("kind", Value::from(kind)),
            ("message", Value::from(self.to_string())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{Audit, AuditTask};
    use crate::bounds::{BiasMeasure, Bounds};
    use crate::stats::DetectConfig;
    use crate::Engine;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_json::parse;
    use rankfair_rank::Ranking;
    use std::sync::Arc;

    #[test]
    fn reports_encode_and_round_trip_through_text() {
        let audit = Audit::builder(Arc::new(students_fig1()))
            .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
            .build()
            .unwrap();
        let cfg = DetectConfig::new(4, 4, 5);
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        let reports = audit.report(&out, &task);
        let v = reports_json(&reports, audit.space());
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        let k4 = &parsed.as_arr().unwrap()[0];
        assert_eq!(k4.get("k").unwrap().as_usize(), Some(4));
        let groups = k4.get("groups").unwrap().as_arr().unwrap();
        let gp = groups
            .iter()
            .find(|g| g.get("group").unwrap().as_str() == Some("{School=GP}"))
            .expect("GP group present");
        assert_eq!(gp.get("size_in_data").unwrap().as_usize(), Some(8));
        assert_eq!(gp.get("direction").unwrap().as_str(), Some("under"));
        assert_eq!(
            gp.get("terms").unwrap().get("School").unwrap().as_str(),
            Some("GP")
        );
    }

    #[test]
    fn edits_parse_strictly_and_delta_reports_encode() {
        use crate::monitor::{MonitorAudit, MonitorError, RankingEdit};
        use crate::Engine;
        let ds = students_fig1();
        let score = parse(r#"{"edit": "score", "row": 3, "score": 17.5}"#).unwrap();
        assert_eq!(
            edit_from_json(&score, &ds).unwrap(),
            RankingEdit::ScoreUpdate {
                row: 3,
                score: 17.5
            }
        );
        let insert = parse(concat!(
            r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "#,
            r#""Address": "U", "Failures": "0", "Grade": 11.5}}"#
        ))
        .unwrap();
        let edit = edit_from_json(&insert, &ds).unwrap();
        assert!(matches!(&edit, RankingEdit::Insert { cells } if cells.len() == 5));
        // Strictness: unknown members, missing/extra/ill-typed cells.
        for bad in [
            r#"{"edit": "score", "row": 1}"#,
            r#"{"edit": "score", "row": 1, "score": 2, "sco": 3}"#,
            r#"{"edit": "teleport", "row": 1}"#,
            r#"{"row": 1, "score": 2}"#,
            r#"{"edit": "insert", "cells": {"Gender": "F"}}"#,
            r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "Address": "U", "Failures": "0", "Grade": 11.5, "Extra": 1}}"#,
            r#"{"edit": "insert", "cells": {"Gender": true, "School": "GP", "Address": "U", "Failures": "0", "Grade": 11.5}}"#,
            r#"{"edit": "insert"}"#,
            r#"[1]"#,
        ] {
            assert!(
                edit_from_json(&parse(bad).unwrap(), &ds).is_err(),
                "accepted {bad}"
            );
        }
        // A real delta report round-trips through text.
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let mut monitor = MonitorAudit::builder(ds, "Grade")
            .build(crate::DetectConfig::new(2, 2, 16), task, Engine::Optimized)
            .unwrap();
        let bottom = monitor.ranking().at(15);
        let delta = monitor
            .apply(&[RankingEdit::ScoreUpdate {
                row: bottom,
                score: 19.9,
            }])
            .unwrap();
        let v = delta_report_json(&delta, monitor.space(), true);
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(v.get("edits").unwrap().as_usize(), Some(1));
        assert!(v.get("recomputed").unwrap().as_arr().is_some());
        // The replayed segments mirror the report (outer bounds =
        // recomputed hull).
        let segs = v.get("segments").unwrap().as_arr().unwrap();
        assert!(!segs.is_empty());
        assert_eq!(
            v.get("stats").unwrap().get("elapsed_ms").unwrap().as_f64(),
            Some(0.0)
        );
        // Monitor errors carry kinds.
        let e = MonitorError::UnknownRow { row: 9, n: 5 };
        assert_eq!(
            e.to_json().get("kind").unwrap().as_str(),
            Some("unknown_row")
        );
    }

    #[test]
    fn stats_and_errors_encode() {
        let stats = SearchStats {
            nodes_evaluated: 7,
            nodes_touched: 3,
            ..SearchStats::default()
        };
        let v = stats.to_json();
        assert_eq!(v.get("patterns_examined").unwrap().as_usize(), Some(10));
        assert_eq!(v.get("timed_out").unwrap().as_bool(), Some(false));

        let e = AuditError::InvalidKRange { k_max: 20, n: 16 };
        let v = e.to_json();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid_k_range"));
        assert!(v.get("message").unwrap().as_str().unwrap().contains("20"));
    }
}
