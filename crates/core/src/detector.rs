//! Deprecated borrowing facade, kept as a thin migration shim around the
//! same internals the owned [`crate::Audit`] API uses.

#![allow(deprecated)] // the shim implements and tests itself

use rankfair_data::Dataset;
use rankfair_rank::{Ranker, Ranking};

use crate::bounds::{BiasMeasure, Bounds};
use crate::engine::{global_bounds, prop_bounds};
use crate::pattern::Pattern;
use crate::report::{summarize, KReport};
use crate::space::{PatternSpace, RankedIndex, SpaceError};
use crate::stats::{DetectConfig, DetectionOutput};
use crate::topdown::iter_td;

/// Convenience facade: builds the pattern space and ranked index once and
/// exposes the three algorithms plus reporting.
///
/// ```
/// #![allow(deprecated)]
/// use rankfair_core::{Detector, DetectConfig, BiasMeasure};
/// use rankfair_data::examples::{students_fig1, fig1_rank_order};
/// use rankfair_rank::Ranking;
///
/// let ds = students_fig1();
/// let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
/// let det = Detector::with_ranking(&ds, ranking).unwrap();
/// let out = det.detect_optimized(
///     &DetectConfig::new(5, 4, 5),
///     &BiasMeasure::Proportional { alpha: 0.9 },
/// );
/// assert_eq!(out.per_k[0].patterns.len(), 3); // Example 4.9
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use Audit (via AuditBuilder): it owns its dataset, is Send + Sync, covers the \
            upper-bound tasks, and parallelizes over the k range"
)]
pub struct Detector<'a> {
    ds: &'a Dataset,
    space: PatternSpace,
    ranking: Ranking,
    index: RankedIndex,
}

impl<'a> Detector<'a> {
    /// Builds a detector by running `ranker` on `ds`; patterns range over
    /// all categorical columns.
    pub fn new(ds: &'a Dataset, ranker: &dyn Ranker) -> Result<Self, SpaceError> {
        Self::with_ranking(ds, ranker.rank(ds))
    }

    /// Builds a detector from a pre-computed ranking.
    pub fn with_ranking(ds: &'a Dataset, ranking: Ranking) -> Result<Self, SpaceError> {
        let space = PatternSpace::from_dataset(ds)?;
        let index = RankedIndex::build(ds, &space, &ranking);
        Ok(Detector {
            ds,
            space,
            ranking,
            index,
        })
    }

    /// Builds a detector restricted to the given pattern attributes (by
    /// column name) — the experiments vary the number of attributes this
    /// way.
    pub fn with_ranking_over(
        ds: &'a Dataset,
        ranking: Ranking,
        attrs: &[&str],
    ) -> Result<Self, SpaceError> {
        let space = PatternSpace::from_column_names(ds, attrs)?;
        let index = RankedIndex::build(ds, &space, &ranking);
        Ok(Detector {
            ds,
            space,
            ranking,
            index,
        })
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        self.ds
    }

    /// The pattern space (attribute order, cardinalities, labels).
    pub fn space(&self) -> &PatternSpace {
        &self.space
    }

    /// The ranking in use.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// The ranked bitmap index.
    pub fn index(&self) -> &RankedIndex {
        &self.index
    }

    /// Runs the appropriate optimized algorithm for `measure`
    /// (`GlobalBounds` or `PropBounds`).
    pub fn detect_optimized(&self, cfg: &DetectConfig, measure: &BiasMeasure) -> DetectionOutput {
        match measure {
            BiasMeasure::GlobalLower(b) => global_bounds(&self.index, &self.space, cfg, b),
            BiasMeasure::Proportional { alpha } => {
                prop_bounds(&self.index, &self.space, cfg, *alpha)
            }
        }
    }

    /// Runs the `IterTD` baseline.
    pub fn detect_baseline(&self, cfg: &DetectConfig, measure: &BiasMeasure) -> DetectionOutput {
        iter_td(&self.index, &self.space, cfg, measure)
    }

    /// Global-bounds detection (Algorithm 2).
    pub fn detect_global(&self, cfg: &DetectConfig, bounds: &Bounds) -> DetectionOutput {
        global_bounds(&self.index, &self.space, cfg, bounds)
    }

    /// Proportional detection (Algorithm 3).
    pub fn detect_proportional(&self, cfg: &DetectConfig, alpha: f64) -> DetectionOutput {
        prop_bounds(&self.index, &self.space, cfg, alpha)
    }

    /// Renders a pattern with attribute names and value labels.
    pub fn describe(&self, p: &Pattern) -> String {
        self.space.display(p)
    }

    /// Enriches an output into per-`k` reports (sizes, bounds, gaps).
    pub fn report(&self, out: &DetectionOutput, measure: &BiasMeasure) -> Vec<KReport> {
        summarize(out, &self.index, &self.space, measure)
    }

    /// Row ids of the tuples in the detected group (matching `p`).
    pub fn group_members(&self, p: &Pattern) -> Vec<u32> {
        (0..self.ds.n_rows() as u32)
            .filter(|&r| p.matches(|a| self.ds.code(r as usize, self.space.dataset_col(a))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::{AttributeRanker, SortKey};

    #[test]
    fn detector_from_ranker_matches_precomputed_ranking() {
        let ds = students_fig1();
        let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
        let via_ranker = Detector::new(&ds, &ranker).unwrap();
        let via_order =
            Detector::with_ranking(&ds, Ranking::from_order(fig1_rank_order()).unwrap()).unwrap();
        let cfg = DetectConfig::new(4, 4, 5);
        let m = BiasMeasure::GlobalLower(Bounds::constant(2));
        assert_eq!(
            via_ranker.detect_optimized(&cfg, &m).per_k,
            via_order.detect_optimized(&cfg, &m).per_k
        );
    }

    #[test]
    fn restricted_attribute_set() {
        let ds = students_fig1();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let det = Detector::with_ranking_over(&ds, ranking, &["Gender", "School"]).unwrap();
        assert_eq!(det.space().n_attrs(), 2);
        let cfg = DetectConfig::new(4, 4, 5);
        let out = det.detect_global(&cfg, &Bounds::constant(2));
        for kr in &out.per_k {
            for p in &kr.patterns {
                assert!(p.terms().iter().all(|&(a, _)| a < 2));
            }
        }
    }

    #[test]
    fn baseline_and_optimized_agree_via_facade() {
        let ds = students_fig1();
        let det =
            Detector::with_ranking(&ds, Ranking::from_order(fig1_rank_order()).unwrap()).unwrap();
        let cfg = DetectConfig::new(2, 3, 12);
        for m in [
            BiasMeasure::GlobalLower(Bounds::constant(2)),
            BiasMeasure::Proportional { alpha: 0.8 },
        ] {
            assert_eq!(
                det.detect_baseline(&cfg, &m).per_k,
                det.detect_optimized(&cfg, &m).per_k
            );
        }
    }

    #[test]
    fn group_members_match_pattern() {
        let ds = students_fig1();
        let det =
            Detector::with_ranking(&ds, Ranking::from_order(fig1_rank_order()).unwrap()).unwrap();
        let p = det.space().pattern(&[("School", "GP")]).unwrap();
        let members = det.group_members(&p);
        assert_eq!(members.len(), 8); // Example 2.3
        assert!(members.contains(&2)); // tuple 3 is GP
        assert!(!members.contains(&0)); // tuple 1 is MS
    }
}
