use crate::space::AttrId;
use rankfair_data::ValueCode;

/// Terms a pattern can hold without a heap allocation. Engines clone and
/// drop patterns on every per-`k` result snapshot, so the common case
/// (few bound attributes) must be allocation-free; wider patterns spill
/// to a `Vec`.
const INLINE_TERMS: usize = 8;

/// Inline-or-spilled term storage. Both variants hold terms sorted by
/// attribute index; all comparisons and hashing go through the slice view
/// so the two representations are indistinguishable.
#[derive(Clone)]
enum Terms {
    Inline {
        len: u8,
        buf: [(AttrId, ValueCode); INLINE_TERMS],
    },
    Heap(Vec<(AttrId, ValueCode)>),
}

/// A *pattern* (Definition 2.2 of the paper): a value assignment to a
/// subset of the categorical attributes, e.g. `{School=GP, Address=U}`.
///
/// Terms are stored sorted by attribute index, which makes structural
/// operations (subset tests, tree-parent extraction, canonical ordering)
/// cheap and gives every pattern a unique representation suitable for use
/// as a hash-map key. Up to `INLINE_TERMS` (8) terms live inline, so
/// cloning a typical pattern never touches the allocator.
#[derive(Clone)]
pub struct Pattern {
    terms: Terms,
}

impl std::fmt::Debug for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pattern")
            .field("terms", &self.terms())
            .finish()
    }
}

impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.terms() == other.terms()
    }
}

impl Eq for Pattern {}

impl std::hash::Hash for Pattern {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Slice hashing (length prefix + elements) — identical to the
        // previous derived `Vec` hash.
        self.terms().hash(state);
    }
}

impl PartialOrd for Pattern {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pattern {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic over sorted terms — the canonical report order.
        self.terms().cmp(other.terms())
    }
}

impl Pattern {
    /// Builds the storage for a sorted, duplicate-free term slice.
    fn from_sorted(terms: &[(AttrId, ValueCode)]) -> Self {
        debug_assert!(terms.windows(2).all(|w| w[0].0 < w[1].0));
        match u8::try_from(terms.len()) {
            Ok(len) if terms.len() <= INLINE_TERMS => {
                let mut buf = [(0, 0); INLINE_TERMS];
                buf[..terms.len()].copy_from_slice(terms);
                Pattern {
                    terms: Terms::Inline { len, buf },
                }
            }
            _ => Pattern {
                terms: Terms::Heap(terms.to_vec()),
            },
        }
    }

    /// The most general (empty) pattern — matched by every tuple. Never
    /// reported by the algorithms (the search starts from its children),
    /// but useful as the search-tree root.
    pub fn empty() -> Self {
        Pattern::from_sorted(&[])
    }

    /// Builds a pattern from terms in any order.
    ///
    /// Returns `None` if two terms bind the same attribute.
    pub fn from_terms(mut terms: Vec<(AttrId, ValueCode)>) -> Option<Self> {
        terms.sort_unstable();
        if terms.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
        Some(Pattern::from_sorted(&terms))
    }

    /// A single-term pattern.
    pub fn single(attr: AttrId, value: ValueCode) -> Self {
        Pattern::from_sorted(&[(attr, value)])
    }

    /// The sorted terms.
    pub fn terms(&self) -> &[(AttrId, ValueCode)] {
        match &self.terms {
            Terms::Inline { len, buf } => &buf[..usize::from(*len)],
            Terms::Heap(v) => v,
        }
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms().len()
    }

    /// Whether this is the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.terms().is_empty()
    }

    /// Largest attribute index bound by the pattern (`idx(Attr(p))` in
    /// Definition 4.1), or `None` for the empty pattern.
    pub fn max_attr(&self) -> Option<AttrId> {
        self.terms().last().map(|&(a, _)| a)
    }

    /// The value this pattern binds for `attr`, if any.
    pub fn value_of(&self, attr: AttrId) -> Option<ValueCode> {
        let terms = self.terms();
        terms
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|i| terms[i].1)
    }

    /// Extends the pattern with one term whose attribute index exceeds
    /// `max_attr` — the search-tree child relation of Definition 4.1.
    ///
    /// # Panics
    /// Panics (debug builds) if `attr` does not exceed `max_attr`.
    pub fn child(&self, attr: AttrId, value: ValueCode) -> Pattern {
        debug_assert!(self.max_attr().is_none_or(|m| attr > m));
        // One term past the inline cap: extend in place without a round
        // trip through a temporary `Vec`.
        if let Terms::Inline { len, buf } = &self.terms {
            if usize::from(*len) < INLINE_TERMS {
                let mut buf = *buf;
                buf[usize::from(*len)] = (attr, value);
                return Pattern {
                    terms: Terms::Inline { len: len + 1, buf },
                };
            }
        }
        let terms = self.terms();
        let mut out = Vec::with_capacity(terms.len() + 1);
        out.extend_from_slice(terms);
        out.push((attr, value));
        Pattern {
            terms: Terms::Heap(out),
        }
    }

    /// The unique search-tree parent: the pattern without its
    /// largest-index term. Returns `None` for the empty pattern.
    pub fn tree_parent(&self) -> Option<Pattern> {
        let terms = self.terms();
        if terms.is_empty() {
            return None;
        }
        Some(Pattern::from_sorted(&terms[..terms.len() - 1]))
    }

    /// Whether `self ⊆ other` in the pattern-graph sense: every term of
    /// `self` appears in `other`.
    pub fn is_subset_of(&self, other: &Pattern) -> bool {
        if self.len() > other.len() {
            return false;
        }
        // Both sides sorted: linear merge.
        let mut it = other.terms().iter();
        'outer: for t in self.terms() {
            for o in it.by_ref() {
                match o.0.cmp(&t.0) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => {
                        if o.1 == t.1 {
                            continue 'outer;
                        }
                        return false;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self ⊊ other`.
    pub fn is_proper_subset_of(&self, other: &Pattern) -> bool {
        self.len() < other.len() && self.is_subset_of(other)
    }

    /// Whether a tuple, given as a closure from attribute index to value
    /// code, satisfies the pattern.
    pub fn matches(&self, code_of: impl Fn(AttrId) -> ValueCode) -> bool {
        self.terms().iter().all(|&(a, v)| code_of(a) == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(terms: &[(u16, u16)]) -> Pattern {
        Pattern::from_terms(terms.to_vec()).unwrap()
    }

    #[test]
    fn from_terms_sorts_and_rejects_duplicates() {
        let a = p(&[(2, 1), (0, 3)]);
        assert_eq!(a.terms(), &[(0, 3), (2, 1)]);
        assert!(Pattern::from_terms(vec![(1, 0), (1, 1)]).is_none());
    }

    #[test]
    fn subset_relation() {
        let small = p(&[(1, 5)]);
        let big = p(&[(0, 2), (1, 5), (3, 1)]);
        let other = p(&[(1, 6)]);
        assert!(small.is_subset_of(&big));
        assert!(small.is_proper_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(!other.is_subset_of(&big));
        assert!(small.is_subset_of(&small));
        assert!(!small.is_proper_subset_of(&small));
        assert!(Pattern::empty().is_subset_of(&small));
    }

    #[test]
    fn subset_same_length_different_values() {
        let a = p(&[(0, 1), (2, 0)]);
        let b = p(&[(0, 1), (2, 1)]);
        assert!(!a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn child_and_parent_roundtrip() {
        let a = p(&[(0, 1)]);
        let c = a.child(2, 3);
        assert_eq!(c.terms(), &[(0, 1), (2, 3)]);
        assert_eq!(c.tree_parent().unwrap(), a);
        assert_eq!(a.tree_parent().unwrap(), Pattern::empty());
        assert_eq!(Pattern::empty().tree_parent(), None);
        assert_eq!(c.max_attr(), Some(2));
        assert_eq!(Pattern::empty().max_attr(), None);
    }

    #[test]
    fn matches_checks_all_terms() {
        let codes = [7u16, 3, 9];
        let a = p(&[(0, 7), (2, 9)]);
        assert!(a.matches(|i| codes[usize::from(i)]));
        let b = p(&[(0, 7), (1, 0)]);
        assert!(!b.matches(|i| codes[usize::from(i)]));
        assert!(Pattern::empty().matches(|_| 0));
    }

    #[test]
    fn value_of_finds_bound_attrs() {
        let a = p(&[(0, 7), (2, 9)]);
        assert_eq!(a.value_of(0), Some(7));
        assert_eq!(a.value_of(1), None);
        assert_eq!(a.value_of(2), Some(9));
    }

    #[test]
    fn canonical_ordering_groups_by_terms() {
        let mut v = [p(&[(1, 0)]), p(&[(0, 1), (1, 0)]), p(&[(0, 0)])];
        v.sort();
        assert_eq!(v[0], p(&[(0, 0)]));
        assert_eq!(v[1], p(&[(0, 1), (1, 0)]));
        assert_eq!(v[2], p(&[(1, 0)]));
    }
}
