/// Lower bounds `L_k` over group representation in the top-`k`, for the
/// global-bounds problem (Problem 3.1).
///
/// The paper’s default experimental setting is a step function (“10 for
/// 10 ≤ k < 20, 20 for 20 ≤ k < 30, …”); [`Bounds::steps`] builds exactly
/// that shape. Bounds are assumed non-decreasing in `k` (footnote 3 of the
/// paper); the `GlobalBounds` engine falls back to a fresh search whenever
/// the bound changes, so even a decreasing specification stays correct.
#[derive(Debug, Clone, PartialEq)]
pub enum Bounds {
    /// The same bound for every `k`.
    Constant(usize),
    /// Piecewise-constant: `(k_from, bound)` pairs sorted by `k_from`; the
    /// bound at `k` is the entry with the largest `k_from ≤ k` (0 before
    /// the first entry).
    Steps(Vec<(usize, usize)>),
    /// `L_k = ceil(fraction · k)` — a simple linear family used by some
    /// fairness-in-ranking constraints.
    LinearFraction(
        /// The fraction of the top-`k` the group must occupy.
        f64,
    ),
}

impl Bounds {
    /// Convenience constructor for a constant bound.
    pub fn constant(l: usize) -> Self {
        Bounds::Constant(l)
    }

    /// Convenience constructor for a step function; pairs are sorted
    /// internally.
    pub fn steps(mut pairs: Vec<(usize, usize)>) -> Self {
        pairs.sort_unstable();
        Bounds::Steps(pairs)
    }

    /// The paper’s default bounds: 10 for k∈[10,20), 20 for [20,30), 30 for
    /// [30,40), 40 for [40,50).
    pub fn paper_default() -> Self {
        Bounds::steps(vec![(10, 10), (20, 20), (30, 30), (40, 40)])
    }

    /// The lower bound at `k`.
    ///
    /// Order-independent for [`Bounds::Steps`]: the variant is public and
    /// can be constructed with pairs in any order, so the applicable entry
    /// is the one with the **largest** `k_from ≤ k` regardless of where it
    /// sits in the vector (ties on `k_from` resolve to the later entry,
    /// matching what the sorting constructor produced all along).
    pub fn at(&self, k: usize) -> usize {
        match self {
            Bounds::Constant(l) => *l,
            Bounds::Steps(pairs) => pairs
                .iter()
                .filter(|&&(from, _)| from <= k)
                .max_by_key(|&&(from, _)| from)
                .map_or(0, |&(_, l)| l),
            Bounds::LinearFraction(f) => (f * k as f64).ceil() as usize,
        }
    }

    /// Checks the numeric parameters: a [`Bounds::LinearFraction`] must be
    /// finite and non-negative (a NaN fraction makes every comparison
    /// false, silently emptying or flooding the result set). Returns the
    /// offending value on failure.
    pub fn validate(&self) -> Result<(), f64> {
        match self {
            Bounds::LinearFraction(f) if !f.is_finite() || *f < 0.0 => Err(*f),
            _ => Ok(()),
        }
    }
}

/// Which fairness measure defines “biased representation”.
///
/// This type is the **single source of truth** for the bias predicate: the
/// baseline, both optimized algorithms, the oracle, and the report layer
/// all call [`BiasMeasure::is_biased`], so floating-point rounding in the
/// proportional measure can never make two components disagree.
#[derive(Debug, Clone)]
pub enum BiasMeasure {
    /// Problem 3.1 (lower-bound side): biased iff `s_Rk(p) < L_k`.
    GlobalLower(Bounds),
    /// Problem 3.2: biased iff `s_Rk(p) < α · s_D(p) · k / n`.
    Proportional {
        /// The proportionality factor `α` (the paper uses 0.8).
        alpha: f64,
    },
}

impl BiasMeasure {
    /// Whether a group with `count` tuples in the top-`k` and `sd` tuples
    /// overall is biased at `k` (dataset size `n`).
    #[inline]
    pub fn is_biased(&self, count: usize, sd: usize, k: usize, n: usize) -> bool {
        match self {
            BiasMeasure::GlobalLower(b) => count < b.at(k),
            BiasMeasure::Proportional { alpha } => {
                (count as f64) < alpha * (sd as f64) * (k as f64) / (n as f64)
            }
        }
    }

    /// The required representation at `k` (used in reports to show the
    /// bias gap `required − actual`).
    pub fn required(&self, sd: usize, k: usize, n: usize) -> f64 {
        match self {
            BiasMeasure::GlobalLower(b) => b.at(k) as f64,
            BiasMeasure::Proportional { alpha } => alpha * (sd as f64) * (k as f64) / (n as f64),
        }
    }

    /// For the proportional measure: the minimal `k' > k` at which a group
    /// whose top-k count stays `count` becomes biased — the paper’s `k̃`
    /// (Section IV-C). Returns `None` for the global measure.
    ///
    /// The closed form `⌊count·n/(α·s_D)⌋ + 1` can disagree with the
    /// floating-point [`BiasMeasure::is_biased`] predicate by one when
    /// `count·n/(α·s_D)` is an exact integer (the bound computes as
    /// `13.000…002` rather than `13`), so the candidate is aligned to the
    /// predicate — which is the single source of truth — by a bounded
    /// local walk. Since the bound is strictly increasing in `k`, the
    /// biased region is an up-set and the walk moves at most a step or two.
    pub fn k_tilde(&self, count: usize, sd: usize, k: usize, n: usize) -> Option<usize> {
        match self {
            BiasMeasure::GlobalLower(_) => None,
            BiasMeasure::Proportional { alpha } => {
                if sd == 0 || *alpha <= 0.0 {
                    return None;
                }
                let raw = (count as f64) * (n as f64) / (alpha * (sd as f64));
                let mut kt = (raw.floor() as usize + 1).max(k + 1);
                while kt > k + 1 && self.is_biased(count, sd, kt - 1, n) {
                    kt -= 1;
                }
                while kt <= n && !self.is_biased(count, sd, kt, n) {
                    kt += 1;
                }
                Some(kt)
            }
        }
    }

    /// Whether this measure uses the `k̃` schedule (proportional only).
    pub fn is_proportional(&self) -> bool {
        matches!(self, BiasMeasure::Proportional { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bounds() {
        let b = Bounds::constant(5);
        assert_eq!(b.at(0), 5);
        assert_eq!(b.at(100), 5);
    }

    #[test]
    fn step_bounds_match_paper_default() {
        let b = Bounds::paper_default();
        assert_eq!(b.at(9), 0);
        assert_eq!(b.at(10), 10);
        assert_eq!(b.at(19), 10);
        assert_eq!(b.at(20), 20);
        assert_eq!(b.at(39), 30);
        assert_eq!(b.at(49), 40);
        assert_eq!(b.at(500), 40);
    }

    #[test]
    fn steps_sorted_on_construction() {
        let b = Bounds::steps(vec![(20, 20), (10, 10)]);
        assert_eq!(b.at(15), 10);
    }

    #[test]
    fn directly_constructed_unsorted_steps_are_order_independent() {
        // Regression: `Bounds::Steps` is a public variant, so `at` must not
        // assume the pairs arrive sorted (the old `take_while` lookup
        // silently returned 0 here because the first pair already failed
        // the `from <= k` filter).
        let unsorted = Bounds::Steps(vec![(20, 20), (10, 10), (40, 40), (30, 30)]);
        let sorted = Bounds::paper_default();
        for k in 0..=60 {
            assert_eq!(unsorted.at(k), sorted.at(k), "k={k}");
        }
        // Ties on `k_from` resolve to the later entry, like the sorting
        // constructor.
        assert_eq!(Bounds::Steps(vec![(10, 3), (10, 7)]).at(12), 7);
        assert_eq!(Bounds::steps(vec![(10, 3), (10, 7)]).at(12), 7);
    }

    #[test]
    fn linear_fraction_validation() {
        assert_eq!(Bounds::LinearFraction(0.3).validate(), Ok(()));
        assert_eq!(Bounds::constant(5).validate(), Ok(()));
        assert!(Bounds::LinearFraction(f64::NAN).validate().is_err());
        assert_eq!(Bounds::LinearFraction(-0.2).validate(), Err(-0.2));
        assert!(Bounds::LinearFraction(f64::INFINITY).validate().is_err());
    }

    #[test]
    fn linear_fraction_bounds() {
        let b = Bounds::LinearFraction(0.25);
        assert_eq!(b.at(4), 1);
        assert_eq!(b.at(5), 2); // ceil(1.25)
        assert_eq!(b.at(0), 0);
    }

    #[test]
    fn global_bias_predicate() {
        let m = BiasMeasure::GlobalLower(Bounds::constant(2));
        assert!(m.is_biased(1, 10, 5, 16));
        assert!(!m.is_biased(2, 10, 5, 16));
        assert_eq!(m.k_tilde(1, 10, 5, 16), None);
    }

    #[test]
    fn proportional_bias_predicate_matches_example_2_5() {
        // Example 2.5: n = 16, s_D = 8, k = 5 → proportionate ≈ 2.5;
        // with α = 0.8 the bound is 2.0, so count 1 is biased, count 2 not.
        let m = BiasMeasure::Proportional { alpha: 0.8 };
        assert!(m.is_biased(1, 8, 5, 16));
        assert!(!m.is_biased(2, 8, 5, 16));
    }

    #[test]
    fn k_tilde_matches_example_4_7() {
        // α = 0.9, s_D({Gender=F}) = 8, count in top-4 = 2, n = 16 → k̃ = 5.
        let m = BiasMeasure::Proportional { alpha: 0.9 };
        assert_eq!(m.k_tilde(2, 8, 4, 16), Some(5));
        // Example 4.9: {School=MS} count 3 → k̃ = 7;
        // {School=MS, Address=R} s_D = 6, count 3 → k̃ = 9.
        assert_eq!(m.k_tilde(3, 8, 4, 16), Some(7));
        assert_eq!(m.k_tilde(3, 6, 4, 16), Some(9));
    }

    #[test]
    fn k_tilde_is_consistent_with_predicate() {
        // For a grid of inputs (including αs that hit exact floating-point
        // boundaries): not biased for all k < k̃ (count fixed), biased at
        // k̃. This is the exact contract the PropBounds schedule relies on.
        for alpha in [0.7, 0.8, 0.9, 1.0, 1.3] {
            let m = BiasMeasure::Proportional { alpha };
            let n = 63;
            for sd in 1..=n {
                for count in 0..=sd.min(20) {
                    for k in count.max(1)..=40 {
                        if m.is_biased(count, sd, k, n) {
                            continue;
                        }
                        let kt = m.k_tilde(count, sd, k, n).unwrap();
                        for kk in k..kt.min(n) {
                            assert!(
                                !m.is_biased(count, sd, kk, n),
                                "biased before k̃: α={alpha} count={count} sd={sd} k={kk} k̃={kt}"
                            );
                        }
                        if kt <= n {
                            assert!(
                                m.is_biased(count, sd, kt, n),
                                "not biased at k̃: α={alpha} count={count} sd={sd} k̃={kt}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn k_tilde_guard_clamps_to_next_k() {
        let m = BiasMeasure::Proportional { alpha: 0.9 };
        let kt = m.k_tilde(0, 8, 4, 16).unwrap();
        assert_eq!(kt, 5); // raw value would be 1; clamped to k+1
    }

    #[test]
    fn required_reports_bound_value() {
        let g = BiasMeasure::GlobalLower(Bounds::constant(3));
        assert_eq!(g.required(99, 10, 100), 3.0);
        let p = BiasMeasure::Proportional { alpha: 0.8 };
        assert!((p.required(8, 5, 16) - 2.0).abs() < 1e-12);
    }
}
