//! The incremental detection engine behind `GlobalBounds` (Algorithm 2)
//! and `PropBounds` (Algorithm 3).
//!
//! Both algorithms exploit the same observation (Proposition 4.3): the
//! top-`k` and top-`(k+1)` differ by a single tuple `t = R(D)[k+1]`, so the
//! search state for consecutive `k` values is almost identical. The engine
//! keeps every pattern it has ever evaluated in a persistent node store and
//! maintains these invariants between `k` values:
//!
//! * **exact counts** — if `t` satisfies a pattern it satisfies the
//!   pattern’s tree parent, so the set of stored nodes satisfied by `t` is
//!   a connected subtree of the search tree; a single root walk bumps all
//!   their counts by one with *no dataset scans*;
//! * **pure bias** — whether a node is biased is always recomputed from
//!   `(count, s_D, k)`, never cached, so nodes masked below a biased
//!   ancestor can never go stale;
//! * **tracked frontier** — `Res` holds the biased substantial nodes with
//!   no biased proper subset (the output) and `DRes` the dominated ones,
//!   exactly the paper’s two sets; when a stopped node un-biases the engine
//!   resumes the suspended search from that node (the paper’s
//!   `searchFromNode`), promoting newly undominated `DRes` members;
//! * **`k̃` schedule** (proportional only) — every non-biased node is
//!   scheduled at the `k̃` where the growing bound `α·s_D·k/n` would first
//!   overtake its count; entries are validated lazily when popped, so a
//!   count bump simply moves the node’s flip to a later pop.
//!
//! For the global measure the bound is constant between bound steps and
//! counts only grow, so nodes can only *leave* the biased state — no
//! schedule is needed; when `L_k` changes the engine rebuilds from scratch,
//! exactly as Algorithm 2 does (lines 4–5). The streaming path
//! ([`StreamCore::global`]) applies the bound-step extension instead:
//! a store-wide reclassification pass with zero fresh evaluations.
//!
//! ## Arena store and run state
//!
//! The node store is split in two. A [`LowerArena`] holds everything that
//! is a function of the **pattern alone** — the interned pattern, its tree
//! parent, `s_D`, the substantiality verdict, and the generated-children
//! structure — in a flat `Vec` addressed by `u32` ids. Per-run state lives
//! beside it in parallel vectors: `counts[id]` is the node's `s_Rk`
//! (sentinel [`NOT_LIVE`] until the node joins the current run) and
//! `open[id]` is the run-level expansion frontier the count walks descend
//! through. The split buys three things:
//!
//! * [`LowerCheckpoint`] snapshots are **counts-plus-frontier memcpys**
//!   (two flat vectors plus the small `Res`/`DRes` sets) instead of deep
//!   clones of the whole node map — the arena is shared, not copied;
//! * re-expanding a stored node re-activates its children with
//!   **prefix-only recounts** ([`CountsProvider::prefix_count`], a
//!   truncated bitmap scan) — the stored `s_D` is reused, never recomputed;
//! * bound-step rebuilds ([`Engine::reset`] + [`Engine::build`]) keep the
//!   arena and only clear run state, so Algorithm 2's per-step rebuild
//!   also runs on prefix recounts after the first build.
//!
//! The arena is append-only (structure is `k`- and bound-independent), so
//! a checkpoint taken at any time stays consistent with every later arena:
//! restoring extends `counts`/`open` with `NOT_LIVE`/`false` for nodes
//! created after the snapshot. Insertions change `s_D` and the pruned
//! verdicts, so they clear the arena along with the checkpoint store.
//!
//! This module covers the **lower-bound** (under-representation) side
//! only. The §III upper-bound side has its own incremental engine in
//! `upper_engine`, built on the same arena/`walk_counts` machinery but
//! maintaining the *most specific* frontier of the subset-closed
//! over-represented set; the per-`k` searches in [`crate::upper`] remain
//! as its differential anchor.
//!
//! For the live monitor the engine state is additionally **resumable**:
//! [`LowerCheckpoint`] snapshots the run state at a given `k`, and
//! [`lower_replay`] seeks to a stored snapshot, optionally repairs it
//! against a ranking reorder ([`Engine::repair`] — ±count walks over the
//! top-`k` set diff plus one store reclassify), and replays forward over
//! the requested **segments** of the `k` range emitting per-`k` results —
//! the delta re-audit path of [`crate::MonitorAudit`], with zero
//! from-scratch builds on pure reorders.

use std::collections::VecDeque;

use crate::bounds::{BiasMeasure, Bounds};
use crate::pattern::Pattern;
use crate::space::{AttrId, CountsProvider, PatternSpace};
use crate::stats::{
    DeadlineGuard, DetectConfig, DetectionOutput, KResult, ReplayCounters, SearchStats,
};
use crate::util::{FxHashMap, FxHashSet};
use rankfair_data::ValueCode;

const ROOT: u32 = u32::MAX;

/// Sentinel in `counts` marking a node that is not live in the current
/// run. Real counts are bounded by `n`, which fits `TupleId` (u32).
const NOT_LIVE: u32 = u32::MAX;

/// Everything about a node that is a function of its pattern alone —
/// shared across runs, checkpoints and replays without cloning.
#[derive(Debug, Clone)]
struct NodeMeta {
    pattern: Pattern,
    parent: u32,
    sd: u32,
    /// Structural: the children have been generated and stored. Distinct
    /// from the run-level `open` frontier — a node expanded in an earlier
    /// run re-activates its stored children instead of re-evaluating them.
    expanded: bool,
    children: Vec<u32>,
}

/// The lower engine's index-addressed node arena: flat `Vec` of
/// [`NodeMeta`] plus the level-1 child index. Append-only (node structure
/// is independent of `k` and of the bias bound), owned by the
/// [`LowerStore`] between runs and moved — not cloned — into the engine
/// for the duration of a replay.
#[derive(Debug, Default)]
pub(crate) struct LowerArena {
    nodes: Vec<NodeMeta>,
    /// `s_D < τs` verdict per node, kept out of [`NodeMeta`] so the hot
    /// walks resolve the prune-skip from one flat byte array — a closed
    /// node's visit never has to pull its full `NodeMeta` cache line.
    pruned: Vec<bool>,
    /// Level-1 nodes laid out by `card_prefix[attr] + value` — the walk's
    /// entry points.
    root_children: Vec<u32>,
}

impl LowerArena {
    /// Number of interned nodes — the steady-state memory driver.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Drops all interned structure (insertions change `s_D` and the
    /// pruned verdicts, so the arena is rebuilt from scratch).
    pub(crate) fn clear(&mut self) {
        self.nodes.clear();
        self.pruned.clear();
        self.root_children.clear();
    }
}

/// The persistent lower-side store a monitor keeps between batches: one
/// shared arena plus the `k`-grid of counts-only snapshots taken over it.
#[derive(Debug, Default)]
pub(crate) struct LowerStore {
    pub(crate) arena: LowerArena,
    pub(crate) snaps: Vec<LowerCheckpoint>,
}

struct Engine<'a, I: CountsProvider> {
    index: &'a I,
    space: &'a PatternSpace,
    measure: BiasMeasure,
    tau_s: usize,
    n: usize,
    k_max: usize,
    arena: LowerArena,
    /// Per-run `s_Rk` per node, [`NOT_LIVE`] until activated this run.
    counts: Vec<u32>,
    /// Run-level expansion frontier: walks descend through `open` nodes
    /// only. `open[id]` implies every stored child of `id` is live.
    open: Vec<bool>,
    /// `card_prefix[a] = Σ_{b<a} card(b)`. Children of an expanded node are
    /// generated in (attribute, value) order, so the child binding
    /// `(a, v)` sits at `children[card_prefix[a] − card_prefix[ma+1] + v]`
    /// (where `ma` is the node's max attribute) — child lookup is pure
    /// arithmetic, no hashing on the hot walk.
    card_prefix: Vec<u32>,
    /// Flat mirror of `res ∪ keys(dres)`: the walks and rescans test
    /// membership per touched node, so it must be an index read, not two
    /// hash probes. Maintained by `add_stopped`/`remove_stopped`, rebuilt
    /// on restore/reset.
    stopped: Vec<bool>,
    /// Memoized `(k, L_k)` for the global measure: every `is_biased` call
    /// within one step shares `k`, so the bound lookup (a linear scan for
    /// [`Bounds::Steps`]) is hoisted out of the per-node predicate.
    lk_memo: std::cell::Cell<(usize, usize)>,
    res: FxHashSet<u32>,
    /// The dominated biased nodes (`DRes`), each mapped to its
    /// **designated dominator**: one current `res` member whose pattern
    /// is a proper subset. When a `res` member un-biases, only the nodes
    /// designated to it can have lost their last dominator — so the
    /// promotion scan touches `O(|designees|)`, not `O(|DRes|)` (the
    /// full-set scan made every un-bias event cost a pass over all
    /// dominated nodes ever accumulated, which dominated the monitor's
    /// delta re-audits).
    dres: FxHashMap<u32, u32>,
    /// Reverse index: `res` member → nodes designated to it. Entries may
    /// be stale (the designee re-designated or removed); they are
    /// validated against `dres` when consumed.
    dominates: FxHashMap<u32, Vec<u32>>,
    /// `k̃` buckets indexed by `k` (0..=k_max); entries may be stale and are
    /// re-validated when popped.
    schedule: Vec<Vec<u32>>,
    stats: SearchStats,
    /// Activations served by a stored `s_D` plus a truncated prefix scan
    /// instead of a full fused evaluation.
    prefix_recounts: u64,
    /// Reused walk buffers: the DFS stack and the entering tuple's value
    /// codes. Taken/returned by the walks so a replay's per-step walks
    /// never hit the allocator.
    scratch_stack: Vec<u32>,
    scratch_codes: Vec<ValueCode>,
}

impl<'a, I: CountsProvider> Engine<'a, I> {
    fn new(
        index: &'a I,
        space: &'a PatternSpace,
        measure: BiasMeasure,
        tau_s: usize,
        k_max: usize,
    ) -> Self {
        let schedule = if measure.is_proportional() {
            vec![Vec::new(); k_max + 1]
        } else {
            Vec::new()
        };
        let mut card_prefix = Vec::with_capacity(space.n_attrs() + 1);
        let mut acc = 0u32;
        card_prefix.push(0);
        for a in space.attr_ids() {
            acc += u32::try_from(space.card(a)).expect("dictionary cap keeps cardinality in u32");
            card_prefix.push(acc);
        }
        Engine {
            index,
            space,
            measure,
            tau_s,
            n: index.n(),
            k_max,
            arena: LowerArena::default(),
            counts: Vec::new(),
            open: Vec::new(),
            card_prefix,
            stopped: Vec::new(),
            lk_memo: std::cell::Cell::new((usize::MAX, 0)),
            res: FxHashSet::default(),
            dres: FxHashMap::default(),
            dominates: FxHashMap::default(),
            schedule,
            stats: SearchStats::default(),
            prefix_recounts: 0,
            scratch_stack: Vec::new(),
            scratch_codes: Vec::new(),
        }
    }

    /// An engine over a pre-existing arena (no run state yet): the replay
    /// entry point. The arena is moved in, not cloned, and handed back by
    /// [`Engine::into_parts`].
    fn with_arena(
        index: &'a I,
        space: &'a PatternSpace,
        measure: BiasMeasure,
        tau_s: usize,
        k_max: usize,
        arena: LowerArena,
    ) -> Self {
        let mut engine = Engine::new(index, space, measure, tau_s, k_max);
        engine.counts = vec![NOT_LIVE; arena.nodes.len()];
        engine.open = vec![false; arena.nodes.len()];
        engine.stopped = vec![false; arena.nodes.len()];
        engine.arena = arena;
        engine
    }

    /// Tears the engine down, returning the (possibly grown) arena to its
    /// store along with the run's instrumentation.
    fn into_parts(self) -> (LowerArena, SearchStats, u64) {
        (self.arena, self.stats, self.prefix_recounts)
    }

    #[inline]
    fn is_biased(&self, id: u32, k: usize) -> bool {
        debug_assert!(self.counts[id as usize] != NOT_LIVE);
        match &self.measure {
            // Same predicate as `BiasMeasure::is_biased` (`count < L_k`,
            // an exact integer compare — no drift possible), with the
            // `L_k` lookup memoized per `k` instead of re-scanned for
            // every touched node.
            BiasMeasure::GlobalLower(b) => {
                let (mk, ml) = self.lk_memo.get();
                let l = if mk == k {
                    ml
                } else {
                    let l = b.at(k);
                    self.lk_memo.set((k, l));
                    l
                };
                (self.counts[id as usize] as usize) < l
            }
            m => m.is_biased(
                self.counts[id as usize] as usize,
                self.arena.nodes[id as usize].sd as usize,
                k,
                self.n,
            ),
        }
    }

    #[inline]
    fn in_stopped(&self, id: u32) -> bool {
        self.stopped[id as usize]
    }

    /// Evaluates a fresh pattern (one fused bitmap scan), interns the node
    /// in the arena, and gives non-biased nodes their initial `k̃`
    /// schedule entry.
    fn eval_new(&mut self, pattern: Pattern, parent: u32, k: usize) -> u32 {
        let (sd, count) = self.index.counts(&pattern, k);
        self.stats.nodes_evaluated += 1;
        let id = u32::try_from(self.arena.nodes.len()).expect("node ids fit u32");
        let pruned = sd < self.tau_s;
        self.arena.nodes.push(NodeMeta {
            pattern,
            parent,
            // Row counts are bounded by n, which fits TupleId (u32).
            sd: u32::try_from(sd).expect("row counts fit TupleId"),
            expanded: false,
            children: Vec::new(),
        });
        self.arena.pruned.push(pruned);
        self.counts
            .push(u32::try_from(count).expect("row counts fit TupleId"));
        self.open.push(false);
        self.stopped.push(false);
        if !pruned && !self.is_biased(id, k) {
            self.schedule_push(id, k);
        }
        id
    }

    /// Brings a stored node into the current run: the stored `s_D` and
    /// pruned verdict are reused and only the top-`k` prefix is recounted
    /// (a truncated scan that never touches blocks past `k`). Idempotent —
    /// an already-live node is left untouched.
    fn activate(&mut self, id: u32, k: usize) {
        if self.counts[id as usize] != NOT_LIVE {
            return;
        }
        if self.arena.pruned[id as usize] {
            // Live marker only; counts of pruned nodes are never read.
            self.counts[id as usize] = 0;
            return;
        }
        let count = self
            .index
            .prefix_count(&self.arena.nodes[id as usize].pattern, k);
        self.stats.nodes_evaluated += 1;
        self.prefix_recounts += 1;
        self.counts[id as usize] = u32::try_from(count).expect("row counts fit TupleId");
        if !self.is_biased(id, k) {
            self.schedule_push(id, k);
        }
    }

    /// Pushes a `k̃` entry for a currently non-biased node (proportional
    /// measure only; no-op otherwise or when the flip falls past `k_max`).
    fn schedule_push(&mut self, id: u32, k: usize) {
        if self.schedule.is_empty() {
            return;
        }
        if let Some(kt) = self.measure.k_tilde(
            self.counts[id as usize] as usize,
            self.arena.nodes[id as usize].sd as usize,
            k,
            self.n,
        ) {
            if kt <= self.k_max {
                self.schedule[kt].push(id);
            }
        }
    }

    /// Opens `id`'s search-tree children (Definition 4.1) in the current
    /// run: stored children are re-activated with prefix recounts, a node
    /// never expanded before generates (and fully evaluates) them fresh.
    /// Idempotent per run.
    fn expand(&mut self, id: u32, k: usize) {
        if self.open[id as usize] {
            return;
        }
        if self.arena.nodes[id as usize].expanded {
            for i in 0..self.arena.nodes[id as usize].children.len() {
                let c = self.arena.nodes[id as usize].children[i];
                self.activate(c, k);
            }
        } else {
            let (start, pattern) = {
                let nd = &self.arena.nodes[id as usize];
                (
                    nd.pattern.max_attr().map_or(0, |a| a + 1),
                    nd.pattern.clone(),
                )
            };
            let m = self.space.n_attrs() as AttrId;
            let mut children = Vec::new();
            for a in start..m {
                for v in self.space.value_codes(a) {
                    children.push(self.eval_new(pattern.child(a, v), id, k));
                }
            }
            let nd = &mut self.arena.nodes[id as usize];
            nd.children = children;
            nd.expanded = true;
        }
        self.open[id as usize] = true;
    }

    /// Records `d`'s designation to `dom` in the reverse index. Lists are
    /// append-mostly with lazily validated (possibly duplicate) entries;
    /// when one outgrows twice the whole dominated set it is compacted in
    /// place — valid entries deduped, stale ones dropped — so a node
    /// flip-flopping under a long-lived dominator cannot grow the list
    /// (and every checkpoint clone of it) without bound.
    fn push_designee(&mut self, dom: u32, d: u32) {
        let dres = &self.dres;
        let list = self.dominates.entry(dom).or_default();
        list.push(d);
        if list.len() > 2 * dres.len() + 8 {
            list.retain(|&x| dres.get(&x) == Some(&dom));
            list.sort_unstable();
            list.dedup();
        }
    }

    /// Inserts a newly biased node into `Res`/`DRes`, demoting any `Res`
    /// members it dominates. Idempotent.
    fn add_stopped(&mut self, id: u32) {
        if self.in_stopped(id) {
            return;
        }
        let p = &self.arena.nodes[id as usize].pattern;
        let dominator = self
            .res
            .iter()
            .copied()
            .find(|&r| self.arena.nodes[r as usize].pattern.is_subset_of(p));
        if let Some(dom) = dominator {
            self.dres.insert(id, dom);
            self.stopped[id as usize] = true;
            self.push_designee(dom, id);
        } else {
            let demote: Vec<u32> = self
                .res
                .iter()
                .copied()
                .filter(|&r| p.is_proper_subset_of(&self.arena.nodes[r as usize].pattern))
                .collect();
            let mut mine: Vec<u32> = Vec::new();
            for r in demote {
                self.res.remove(&r);
                // Everything designated to `r` is also dominated by the
                // strictly more general `id` — re-point in O(designees).
                for d in self.dominates.remove(&r).unwrap_or_default() {
                    if self.dres.get(&d) == Some(&r) {
                        self.dres.insert(d, id);
                        mine.push(d);
                    }
                }
                self.dres.insert(r, id);
                mine.push(r);
            }
            if !mine.is_empty() {
                self.dominates.entry(id).or_default().extend(mine);
            }
            self.res.insert(id);
            self.stopped[id as usize] = true;
        }
    }

    /// Removes a node that stopped being biased, promoting `DRes` members
    /// it was the last `Res` dominator of. Only the nodes *designated* to
    /// the removed member are candidates: every other dominated node has
    /// a designated dominator still in `res`, so it cannot have lost its
    /// last one. Candidates are processed most-general-first so a
    /// promoted pattern immediately dominates its own supersets.
    fn remove_stopped(&mut self, id: u32, k: usize) {
        self.stopped[id as usize] = false;
        if self.res.remove(&id) {
            let mut cands = self.dominates.remove(&id).unwrap_or_default();
            cands.retain(|&d| self.dres.get(&d) == Some(&id));
            cands.sort_by_key(|&d| (self.arena.nodes[d as usize].pattern.len(), d));
            for d in cands {
                // Designation lists can hold duplicates (a node designated
                // here, moved away, then designated here again): re-check
                // so a second occurrence of an already promoted or
                // re-designated node is skipped — processing it again
                // would self-designate a fresh `res` member into `dres`.
                if self.dres.get(&d) != Some(&id) {
                    continue;
                }
                // A candidate that flipped non-biased in this same round is
                // left for its own pending transition event (its dangling
                // designation dies with that event's `dres` removal).
                if !self.is_biased(d, k) {
                    continue;
                }
                let dp = &self.arena.nodes[d as usize].pattern;
                let dominator = self
                    .res
                    .iter()
                    .copied()
                    .find(|&r| self.arena.nodes[r as usize].pattern.is_subset_of(dp));
                if let Some(dom) = dominator {
                    self.dres.insert(d, dom);
                    self.push_designee(dom, d);
                } else {
                    self.dres.remove(&d);
                    self.res.insert(d);
                }
            }
        } else {
            self.dres.remove(&id);
        }
    }

    /// Whether all tree ancestors of `id` are currently non-biased (the
    /// node is on the live search frontier rather than masked below a
    /// biased ancestor).
    fn tree_minimal(&self, id: u32, k: usize) -> bool {
        let mut cur = self.arena.nodes[id as usize].parent;
        while cur != ROOT {
            if self.is_biased(cur, k) {
                return false;
            }
            cur = self.arena.nodes[cur as usize].parent;
        }
        true
    }

    /// The paper’s `searchFromNode`: resumes the suspended search below a
    /// node that just stopped being biased, expanding any frontier not yet
    /// opened and stopping at (and registering) biased descendants.
    fn resume_subtree(&mut self, id: u32, k: usize, guard: &mut DeadlineGuard) -> bool {
        let mut stack = vec![id];
        while let Some(nid) = stack.pop() {
            if guard.expired() {
                return false;
            }
            self.expand(nid, k);
            for i in 0..self.arena.nodes[nid as usize].children.len() {
                let c = self.arena.nodes[nid as usize].children[i];
                if self.arena.pruned[c as usize] {
                    continue;
                }
                if self.is_biased(c, k) {
                    self.add_stopped(c);
                } else {
                    stack.push(c);
                }
            }
        }
        true
    }

    /// Full top-down build at `k` (used for `k_min` and for global-bound
    /// steps). Breadth-first so dominance sees subsets before supersets.
    /// With a populated arena the whole pass runs on prefix recounts —
    /// fresh fused evaluations happen only for never-seen patterns.
    fn build(&mut self, k: usize, guard: &mut DeadlineGuard) -> bool {
        self.stats.full_searches += 1;
        let mut queue: VecDeque<u32> = VecDeque::new();
        if self.arena.root_children.is_empty() {
            let m = self.space.n_attrs() as AttrId;
            for a in 0..m {
                for v in self.space.value_codes(a) {
                    let id = self.eval_new(Pattern::single(a, v), ROOT, k);
                    self.arena.root_children.push(id);
                    queue.push_back(id);
                }
            }
        } else {
            for i in 0..self.arena.root_children.len() {
                let id = self.arena.root_children[i];
                self.activate(id, k);
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            if guard.expired() {
                return false;
            }
            if self.arena.pruned[id as usize] {
                continue;
            }
            if self.is_biased(id, k) {
                self.add_stopped(id);
            } else {
                self.expand(id, k);
                for &c in &self.arena.nodes[id as usize].children {
                    queue.push_back(c);
                }
            }
        }
        true
    }

    /// Clears the run state for a fresh build (global-bound steps). The
    /// arena is kept: the follow-up [`Engine::build`] re-activates the
    /// stored structure with prefix recounts instead of re-evaluating it.
    fn reset(&mut self) {
        self.counts.clear();
        self.counts.resize(self.arena.nodes.len(), NOT_LIVE);
        self.open.clear();
        self.open.resize(self.arena.nodes.len(), false);
        self.stopped.clear();
        self.stopped.resize(self.arena.nodes.len(), false);
        self.res.clear();
        self.dres.clear();
        self.dominates.clear();
        for bucket in &mut self.schedule {
            bucket.clear();
        }
    }

    /// Phase 1 of an incremental step: bump the count of every live node
    /// the newly ranked tuple satisfies (a connected subtree reachable from
    /// the root), collecting nodes whose bias classification may flip.
    fn walk_counts(&mut self, k: usize, cands: &mut FxHashSet<u32>) {
        let t_pos = k - 1;
        let m = self.space.n_attrs() as AttrId;
        // Hoist the tuple's value codes into one contiguous buffer: the
        // inner loop below reads a code per remaining attribute for every
        // open node, and `code_at` is a per-column indirection. Both
        // buffers are engine-owned scratch, so steady-state steps are
        // allocation-free.
        let mut codes = std::mem::take(&mut self.scratch_codes);
        codes.clear();
        codes.extend((0..m).map(|a| self.index.code_at(t_pos, a)));
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        for a in 0..m {
            let idx =
                self.card_prefix[usize::from(a)] as usize + usize::from(codes[usize::from(a)]);
            stack.push(self.arena.root_children[idx]);
        }
        while let Some(id) = stack.pop() {
            if self.arena.pruned[id as usize] {
                continue; // counts of pruned leaves are never read
            }
            self.counts[id as usize] += 1;
            self.stats.nodes_touched += 1;
            if self.is_biased(id, k) != self.in_stopped(id) {
                cands.insert(id);
            }
            if self.open[id as usize] {
                let start = self.arena.nodes[id as usize]
                    .pattern
                    .max_attr()
                    .map_or(0, |a| a + 1);
                let base = self.card_prefix[usize::from(start)];
                for a in start..m {
                    let idx = (self.card_prefix[usize::from(a)] - base) as usize
                        + usize::from(codes[usize::from(a)]);
                    stack.push(self.arena.nodes[id as usize].children[idx]);
                }
            }
        }
        self.scratch_codes = codes;
        self.scratch_stack = stack;
    }

    /// Phase 2 (proportional only): drain the `k̃` bucket for `k`. Stale
    /// entries (count grew since scheduling) are re-inserted at their
    /// recomputed `k̃`; genuine flips join the transition candidates.
    fn pop_schedule(&mut self, k: usize, cands: &mut FxHashSet<u32>) {
        if self.schedule.is_empty() {
            return;
        }
        let bucket = std::mem::take(&mut self.schedule[k]);
        for id in bucket {
            self.stats.schedule_pops += 1;
            if self.arena.pruned[id as usize] || self.counts[id as usize] == NOT_LIVE {
                continue;
            }
            let biased = self.is_biased(id, k);
            if biased != self.in_stopped(id) {
                cands.insert(id);
            }
            if !biased {
                self.schedule_push(id, k);
            }
        }
    }

    /// Phase 3: apply bias transitions, most-general patterns first.
    fn apply_transitions(
        &mut self,
        k: usize,
        cands: FxHashSet<u32>,
        guard: &mut DeadlineGuard,
    ) -> bool {
        let mut ids: Vec<u32> = cands.into_iter().collect();
        ids.sort_by_key(|&id| (self.arena.nodes[id as usize].pattern.len(), id));
        for id in ids {
            let before = self.in_stopped(id);
            let after = self.is_biased(id, k);
            if before && !after {
                self.remove_stopped(id, k);
                self.schedule_push(id, k);
                if !self.arena.pruned[id as usize]
                    && self.tree_minimal(id, k)
                    && !self.resume_subtree(id, k, guard)
                {
                    return false;
                }
            } else if !before && after && !self.arena.pruned[id as usize] {
                self.add_stopped(id);
            }
        }
        true
    }

    /// Adds or removes one tuple's worth of counts: the subtree walk of
    /// [`Engine::walk_counts`] with a signed delta and no candidate
    /// collection (repairs reclassify the whole store afterwards).
    /// `t_pos` is any rank position whose index codes are the tuple's —
    /// for a tuple that left the top-`k`, its new position below `k`.
    /// With `touched_down`, decremented node ids are collected so the
    /// proportional `k̃` schedule can be refreshed (a smaller count flips
    /// *earlier*; a stale later entry would miss the flip — the inverse
    /// of the growth-only staleness `pop_schedule` tolerates).
    fn walk_delta(&mut self, t_pos: usize, up: bool, mut touched_down: Option<&mut Vec<u32>>) {
        let m = self.space.n_attrs() as AttrId;
        let mut codes = std::mem::take(&mut self.scratch_codes);
        codes.clear();
        codes.extend((0..m).map(|a| self.index.code_at(t_pos, a)));
        let mut stack = std::mem::take(&mut self.scratch_stack);
        stack.clear();
        for a in 0..m {
            let idx =
                self.card_prefix[usize::from(a)] as usize + usize::from(codes[usize::from(a)]);
            stack.push(self.arena.root_children[idx]);
        }
        while let Some(id) = stack.pop() {
            if self.arena.pruned[id as usize] {
                continue; // counts of pruned leaves are never read
            }
            if up {
                self.counts[id as usize] += 1;
            } else {
                self.counts[id as usize] -= 1;
                if let Some(list) = touched_down.as_deref_mut() {
                    list.push(id);
                }
            }
            self.stats.nodes_touched += 1;
            if self.open[id as usize] {
                let start = self.arena.nodes[id as usize]
                    .pattern
                    .max_attr()
                    .map_or(0, |a| a + 1);
                let base = self.card_prefix[usize::from(start)];
                for a in start..m {
                    let idx = (self.card_prefix[usize::from(a)] - base) as usize
                        + usize::from(codes[usize::from(a)]);
                    stack.push(self.arena.nodes[id as usize].children[idx]);
                }
            }
        }
        self.scratch_codes = codes;
        self.scratch_stack = stack;
    }

    /// Repairs this state (positioned at `k`) after a pure reorder
    /// changed its top-`k` **set**: subtracts the leaving tuples, adds
    /// the entering ones (positions in the *patched* index), then
    /// reclassifies the whole store and applies the transitions — the
    /// same both-directions machinery the bound-step rescan uses, so
    /// counts may move either way. `s_D`, `n` and the pruned flags are
    /// untouched by a reorder, which is exactly why this repair is sound
    /// (an insertion moves those and voids the checkpoint instead).
    fn repair(
        &mut self,
        k: usize,
        entering: &[usize],
        leaving: &[usize],
        guard: &mut DeadlineGuard,
    ) -> bool {
        let mut touched_down = if self.schedule.is_empty() {
            None
        } else {
            Some(Vec::new())
        };
        for &pos in leaving {
            self.walk_delta(pos, false, touched_down.as_mut());
        }
        for &pos in entering {
            self.walk_delta(pos, true, None);
        }
        let mut cands = FxHashSet::default();
        self.rescan_all(k, &mut cands);
        if !self.apply_transitions(k, cands, guard) {
            return false;
        }
        // Refresh k̃ entries for every decremented, still-unbiased node:
        // its flip moved earlier, so the pre-repair entry alone could be
        // popped too late.
        if let Some(ids) = touched_down {
            for id in ids {
                if !self.arena.pruned[id as usize] && !self.in_stopped(id) {
                    self.schedule_push(id, k);
                }
            }
        }
        true
    }

    /// Extension beyond the paper: handles an *increase* of the global
    /// lower bound without the full rebuild Algorithm 2 performs.
    ///
    /// When `L` grows, nodes can only *enter* the biased state, and every
    /// most general biased pattern under the new bound is already stored
    /// (its tree ancestors are non-biased under the new bound, hence were
    /// non-biased — and therefore expanded — under every earlier, smaller
    /// bound). A single pass over the live store reclassifies without a
    /// single fresh pattern evaluation.
    fn rescan_all(&mut self, k: usize, cands: &mut FxHashSet<u32>) {
        for id in 0..u32::try_from(self.arena.nodes.len()).expect("node ids fit u32") {
            if self.arena.pruned[id as usize] || self.counts[id as usize] == NOT_LIVE {
                continue;
            }
            self.stats.nodes_touched += 1;
            if self.is_biased(id, k) != self.in_stopped(id) {
                cands.insert(id);
            }
        }
    }

    /// One incremental step `k−1 → k`: walk the entering tuple, handle
    /// bound steps (store rescan with `fast_steps`, Algorithm 2's rebuild
    /// without), drain the `k̃` schedule, apply transitions. The batch
    /// driver, the streaming core and the checkpointed monitor replay all
    /// step through exactly this function, so no execution mode can drift
    /// from another.
    fn advance(
        &mut self,
        k: usize,
        bounds_for_steps: Option<&Bounds>,
        fast_steps: bool,
        guard: &mut DeadlineGuard,
    ) -> bool {
        match bounds_for_steps {
            // A bound *increase* with the extension enabled: walk the new
            // tuple, then reclassify the whole store.
            Some(b) if fast_steps && b.at(k) > b.at(k - 1) => {
                let mut cands = FxHashSet::default();
                self.walk_counts(k, &mut cands);
                self.rescan_all(k, &mut cands);
                self.apply_transitions(k, cands, guard)
            }
            // Algorithm 2, lines 4–5: a bound change invalidates the
            // incremental frontier — run a fresh search. (Also the
            // fallback for decreasing bounds, where the rescan argument
            // does not apply.) The arena survives the reset, so the
            // rebuild runs on prefix recounts.
            Some(b) if b.at(k) != b.at(k - 1) => {
                self.reset();
                self.build(k, guard)
            }
            _ => {
                let mut cands = FxHashSet::default();
                self.walk_counts(k, &mut cands);
                self.pop_schedule(k, &mut cands);
                self.apply_transitions(k, cands, guard)
            }
        }
    }

    /// Copies the run state into a resumable [`LowerCheckpoint`] anchored
    /// at `k` — two flat-vector memcpys plus the frontier sets; the arena
    /// (patterns, `s_D`, tree structure) is **not** cloned.
    fn to_checkpoint(&self, k: usize) -> LowerCheckpoint {
        LowerCheckpoint {
            k,
            counts: self.counts.clone(),
            open: self.open.clone(),
            res: self.res.clone(),
            dres: self.dres.clone(),
            dominates: self.dominates.clone(),
            schedule: self.schedule.clone(),
        }
    }

    /// Overwrites the run state from a stored checkpoint, positioning the
    /// engine at `cp.k`; the next [`Engine::advance`] call must be for
    /// `cp.k + 1`. Nodes interned after the snapshot was taken restore as
    /// not-live.
    fn restore(&mut self, cp: &LowerCheckpoint) {
        self.counts.clear();
        self.counts.extend_from_slice(&cp.counts);
        self.counts.resize(self.arena.nodes.len(), NOT_LIVE);
        self.open.clear();
        self.open.extend_from_slice(&cp.open);
        self.open.resize(self.arena.nodes.len(), false);
        self.res = cp.res.clone();
        self.dres = cp.dres.clone();
        self.dominates = cp.dominates.clone();
        self.schedule = cp.schedule.clone();
        self.stopped.clear();
        self.stopped.resize(self.arena.nodes.len(), false);
        for &id in self.res.iter().chain(self.dres.keys()) {
            self.stopped[id as usize] = true;
        }
    }

    /// The current `Res` as sorted patterns.
    fn snapshot(&self, k: usize) -> KResult {
        let mut patterns: Vec<Pattern> = self
            .res
            .iter()
            .map(|&id| self.arena.nodes[id as usize].pattern.clone())
            .collect();
        patterns.sort_unstable();
        KResult { k, patterns }
    }

    fn run(
        mut self,
        cfg: &DetectConfig,
        bounds_for_steps: Option<&Bounds>,
        fast_steps: bool,
    ) -> DetectionOutput {
        let mut guard = DeadlineGuard::new(cfg.deadline);
        let mut per_k = Vec::with_capacity(cfg.range_len());
        let mut ok = self.build(cfg.k_min, &mut guard);
        if ok {
            per_k.push(self.snapshot(cfg.k_min));
            for k in cfg.k_min + 1..=cfg.k_max {
                if !self.advance(k, bounds_for_steps, fast_steps, &mut guard) {
                    ok = false;
                    break;
                }
                per_k.push(self.snapshot(k));
            }
        }
        self.stats.timed_out = !ok;
        self.stats.elapsed = guard.elapsed();
        DetectionOutput {
            per_k,
            stats: self.stats,
        }
    }
}

fn check_range<I: CountsProvider>(index: &I, cfg: &DetectConfig) {
    assert!(
        cfg.k_max <= index.n(),
        "k_max ({}) exceeds the number of ranked tuples ({})",
        cfg.k_max,
        index.n()
    );
}

/// A lazy, resumable detection run: yields the [`KResult`] for each `k`
/// in `[k_min, k_max]` on demand, maintaining the incremental engine
/// between calls — the under-representation half of
/// `Audit::run_streaming`.
///
/// Useful when a consumer inspects results `k` by `k` (an interactive
/// audit UI, or an early-exit search for the first `k` with a biased
/// group) — later `k` values are never computed unless requested, and the
/// incremental state is reused exactly as in the batch algorithms.
pub(crate) struct StreamCore<'a, I: CountsProvider> {
    engine: Engine<'a, I>,
    cfg: DetectConfig,
    bounds_for_steps: Option<Bounds>,
    fast_steps: bool,
    guard: DeadlineGuard,
    next_k: usize,
    failed: bool,
}

impl<'a, I: CountsProvider> StreamCore<'a, I> {
    /// Streaming `GlobalBounds` (with the fast bound-step extension).
    pub fn global(
        index: &'a I,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        bounds: &Bounds,
    ) -> Self {
        check_range(index, cfg);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        StreamCore {
            engine: Engine::new(index, space, measure, cfg.tau_s, cfg.k_max),
            cfg: cfg.clone(),
            bounds_for_steps: Some(bounds.clone()),
            fast_steps: true,
            guard: DeadlineGuard::new(cfg.deadline),
            next_k: cfg.k_min,
            failed: false,
        }
    }

    /// Streaming `PropBounds`.
    pub fn proportional(
        index: &'a I,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        alpha: f64,
    ) -> Self {
        check_range(index, cfg);
        assert!(alpha > 0.0, "alpha must be positive");
        let measure = BiasMeasure::Proportional { alpha };
        StreamCore {
            engine: Engine::new(index, space, measure, cfg.tau_s, cfg.k_max),
            cfg: cfg.clone(),
            bounds_for_steps: None,
            fast_steps: false,
            guard: DeadlineGuard::new(cfg.deadline),
            next_k: cfg.k_min,
            failed: false,
        }
    }

    /// Instrumentation counters accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.engine.stats
    }

    /// Whether the stream stopped early because the deadline fired.
    pub fn timed_out(&self) -> bool {
        self.failed
    }
}

impl<I: CountsProvider> Iterator for StreamCore<'_, I> {
    type Item = KResult;

    fn next(&mut self) -> Option<KResult> {
        if self.failed || self.next_k > self.cfg.k_max {
            return None;
        }
        let k = self.next_k;
        let ok = if k == self.cfg.k_min {
            self.engine.build(k, &mut self.guard)
        } else {
            self.engine.advance(
                k,
                self.bounds_for_steps.as_ref(),
                self.fast_steps,
                &mut self.guard,
            )
        };
        if !ok {
            self.failed = true;
            return None;
        }
        self.next_k += 1;
        Some(self.engine.snapshot(k))
    }
}

/// `GlobalBounds` (Algorithm 2): detection of groups with biased
/// representation under global lower bounds, incremental across the `k`
/// range.
pub(crate) fn global_bounds<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    bounds: &Bounds,
) -> DetectionOutput {
    check_range(index, cfg);
    let measure = BiasMeasure::GlobalLower(bounds.clone());
    let engine = Engine::new(index, space, measure, cfg.tau_s, cfg.k_max);
    engine.run(cfg, Some(bounds), false)
}

/// A resumable snapshot of the lower engine's **run state** — per-node
/// counts, the open frontier, the `Res`/`DRes` sets and the `k̃` schedule
/// — anchored at a specific `k`. The node structure itself (patterns,
/// `s_D`, tree shape) lives in the [`LowerArena`] shared by every
/// snapshot, so taking one is a counts-plus-frontier memcpy, not a deep
/// clone of the node map. The live monitor keeps one of these every `C`
/// values of `k` so a delta re-audit can seek to the checkpoint at or
/// below a segment start and replay forward with per-`k` subtree walks,
/// instead of paying a from-scratch top-down build.
///
/// Validity under edits: every stored count is `|top-k ∩ p|`, a function
/// of the top-`k` **set** alone, and the frontier sets are determined by
/// those counts plus store structure. A pure reorder of rank positions
/// `[lo, hi]` leaves the top-`k` set unchanged for `k ≤ lo` and `k > hi`
/// — and for every `k` no row's net movement crossed, which is what
/// segmented replay exploits — so those checkpoints stay exact;
/// insertions move `n` and `s_D`, invalidating every checkpoint and the
/// arena itself.
#[derive(Debug, Clone)]
pub(crate) struct LowerCheckpoint {
    /// The `k` whose state this snapshot holds.
    pub(crate) k: usize,
    counts: Vec<u32>,
    open: Vec<bool>,
    res: FxHashSet<u32>,
    dres: FxHashMap<u32, u32>,
    dominates: FxHashMap<u32, Vec<u32>>,
    schedule: Vec<Vec<u32>>,
}

impl LowerCheckpoint {
    /// Number of node slots snapshotted (the checkpoint's memory
    /// footprint driver — one `u32` + one `bool` each, not a node clone).
    pub(crate) fn stored_nodes(&self) -> usize {
        self.counts.len()
    }
}

/// Grid-snapshot maintenance for the lower store — the shared policy
/// lives in [`crate::audit::maintain_grid_snapshot`]. Returns whether a
/// snapshot was written (inserted or overwritten) at `k`.
fn maybe_checkpoint<I: CountsProvider>(
    store: &mut Vec<LowerCheckpoint>,
    engine: &Engine<'_, I>,
    k: usize,
    k_min: usize,
    cadence: usize,
    heal_cutoff: Option<usize>,
) -> bool {
    crate::audit::maintain_grid_snapshot(
        store,
        k,
        k_min,
        cadence,
        heal_cutoff,
        |cp| cp.k,
        || engine.to_checkpoint(k),
    )
}

/// Checkpointed execution of the lower (under-representation) side over
/// the given `k` **segments** (sorted, disjoint) — the monitor's delta
/// re-audit core.
///
/// For each segment the replay seeks to the latest stored checkpoint at
/// or below the segment start (or keeps stepping from the previous
/// segment's end when that is at least as cheap) and replays forward with
/// per-`k` subtree walks. When the edit hull swallowed a seek checkpoint
/// (`cp.k > reorder.lo`), it is **repaired** in place from the top-`k`
/// set diff rather than discarded — but only when that diff is non-empty:
/// checkpoints in the gaps *between* segments are exact by construction
/// (no row's net movement crossed their `k`), and checkpoints already
/// healed by an earlier segment of this call hold the new state, so both
/// are used as-is. A delta re-audit therefore performs **zero**
/// from-scratch builds on any pure reorder. With an empty store (initial
/// audit, or after an insertion voided it) it builds at `k_min` exactly
/// like a fresh run — on the shared arena, so even cold builds after the
/// first run on prefix recounts. Every replayed grid `k` rewrites its
/// snapshot, keeping the whole store valid after every batch.
/// Output-equivalent to [`global_bounds`] / [`prop_bounds`] on the
/// replayed `k` values — asserted by the differential sweeps.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lower_replay<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    measure: &BiasMeasure,
    cfg: &DetectConfig,
    spans: &[(usize, usize)],
    reorder: Option<(&crate::audit::ReorderSpec, &[rankfair_data::TupleId])>,
    store: &mut LowerStore,
    cadence: usize,
    counters: &mut ReplayCounters,
) -> DetectionOutput {
    debug_assert!(cadence >= 1);
    debug_assert!(spans
        .iter()
        .all(|&(lo, hi)| cfg.k_min <= lo && lo <= hi && hi <= cfg.k_max));
    debug_assert!(spans.windows(2).all(|w| w[0].1 < w[1].0));
    let bounds_for_steps = match measure {
        BiasMeasure::GlobalLower(b) => Some(b.clone()),
        BiasMeasure::Proportional { .. } => None,
    };
    // No deadline: monitors reject deadlines at construction, so a replay
    // can never truncate mid-span.
    let mut guard = DeadlineGuard::new(None);
    let mut per_k = Vec::with_capacity(spans.iter().map(|&(lo, hi)| hi - lo + 1).sum());
    counters.segments += spans.len() as u64;
    let mut engine = Engine::with_arena(
        index,
        space,
        measure.clone(),
        cfg.tau_s,
        cfg.k_max,
        std::mem::take(&mut store.arena),
    );
    // Grid ks whose snapshot was rewritten by this call: those hold the
    // *new* state, so a later segment seeking to one must not repair it.
    let mut healed: FxHashSet<usize> = FxHashSet::default();
    let mut positioned: Option<usize> = None;
    for &(k_lo, k_hi) in spans {
        // Reorder replays re-clone at most the grid snapshots nearest each
        // segment start; see `maybe_checkpoint`.
        let heal_cutoff = reorder.is_some().then_some(k_lo + cadence);
        let seek = store.snaps.iter().rposition(|cp| cp.k <= k_lo);
        let mut k_cur = match (positioned, seek) {
            // Stepping on from the previous segment's end is at least as
            // cheap as restoring a snapshot at or below it.
            (Some(p), seek) if p <= k_lo && seek.is_none_or(|i| store.snaps[i].k <= p) => p,
            (_, Some(i)) => {
                counters.seeks += 1;
                let cp_k = store.snaps[i].k;
                engine.restore(&store.snaps[i]);
                if let Some((spec, new_order)) = reorder {
                    if cp_k > spec.lo && !healed.contains(&cp_k) {
                        let (entering, leaving) =
                            crate::audit::top_k_diff(cp_k, spec.lo, &spec.old_order, new_order);
                        if !(entering.is_empty() && leaving.is_empty()) {
                            engine.repair(cp_k, &entering, &leaving, &mut guard);
                            counters.repairs += 1;
                            store.snaps[i] = engine.to_checkpoint(cp_k);
                            healed.insert(cp_k);
                        }
                    }
                }
                cp_k
            }
            _ => {
                counters.cold_builds += 1;
                counters.replayed_steps += 1;
                engine.reset();
                engine.build(cfg.k_min, &mut guard);
                if maybe_checkpoint(
                    &mut store.snaps,
                    &engine,
                    cfg.k_min,
                    cfg.k_min,
                    cadence,
                    None,
                ) {
                    healed.insert(cfg.k_min);
                }
                cfg.k_min
            }
        };
        if k_cur >= k_lo {
            per_k.push(engine.snapshot(k_cur));
        }
        while k_cur < k_hi {
            k_cur += 1;
            engine.advance(k_cur, bounds_for_steps.as_ref(), true, &mut guard);
            counters.replayed_steps += 1;
            if k_cur >= k_lo {
                per_k.push(engine.snapshot(k_cur));
            }
            if maybe_checkpoint(
                &mut store.snaps,
                &engine,
                k_cur,
                cfg.k_min,
                cadence,
                heal_cutoff,
            ) {
                healed.insert(k_cur);
            }
        }
        positioned = Some(k_cur);
    }
    let (arena, mut stats, prefix_recounts) = engine.into_parts();
    store.arena = arena;
    counters.prefix_recounts += prefix_recounts;
    stats.elapsed = guard.elapsed();
    DetectionOutput { per_k, stats }
}

/// `PropBounds` (Algorithm 3): detection of groups with biased
/// proportional representation, incremental across the `k` range with
/// `k̃` scheduling.
pub(crate) fn prop_bounds<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    alpha: f64,
) -> DetectionOutput {
    check_range(index, cfg);
    assert!(alpha > 0.0, "alpha must be positive");
    let measure = BiasMeasure::Proportional { alpha };
    let engine = Engine::new(index, space, measure, cfg.tau_s, cfg.k_max);
    engine.run(cfg, None, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::RankedIndex;
    use crate::topdown::iter_td;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn fig1() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    fn names(space: &PatternSpace, pats: &[Pattern]) -> Vec<String> {
        pats.iter().map(|p| space.display(p)).collect()
    }

    #[test]
    fn example_4_6_global_bounds_k4_to_k5() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(4, 4, 5);
        let out = global_bounds(&index, &space, &cfg, &Bounds::constant(2));
        assert_eq!(out.per_k.len(), 2);
        let k4 = names(&space, &out.per_k[0].patterns);
        assert!(k4.contains(&"{Address=U}".to_string()));
        assert!(k4.contains(&"{Failures=1}".to_string()));
        let k5 = names(&space, &out.per_k[1].patterns);
        for e in [
            "{School=GP}",
            "{Failures=2}",
            "{Address=U, Failures=1}",
            "{Gender=F, Address=U}",
            "{Gender=M, Address=U}",
            "{Gender=F, Failures=1}",
            "{Address=R, Failures=1}",
            "{Gender=F, School=MS}",
            "{Gender=F, Address=R}",
        ] {
            assert!(k5.contains(&e.to_string()), "missing {e} in {k5:?}");
        }
        assert_eq!(k5.len(), 9);
    }

    #[test]
    fn example_4_9_prop_bounds_k4_to_k5() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(5, 4, 5);
        let out = prop_bounds(&index, &space, &cfg, 0.9);
        let k4 = names(&space, &out.per_k[0].patterns);
        assert_eq!(k4, vec!["{School=GP}", "{Address=U}", "{Failures=1}"]);
        let k5 = names(&space, &out.per_k[1].patterns);
        assert!(k5.contains(&"{Gender=F}".to_string()));
        assert_eq!(k5.len(), 4);
    }

    #[test]
    fn global_bounds_matches_iter_td_on_fig1_sweep() {
        let (space, index) = fig1();
        for tau in [1, 2, 4, 6] {
            for l in [1, 2, 3, 5] {
                let cfg = DetectConfig::new(tau, 2, 16);
                let bounds = Bounds::constant(l);
                let measure = BiasMeasure::GlobalLower(bounds.clone());
                let base = iter_td(&index, &space, &cfg, &measure);
                let opt = global_bounds(&index, &space, &cfg, &bounds);
                assert_eq!(base.per_k, opt.per_k, "tau={tau} l={l}");
            }
        }
    }

    #[test]
    fn global_bounds_with_steps_matches_iter_td() {
        let (space, index) = fig1();
        let bounds = Bounds::steps(vec![(2, 1), (6, 2), (10, 3)]);
        let cfg = DetectConfig::new(2, 2, 16);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = global_bounds(&index, &space, &cfg, &bounds);
        assert_eq!(base.per_k, opt.per_k);
        // One initial build plus one rebuild per bound step inside (2,16].
        assert_eq!(opt.stats.full_searches, 3);
    }

    #[test]
    fn prop_bounds_matches_iter_td_on_fig1_sweep() {
        let (space, index) = fig1();
        for tau in [1, 2, 4, 6] {
            for alpha in [0.3, 0.5, 0.8, 0.9, 1.0, 1.2] {
                let cfg = DetectConfig::new(tau, 2, 16);
                let measure = BiasMeasure::Proportional { alpha };
                let base = iter_td(&index, &space, &cfg, &measure);
                let opt = prop_bounds(&index, &space, &cfg, alpha);
                assert_eq!(base.per_k, opt.per_k, "tau={tau} alpha={alpha}");
            }
        }
    }

    #[test]
    fn optimized_examines_fewer_patterns_than_baseline() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let bounds = Bounds::constant(2);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = global_bounds(&index, &space, &cfg, &bounds);
        assert!(
            opt.stats.patterns_examined() < base.stats.patterns_examined(),
            "optimized {} >= baseline {}",
            opt.stats.patterns_examined(),
            base.stats.patterns_examined()
        );
    }

    #[test]
    fn lower_replay_matches_batch_and_seeks_checkpoints() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        for measure in [
            BiasMeasure::GlobalLower(Bounds::steps(vec![(2, 1), (6, 2), (10, 3)])),
            BiasMeasure::GlobalLower(Bounds::LinearFraction(0.3)),
            BiasMeasure::Proportional { alpha: 0.8 },
        ] {
            let want = match &measure {
                BiasMeasure::GlobalLower(b) => global_bounds(&index, &space, &cfg, b).per_k,
                BiasMeasure::Proportional { alpha } => {
                    prop_bounds(&index, &space, &cfg, *alpha).per_k
                }
            };
            for cadence in [1usize, 3, 8] {
                let mut store = LowerStore::default();
                let mut counters = ReplayCounters::default();
                let full = lower_replay(
                    &index,
                    &space,
                    &measure,
                    &cfg,
                    &[(2, 16)],
                    None,
                    &mut store,
                    cadence,
                    &mut counters,
                );
                assert_eq!(full.per_k, want, "{measure:?} cadence {cadence}");
                assert_eq!(counters.cold_builds, 1);
                assert!(!store.snaps.is_empty());
                assert!(store.snaps.windows(2).all(|w| w[0].k < w[1].k));
                // A sub-span replay seeded from the stored checkpoints
                // must reproduce the batch run's slice exactly, without a
                // fresh build.
                let mut counters = ReplayCounters::default();
                let sub = lower_replay(
                    &index,
                    &space,
                    &measure,
                    &cfg,
                    &[(9, 12)],
                    None,
                    &mut store,
                    cadence,
                    &mut counters,
                );
                assert_eq!(sub.per_k[..], want[7..=10], "{measure:?} cadence {cadence}");
                assert_eq!(counters.seeks, 1);
                assert_eq!(counters.cold_builds, 0);
                // Every replay-driven position (catch-up + in-span) beats
                // a full-range pass (1 build + 14 advances).
                assert!(counters.replayed_steps < 14);
            }
        }
    }

    #[test]
    fn lower_replay_segmented_spans_match_batch() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let measure = BiasMeasure::Proportional { alpha: 0.8 };
        let want = prop_bounds(&index, &space, &cfg, 0.8).per_k;
        for cadence in [1usize, 3, 8] {
            let mut store = LowerStore::default();
            let mut counters = ReplayCounters::default();
            lower_replay(
                &index,
                &space,
                &measure,
                &cfg,
                &[(2, 16)],
                None,
                &mut store,
                cadence,
                &mut counters,
            );
            // Two disjoint segments: each seeks independently; the gap ks
            // are neither stepped nor emitted.
            let mut counters = ReplayCounters::default();
            let out = lower_replay(
                &index,
                &space,
                &measure,
                &cfg,
                &[(4, 5), (12, 13)],
                None,
                &mut store,
                cadence,
                &mut counters,
            );
            let got_ks: Vec<usize> = out.per_k.iter().map(|r| r.k).collect();
            assert_eq!(got_ks, vec![4, 5, 12, 13], "cadence {cadence}");
            assert_eq!(out.per_k[0..2], want[2..=3], "cadence {cadence}");
            assert_eq!(out.per_k[2..4], want[10..=11], "cadence {cadence}");
            assert_eq!(counters.segments, 2);
            assert_eq!(counters.cold_builds, 0);
            assert!(counters.seeks >= 1 && counters.seeks <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "k_max")]
    fn k_max_beyond_dataset_rejected() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 17);
        global_bounds(&index, &space, &cfg, &Bounds::constant(2));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn nonpositive_alpha_rejected() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 5);
        prop_bounds(&index, &space, &cfg, 0.0);
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::space::RankedIndex;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn fig1() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    #[test]
    fn stream_collect_equals_batch_global() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let bounds = Bounds::steps(vec![(2, 1), (6, 2), (10, 3)]);
        let batch = global_bounds(&index, &space, &cfg, &bounds);
        let streamed: Vec<KResult> = StreamCore::global(&index, &space, &cfg, &bounds).collect();
        assert_eq!(batch.per_k, streamed);
    }

    #[test]
    fn stream_collect_equals_batch_proportional() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 3, 16);
        let batch = prop_bounds(&index, &space, &cfg, 0.8);
        let streamed: Vec<KResult> = StreamCore::proportional(&index, &space, &cfg, 0.8).collect();
        assert_eq!(batch.per_k, streamed);
    }

    #[test]
    fn stream_is_lazy() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let mut stream = StreamCore::proportional(&index, &space, &cfg, 0.8);
        let first = stream.next().unwrap();
        assert_eq!(first.k, 2);
        let after_one = stream.stats().nodes_evaluated;
        let _rest: Vec<KResult> = stream.by_ref().collect();
        assert!(stream.stats().nodes_evaluated >= after_one);
        assert!(!stream.timed_out());
    }

    #[test]
    fn stream_can_stop_early() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let ks: Vec<usize> = StreamCore::global(&index, &space, &cfg, &Bounds::constant(2))
            .take(3)
            .map(|kr| kr.k)
            .collect();
        assert_eq!(ks, vec![2, 3, 4]);
    }
}
