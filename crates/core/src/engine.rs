//! The incremental detection engine behind `GlobalBounds` (Algorithm 2)
//! and `PropBounds` (Algorithm 3).
//!
//! Both algorithms exploit the same observation (Proposition 4.3): the
//! top-`k` and top-`(k+1)` differ by a single tuple `t = R(D)[k+1]`, so the
//! search state for consecutive `k` values is almost identical. The engine
//! keeps every pattern it has ever evaluated in a persistent node store and
//! maintains these invariants between `k` values:
//!
//! * **exact counts** — if `t` satisfies a pattern it satisfies the
//!   pattern’s tree parent, so the set of stored nodes satisfied by `t` is
//!   a connected subtree of the search tree; a single root walk bumps all
//!   their counts by one with *no dataset scans*;
//! * **pure bias** — whether a node is biased is always recomputed from
//!   `(count, s_D, k)`, never cached, so nodes masked below a biased
//!   ancestor can never go stale;
//! * **tracked frontier** — `Res` holds the biased substantial nodes with
//!   no biased proper subset (the output) and `DRes` the dominated ones,
//!   exactly the paper’s two sets; when a stopped node un-biases the engine
//!   resumes the suspended search from that node (the paper’s
//!   `searchFromNode`), promoting newly undominated `DRes` members;
//! * **`k̃` schedule** (proportional only) — every non-biased node is
//!   scheduled at the `k̃` where the growing bound `α·s_D·k/n` would first
//!   overtake its count; entries are validated lazily when popped, so a
//!   count bump simply moves the node’s flip to a later pop.
//!
//! For the global measure the bound is constant between bound steps and
//! counts only grow, so nodes can only *leave* the biased state — no
//! schedule is needed; when `L_k` changes the engine rebuilds from scratch,
//! exactly as Algorithm 2 does (lines 4–5). The
//! [`global_bounds_fast_steps`] extension replaces those rebuilds with a
//! store-wide reclassification pass (zero fresh evaluations); note the
//! trade-off documented on that function — rebuilds *shrink* the store to
//! the tighter bound, so the rescan wins only when re-evaluation is the
//! dominant cost.
//!
//! This module covers the **lower-bound** (under-representation) side
//! only. The §III upper-bound side has its own incremental engine in
//! `upper_engine`, built on the same persistent-store/`walk_counts`
//! machinery but maintaining the *most specific* frontier of the
//! subset-closed over-represented set; the per-`k` searches in
//! [`crate::upper`] remain as its differential anchor.

use std::collections::VecDeque;

use crate::bounds::{BiasMeasure, Bounds};
use crate::pattern::Pattern;
use crate::space::{AttrId, PatternSpace, RankedIndex};
use crate::stats::{DeadlineGuard, DetectConfig, DetectionOutput, KResult, SearchStats};
use crate::util::FxHashSet;

const ROOT: u32 = u32::MAX;

#[derive(Debug)]
struct Node {
    pattern: Pattern,
    parent: u32,
    sd: u32,
    count: u32,
    expanded: bool,
    pruned: bool,
    children: Vec<u32>,
}

struct Engine<'a> {
    index: &'a RankedIndex,
    space: &'a PatternSpace,
    measure: BiasMeasure,
    tau_s: usize,
    n: usize,
    k_max: usize,
    nodes: Vec<Node>,
    /// Level-1 nodes laid out by `card_prefix[attr] + value` — the walk's
    /// entry points.
    root_children: Vec<u32>,
    /// `card_prefix[a] = Σ_{b<a} card(b)`. Children of an expanded node are
    /// generated in (attribute, value) order, so the child binding
    /// `(a, v)` sits at `children[card_prefix[a] − card_prefix[ma+1] + v]`
    /// (where `ma` is the node's max attribute) — child lookup is pure
    /// arithmetic, no hashing on the hot walk.
    card_prefix: Vec<u32>,
    res: FxHashSet<u32>,
    dres: FxHashSet<u32>,
    /// `k̃` buckets indexed by `k` (0..=k_max); entries may be stale and are
    /// re-validated when popped.
    schedule: Vec<Vec<u32>>,
    stats: SearchStats,
}

impl<'a> Engine<'a> {
    fn new(
        index: &'a RankedIndex,
        space: &'a PatternSpace,
        measure: BiasMeasure,
        tau_s: usize,
        k_max: usize,
    ) -> Self {
        let schedule = if measure.is_proportional() {
            vec![Vec::new(); k_max + 1]
        } else {
            Vec::new()
        };
        let mut card_prefix = Vec::with_capacity(space.n_attrs() + 1);
        let mut acc = 0u32;
        card_prefix.push(0);
        for a in 0..space.n_attrs() as AttrId {
            acc += space.card(a) as u32;
            card_prefix.push(acc);
        }
        Engine {
            index,
            space,
            measure,
            tau_s,
            n: index.n(),
            k_max,
            nodes: Vec::new(),
            root_children: Vec::new(),
            card_prefix,
            res: FxHashSet::default(),
            dres: FxHashSet::default(),
            schedule,
            stats: SearchStats::default(),
        }
    }

    #[inline]
    fn is_biased(&self, id: u32, k: usize) -> bool {
        let nd = &self.nodes[id as usize];
        self.measure
            .is_biased(nd.count as usize, nd.sd as usize, k, self.n)
    }

    #[inline]
    fn in_stopped(&self, id: u32) -> bool {
        self.res.contains(&id) || self.dres.contains(&id)
    }

    /// Evaluates a fresh pattern (one fused bitmap scan), stores the node,
    /// registers it in the child index, and gives non-biased nodes their
    /// initial `k̃` schedule entry.
    fn eval_new(&mut self, pattern: Pattern, parent: u32, k: usize) -> u32 {
        let (sd, count) = self.index.counts(&pattern, k);
        self.stats.nodes_evaluated += 1;
        let id = self.nodes.len() as u32;
        let pruned = sd < self.tau_s;
        self.nodes.push(Node {
            pattern,
            parent,
            sd: sd as u32,
            count: count as u32,
            expanded: false,
            pruned,
            children: Vec::new(),
        });
        if !pruned && !self.is_biased(id, k) {
            self.schedule_push(id, k);
        }
        id
    }

    /// Pushes a `k̃` entry for a currently non-biased node (proportional
    /// measure only; no-op otherwise or when the flip falls past `k_max`).
    fn schedule_push(&mut self, id: u32, k: usize) {
        if self.schedule.is_empty() {
            return;
        }
        let nd = &self.nodes[id as usize];
        if let Some(kt) = self
            .measure
            .k_tilde(nd.count as usize, nd.sd as usize, k, self.n)
        {
            if kt <= self.k_max {
                self.schedule[kt].push(id);
            }
        }
    }

    /// Generates all search-tree children of `id` (Definition 4.1),
    /// evaluating each fresh. Idempotent.
    fn expand(&mut self, id: u32, k: usize) {
        if self.nodes[id as usize].expanded {
            return;
        }
        let (start, pattern) = {
            let nd = &self.nodes[id as usize];
            (
                nd.pattern.max_attr().map_or(0, |a| a + 1),
                nd.pattern.clone(),
            )
        };
        let m = self.space.n_attrs() as AttrId;
        let mut children = Vec::new();
        for a in start..m {
            for v in 0..self.space.card(a) as u16 {
                children.push(self.eval_new(pattern.child(a, v), id, k));
            }
        }
        let nd = &mut self.nodes[id as usize];
        nd.children = children;
        nd.expanded = true;
    }

    /// Inserts a newly biased node into `Res`/`DRes`, demoting any `Res`
    /// members it dominates. Idempotent.
    fn add_stopped(&mut self, id: u32) {
        if self.in_stopped(id) {
            return;
        }
        let p = &self.nodes[id as usize].pattern;
        let dominated = self
            .res
            .iter()
            .any(|&r| self.nodes[r as usize].pattern.is_subset_of(p));
        if dominated {
            self.dres.insert(id);
        } else {
            let demote: Vec<u32> = self
                .res
                .iter()
                .copied()
                .filter(|&r| p.is_proper_subset_of(&self.nodes[r as usize].pattern))
                .collect();
            for r in demote {
                self.res.remove(&r);
                self.dres.insert(r);
            }
            self.res.insert(id);
        }
    }

    /// Removes a node that stopped being biased, promoting `DRes` members
    /// it was the last `Res` dominator of. Promotion candidates are
    /// processed most-general-first so a promoted pattern immediately
    /// dominates its own supersets.
    fn remove_stopped(&mut self, id: u32, k: usize) {
        if self.res.remove(&id) {
            let p = self.nodes[id as usize].pattern.clone();
            let mut cands: Vec<u32> = self
                .dres
                .iter()
                .copied()
                .filter(|&d| p.is_proper_subset_of(&self.nodes[d as usize].pattern))
                .collect();
            cands.sort_by_key(|&d| (self.nodes[d as usize].pattern.len(), d));
            for d in cands {
                // A candidate that flipped non-biased in this same round is
                // left for its own pending transition event.
                if !self.is_biased(d, k) {
                    continue;
                }
                let dp = &self.nodes[d as usize].pattern;
                let still_dominated = self
                    .res
                    .iter()
                    .any(|&r| self.nodes[r as usize].pattern.is_subset_of(dp));
                if !still_dominated {
                    self.dres.remove(&d);
                    self.res.insert(d);
                }
            }
        } else {
            self.dres.remove(&id);
        }
    }

    /// Whether all tree ancestors of `id` are currently non-biased (the
    /// node is on the live search frontier rather than masked below a
    /// biased ancestor).
    fn tree_minimal(&self, id: u32, k: usize) -> bool {
        let mut cur = self.nodes[id as usize].parent;
        while cur != ROOT {
            if self.is_biased(cur, k) {
                return false;
            }
            cur = self.nodes[cur as usize].parent;
        }
        true
    }

    /// The paper’s `searchFromNode`: resumes the suspended search below a
    /// node that just stopped being biased, expanding any frontier not yet
    /// generated and stopping at (and registering) biased descendants.
    fn resume_subtree(&mut self, id: u32, k: usize, guard: &mut DeadlineGuard) -> bool {
        let mut stack = vec![id];
        while let Some(nid) = stack.pop() {
            if guard.expired() {
                return false;
            }
            self.expand(nid, k);
            let children = self.nodes[nid as usize].children.clone();
            for c in children {
                if self.nodes[c as usize].pruned {
                    continue;
                }
                if self.is_biased(c, k) {
                    self.add_stopped(c);
                } else {
                    stack.push(c);
                }
            }
        }
        true
    }

    /// Full top-down build at `k` (used for `k_min` and for global-bound
    /// steps). Breadth-first so dominance sees subsets before supersets.
    fn build(&mut self, k: usize, guard: &mut DeadlineGuard) -> bool {
        self.stats.full_searches += 1;
        let m = self.space.n_attrs() as AttrId;
        let mut queue: VecDeque<u32> = VecDeque::new();
        for a in 0..m {
            for v in 0..self.space.card(a) as u16 {
                let id = self.eval_new(Pattern::single(a, v), ROOT, k);
                self.root_children.push(id);
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            if guard.expired() {
                return false;
            }
            if self.nodes[id as usize].pruned {
                continue;
            }
            if self.is_biased(id, k) {
                self.add_stopped(id);
            } else {
                self.expand(id, k);
                for &c in &self.nodes[id as usize].children {
                    queue.push_back(c);
                }
            }
        }
        true
    }

    /// Clears all state for a fresh build (global-bound steps).
    fn reset(&mut self) {
        self.nodes.clear();
        self.root_children.clear();
        self.res.clear();
        self.dres.clear();
        for bucket in &mut self.schedule {
            bucket.clear();
        }
    }

    /// Phase 1 of an incremental step: bump the count of every stored node
    /// the newly ranked tuple satisfies (a connected subtree reachable from
    /// the root), collecting nodes whose bias classification may flip.
    fn walk_counts(&mut self, k: usize, cands: &mut FxHashSet<u32>) {
        let t_pos = k - 1;
        let m = self.space.n_attrs() as AttrId;
        let mut stack: Vec<u32> = Vec::new();
        for a in 0..m {
            let v = self.index.code_at(t_pos, a);
            let idx = self.card_prefix[usize::from(a)] as usize + usize::from(v);
            stack.push(self.root_children[idx]);
        }
        while let Some(id) = stack.pop() {
            let pruned = self.nodes[id as usize].pruned;
            if pruned {
                continue; // counts of pruned leaves are never read
            }
            self.nodes[id as usize].count += 1;
            self.stats.nodes_touched += 1;
            if self.is_biased(id, k) != self.in_stopped(id) {
                cands.insert(id);
            }
            if self.nodes[id as usize].expanded {
                let start = self.nodes[id as usize]
                    .pattern
                    .max_attr()
                    .map_or(0, |a| a + 1);
                let base = self.card_prefix[usize::from(start)];
                for a in start..m {
                    let v = self.index.code_at(t_pos, a);
                    let idx = (self.card_prefix[usize::from(a)] - base) as usize + usize::from(v);
                    stack.push(self.nodes[id as usize].children[idx]);
                }
            }
        }
    }

    /// Phase 2 (proportional only): drain the `k̃` bucket for `k`. Stale
    /// entries (count grew since scheduling) are re-inserted at their
    /// recomputed `k̃`; genuine flips join the transition candidates.
    fn pop_schedule(&mut self, k: usize, cands: &mut FxHashSet<u32>) {
        if self.schedule.is_empty() {
            return;
        }
        let bucket = std::mem::take(&mut self.schedule[k]);
        for id in bucket {
            self.stats.schedule_pops += 1;
            if self.nodes[id as usize].pruned {
                continue;
            }
            let biased = self.is_biased(id, k);
            if biased != self.in_stopped(id) {
                cands.insert(id);
            }
            if !biased {
                self.schedule_push(id, k);
            }
        }
    }

    /// Phase 3: apply bias transitions, most-general patterns first.
    fn apply_transitions(
        &mut self,
        k: usize,
        cands: FxHashSet<u32>,
        guard: &mut DeadlineGuard,
    ) -> bool {
        let mut ids: Vec<u32> = cands.into_iter().collect();
        ids.sort_by_key(|&id| (self.nodes[id as usize].pattern.len(), id));
        for id in ids {
            let before = self.in_stopped(id);
            let after = self.is_biased(id, k);
            if before && !after {
                self.remove_stopped(id, k);
                self.schedule_push(id, k);
                if !self.nodes[id as usize].pruned
                    && self.tree_minimal(id, k)
                    && !self.resume_subtree(id, k, guard)
                {
                    return false;
                }
            } else if !before && after && !self.nodes[id as usize].pruned {
                self.add_stopped(id);
            }
        }
        true
    }

    /// Extension beyond the paper: handles an *increase* of the global
    /// lower bound without the full rebuild Algorithm 2 performs.
    ///
    /// When `L` grows, nodes can only *enter* the biased state, and every
    /// most general biased pattern under the new bound is already stored
    /// (its tree ancestors are non-biased under the new bound, hence were
    /// non-biased — and therefore expanded — under every earlier, smaller
    /// bound). A single pass over the node store reclassifies without a
    /// single fresh pattern evaluation.
    fn rescan_all(&mut self, k: usize, cands: &mut FxHashSet<u32>) {
        for id in 0..self.nodes.len() as u32 {
            if self.nodes[id as usize].pruned {
                continue;
            }
            self.stats.nodes_touched += 1;
            if self.is_biased(id, k) != self.in_stopped(id) {
                cands.insert(id);
            }
        }
    }

    /// The current `Res` as sorted patterns.
    fn snapshot(&self, k: usize) -> KResult {
        let mut patterns: Vec<Pattern> = self
            .res
            .iter()
            .map(|&id| self.nodes[id as usize].pattern.clone())
            .collect();
        patterns.sort_unstable();
        KResult { k, patterns }
    }

    fn run(
        mut self,
        cfg: &DetectConfig,
        bounds_for_steps: Option<&Bounds>,
        fast_steps: bool,
    ) -> DetectionOutput {
        let mut guard = DeadlineGuard::new(cfg.deadline);
        let mut per_k = Vec::with_capacity(cfg.range_len());
        let mut ok = self.build(cfg.k_min, &mut guard);
        if ok {
            per_k.push(self.snapshot(cfg.k_min));
            for k in cfg.k_min + 1..=cfg.k_max {
                let step_ok = match bounds_for_steps {
                    // A bound *increase* with the extension enabled: walk
                    // the new tuple, then reclassify the whole store.
                    Some(b) if fast_steps && b.at(k) > b.at(k - 1) => {
                        let mut cands = FxHashSet::default();
                        self.walk_counts(k, &mut cands);
                        self.rescan_all(k, &mut cands);
                        self.apply_transitions(k, cands, &mut guard)
                    }
                    // Algorithm 2, lines 4–5: a bound change invalidates the
                    // incremental frontier — run a fresh search. (Also the
                    // fallback for decreasing bounds, where the rescan
                    // argument does not apply.)
                    Some(b) if b.at(k) != b.at(k - 1) => {
                        self.reset();
                        self.build(k, &mut guard)
                    }
                    _ => {
                        let mut cands = FxHashSet::default();
                        self.walk_counts(k, &mut cands);
                        self.pop_schedule(k, &mut cands);
                        self.apply_transitions(k, cands, &mut guard)
                    }
                };
                if !step_ok {
                    ok = false;
                    break;
                }
                per_k.push(self.snapshot(k));
            }
        }
        self.stats.timed_out = !ok;
        self.stats.elapsed = guard.elapsed();
        DetectionOutput {
            per_k,
            stats: self.stats,
        }
    }
}

fn check_range(index: &RankedIndex, cfg: &DetectConfig) {
    assert!(
        cfg.k_max <= index.n(),
        "k_max ({}) exceeds the number of ranked tuples ({})",
        cfg.k_max,
        index.n()
    );
}

/// A lazy, resumable detection run: yields the [`KResult`] for each `k`
/// in `[k_min, k_max]` on demand, maintaining the incremental engine
/// between calls.
///
/// Useful when a consumer inspects results `k` by `k` (an interactive
/// audit UI, or an early-exit search for the first `k` with a biased
/// group) — later `k` values are never computed unless requested, and the
/// incremental state is reused exactly as in the batch algorithms.
///
/// ```
/// #![allow(deprecated)]
/// use rankfair_core::{DetectionStream, Bounds, DetectConfig, PatternSpace, RankedIndex};
/// use rankfair_data::examples::{students_fig1, fig1_rank_order};
/// use rankfair_rank::Ranking;
///
/// let ds = students_fig1();
/// let space = PatternSpace::from_dataset(&ds).unwrap();
/// let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
/// let index = RankedIndex::build(&ds, &space, &ranking);
/// let cfg = DetectConfig::new(4, 4, 16);
/// let mut stream = DetectionStream::global(&index, &space, &cfg, &Bounds::constant(2));
/// let first = stream.next().unwrap();
/// assert_eq!(first.k, 4); // later k values not yet computed
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use Audit::run_streaming, which owns its data and also covers the upper-bound tasks"
)]
pub struct DetectionStream<'a>(StreamCore<'a>);

#[allow(deprecated)]
impl<'a> DetectionStream<'a> {
    /// Streaming `GlobalBounds` (with the fast bound-step extension).
    pub fn global(
        index: &'a RankedIndex,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        bounds: &Bounds,
    ) -> Self {
        DetectionStream(StreamCore::global(index, space, cfg, bounds))
    }

    /// Streaming `PropBounds`.
    pub fn proportional(
        index: &'a RankedIndex,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        alpha: f64,
    ) -> Self {
        DetectionStream(StreamCore::proportional(index, space, cfg, alpha))
    }

    /// Instrumentation counters accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        self.0.stats()
    }

    /// Whether the stream stopped early because the deadline fired.
    pub fn timed_out(&self) -> bool {
        self.0.timed_out()
    }
}

#[allow(deprecated)]
impl Iterator for DetectionStream<'_> {
    type Item = KResult;

    fn next(&mut self) -> Option<KResult> {
        self.0.next()
    }
}

/// The non-deprecated core the shimmed [`DetectionStream`] wraps; also the
/// under-representation half of `Audit::run_streaming`, so the owned API
/// never has to touch the deprecated surface.
pub(crate) struct StreamCore<'a> {
    engine: Engine<'a>,
    cfg: DetectConfig,
    bounds_for_steps: Option<Bounds>,
    fast_steps: bool,
    guard: DeadlineGuard,
    next_k: usize,
    failed: bool,
}

impl<'a> StreamCore<'a> {
    /// Streaming `GlobalBounds` (with the fast bound-step extension).
    pub fn global(
        index: &'a RankedIndex,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        bounds: &Bounds,
    ) -> Self {
        check_range(index, cfg);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        StreamCore {
            engine: Engine::new(index, space, measure, cfg.tau_s, cfg.k_max),
            cfg: cfg.clone(),
            bounds_for_steps: Some(bounds.clone()),
            fast_steps: true,
            guard: DeadlineGuard::new(cfg.deadline),
            next_k: cfg.k_min,
            failed: false,
        }
    }

    /// Streaming `PropBounds`.
    pub fn proportional(
        index: &'a RankedIndex,
        space: &'a PatternSpace,
        cfg: &DetectConfig,
        alpha: f64,
    ) -> Self {
        check_range(index, cfg);
        assert!(alpha > 0.0, "alpha must be positive");
        let measure = BiasMeasure::Proportional { alpha };
        StreamCore {
            engine: Engine::new(index, space, measure, cfg.tau_s, cfg.k_max),
            cfg: cfg.clone(),
            bounds_for_steps: None,
            fast_steps: false,
            guard: DeadlineGuard::new(cfg.deadline),
            next_k: cfg.k_min,
            failed: false,
        }
    }

    /// Instrumentation counters accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.engine.stats
    }

    /// Whether the stream stopped early because the deadline fired.
    pub fn timed_out(&self) -> bool {
        self.failed
    }
}

impl Iterator for StreamCore<'_> {
    type Item = KResult;

    fn next(&mut self) -> Option<KResult> {
        if self.failed || self.next_k > self.cfg.k_max {
            return None;
        }
        let k = self.next_k;
        let ok = if k == self.cfg.k_min {
            self.engine.build(k, &mut self.guard)
        } else {
            match &self.bounds_for_steps {
                Some(b) if self.fast_steps && b.at(k) > b.at(k - 1) => {
                    let mut cands = FxHashSet::default();
                    self.engine.walk_counts(k, &mut cands);
                    self.engine.rescan_all(k, &mut cands);
                    self.engine.apply_transitions(k, cands, &mut self.guard)
                }
                Some(b) if b.at(k) != b.at(k - 1) => {
                    self.engine.reset();
                    self.engine.build(k, &mut self.guard)
                }
                _ => {
                    let mut cands = FxHashSet::default();
                    self.engine.walk_counts(k, &mut cands);
                    self.engine.pop_schedule(k, &mut cands);
                    self.engine.apply_transitions(k, cands, &mut self.guard)
                }
            }
        };
        if !ok {
            self.failed = true;
            return None;
        }
        self.next_k += 1;
        Some(self.engine.snapshot(k))
    }
}

/// `GlobalBounds` (Algorithm 2): detection of groups with biased
/// representation under global lower bounds, incremental across the `k`
/// range.
pub(crate) fn global_bounds(
    index: &RankedIndex,
    space: &PatternSpace,
    cfg: &DetectConfig,
    bounds: &Bounds,
) -> DetectionOutput {
    check_range(index, cfg);
    let measure = BiasMeasure::GlobalLower(bounds.clone());
    let engine = Engine::new(index, space, measure, cfg.tau_s, cfg.k_max);
    engine.run(cfg, Some(bounds), false)
}

/// `GlobalBounds` with the bound-step extension: instead of re-running a
/// full top-down search whenever `L_k` increases (Algorithm 2, lines 4–5),
/// the persistent node store is reclassified in one pass with **zero**
/// fresh pattern evaluations. Returns exactly the same results as
/// [`global_bounds`]. Decreasing bounds still fall back to a fresh search.
///
/// Trade-off (measured in the `ablations` bench and `experiments
/// faststeps`): skipping rebuilds saves every re-evaluation, but a rebuild
/// under a *larger* bound also produces a smaller node store (more nodes
/// are biased, so expansion stops earlier), which makes all subsequent
/// per-k walks cheaper. On workloads whose per-step searches are small the
/// rescan variant can therefore lose wall-clock despite doing strictly
/// less counting work — prefer [`global_bounds`] unless pattern evaluation
/// (not store traversal) dominates, e.g. very large datasets.
pub(crate) fn global_bounds_fast_steps(
    index: &RankedIndex,
    space: &PatternSpace,
    cfg: &DetectConfig,
    bounds: &Bounds,
) -> DetectionOutput {
    check_range(index, cfg);
    let measure = BiasMeasure::GlobalLower(bounds.clone());
    let engine = Engine::new(index, space, measure, cfg.tau_s, cfg.k_max);
    engine.run(cfg, Some(bounds), true)
}

/// `PropBounds` (Algorithm 3): detection of groups with biased
/// proportional representation, incremental across the `k` range with
/// `k̃` scheduling.
pub(crate) fn prop_bounds(
    index: &RankedIndex,
    space: &PatternSpace,
    cfg: &DetectConfig,
    alpha: f64,
) -> DetectionOutput {
    check_range(index, cfg);
    assert!(alpha > 0.0, "alpha must be positive");
    let measure = BiasMeasure::Proportional { alpha };
    let engine = Engine::new(index, space, measure, cfg.tau_s, cfg.k_max);
    engine.run(cfg, None, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topdown::iter_td;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn fig1() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    fn names(space: &PatternSpace, pats: &[Pattern]) -> Vec<String> {
        pats.iter().map(|p| space.display(p)).collect()
    }

    #[test]
    fn example_4_6_global_bounds_k4_to_k5() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(4, 4, 5);
        let out = global_bounds(&index, &space, &cfg, &Bounds::constant(2));
        assert_eq!(out.per_k.len(), 2);
        let k4 = names(&space, &out.per_k[0].patterns);
        assert!(k4.contains(&"{Address=U}".to_string()));
        assert!(k4.contains(&"{Failures=1}".to_string()));
        let k5 = names(&space, &out.per_k[1].patterns);
        for e in [
            "{School=GP}",
            "{Failures=2}",
            "{Address=U, Failures=1}",
            "{Gender=F, Address=U}",
            "{Gender=M, Address=U}",
            "{Gender=F, Failures=1}",
            "{Address=R, Failures=1}",
            "{Gender=F, School=MS}",
            "{Gender=F, Address=R}",
        ] {
            assert!(k5.contains(&e.to_string()), "missing {e} in {k5:?}");
        }
        assert_eq!(k5.len(), 9);
    }

    #[test]
    fn example_4_9_prop_bounds_k4_to_k5() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(5, 4, 5);
        let out = prop_bounds(&index, &space, &cfg, 0.9);
        let k4 = names(&space, &out.per_k[0].patterns);
        assert_eq!(k4, vec!["{School=GP}", "{Address=U}", "{Failures=1}"]);
        let k5 = names(&space, &out.per_k[1].patterns);
        assert!(k5.contains(&"{Gender=F}".to_string()));
        assert_eq!(k5.len(), 4);
    }

    #[test]
    fn global_bounds_matches_iter_td_on_fig1_sweep() {
        let (space, index) = fig1();
        for tau in [1, 2, 4, 6] {
            for l in [1, 2, 3, 5] {
                let cfg = DetectConfig::new(tau, 2, 16);
                let bounds = Bounds::constant(l);
                let measure = BiasMeasure::GlobalLower(bounds.clone());
                let base = iter_td(&index, &space, &cfg, &measure);
                let opt = global_bounds(&index, &space, &cfg, &bounds);
                assert_eq!(base.per_k, opt.per_k, "tau={tau} l={l}");
            }
        }
    }

    #[test]
    fn global_bounds_with_steps_matches_iter_td() {
        let (space, index) = fig1();
        let bounds = Bounds::steps(vec![(2, 1), (6, 2), (10, 3)]);
        let cfg = DetectConfig::new(2, 2, 16);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = global_bounds(&index, &space, &cfg, &bounds);
        assert_eq!(base.per_k, opt.per_k);
        // One initial build plus one rebuild per bound step inside (2,16].
        assert_eq!(opt.stats.full_searches, 3);
    }

    #[test]
    fn prop_bounds_matches_iter_td_on_fig1_sweep() {
        let (space, index) = fig1();
        for tau in [1, 2, 4, 6] {
            for alpha in [0.3, 0.5, 0.8, 0.9, 1.0, 1.2] {
                let cfg = DetectConfig::new(tau, 2, 16);
                let measure = BiasMeasure::Proportional { alpha };
                let base = iter_td(&index, &space, &cfg, &measure);
                let opt = prop_bounds(&index, &space, &cfg, alpha);
                assert_eq!(base.per_k, opt.per_k, "tau={tau} alpha={alpha}");
            }
        }
    }

    #[test]
    fn optimized_examines_fewer_patterns_than_baseline() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let bounds = Bounds::constant(2);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = global_bounds(&index, &space, &cfg, &bounds);
        assert!(
            opt.stats.patterns_examined() < base.stats.patterns_examined(),
            "optimized {} >= baseline {}",
            opt.stats.patterns_examined(),
            base.stats.patterns_examined()
        );
    }

    #[test]
    #[should_panic(expected = "k_max")]
    fn k_max_beyond_dataset_rejected() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 17);
        global_bounds(&index, &space, &cfg, &Bounds::constant(2));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn nonpositive_alpha_rejected() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 5);
        prop_bounds(&index, &space, &cfg, 0.0);
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod stream_tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn fig1() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    #[test]
    fn stream_collect_equals_batch_global() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let bounds = Bounds::steps(vec![(2, 1), (6, 2), (10, 3)]);
        let batch = global_bounds(&index, &space, &cfg, &bounds);
        let streamed: Vec<KResult> =
            DetectionStream::global(&index, &space, &cfg, &bounds).collect();
        assert_eq!(batch.per_k, streamed);
    }

    #[test]
    fn stream_collect_equals_batch_proportional() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 3, 16);
        let batch = prop_bounds(&index, &space, &cfg, 0.8);
        let streamed: Vec<KResult> =
            DetectionStream::proportional(&index, &space, &cfg, 0.8).collect();
        assert_eq!(batch.per_k, streamed);
    }

    #[test]
    fn stream_is_lazy() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let mut stream = DetectionStream::proportional(&index, &space, &cfg, 0.8);
        let first = stream.next().unwrap();
        assert_eq!(first.k, 2);
        let after_one = stream.stats().nodes_evaluated;
        let _rest: Vec<KResult> = stream.by_ref().collect();
        assert!(stream.stats().nodes_evaluated >= after_one);
        assert!(!stream.timed_out());
    }

    #[test]
    fn stream_can_stop_early() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(2, 2, 16);
        let ks: Vec<usize> = DetectionStream::global(&index, &space, &cfg, &Bounds::constant(2))
            .take(3)
            .map(|kr| kr.k)
            .collect();
        assert_eq!(ks, vec![2, 3, 4]);
    }
}
