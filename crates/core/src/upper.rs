//! Upper-bound detection: the paper’s §III “Upper bounds” extension.
//!
//! For the lower-bound problems the *most general* biased patterns are the
//! informative ones; for upper bounds it is the other way around: “if the
//! number of black females is above the upper bound, then so is the number
//! of blacks and the number of females” — over-representation is closed
//! under taking subsets. The informative answer is therefore the **most
//! specific** substantial patterns exceeding the bound: patterns `p` with
//! `s_D(p) ≥ τs` and `s_Rk(p) > U_k` such that no proper superset also
//! qualifies.
//!
//! Because the qualifying set is subset-closed, maximality can be decided
//! locally: `p` is maximal iff no single-term extension of `p` qualifies.

use crate::bounds::Bounds;
use crate::pattern::Pattern;
use crate::space::{AttrId, CountsProvider, PatternSpace};
use crate::stats::{DeadlineGuard, DetectConfig, DetectionOutput, KResult, SearchStats};

fn qualifies<I: CountsProvider>(
    index: &I,
    tau_s: usize,
    k: usize,
    u: usize,
    p: &Pattern,
) -> (bool, usize) {
    let (sd, count) = index.counts(p, k);
    (sd >= tau_s && count > u, sd)
}

/// Most specific substantial patterns whose top-`k` count exceeds `U_k`,
/// for a single `k`.
pub fn upper_most_specific_single_k<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    tau_s: usize,
    k: usize,
    upper: usize,
    stats: &mut SearchStats,
) -> Vec<Pattern> {
    let mut guard = DeadlineGuard::new(None);
    upper_most_specific_single_k_guarded(index, space, tau_s, k, upper, stats, &mut guard)
        .expect("a guard without a deadline never expires")
}

/// [`upper_most_specific_single_k`] with a cooperative deadline: the DFS
/// and the maximality sweep both poll `guard`, so even a single-`k` search
/// over a large pattern space truncates promptly. Returns `None` on
/// expiry.
pub(crate) fn upper_most_specific_single_k_guarded<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    tau_s: usize,
    k: usize,
    upper: usize,
    stats: &mut SearchStats,
    guard: &mut DeadlineGuard,
) -> Option<Vec<Pattern>> {
    let m = space.n_attrs() as AttrId;
    // Depth-first enumeration of the (subset-closed) qualifying set.
    let mut qualifying: Vec<Pattern> = Vec::new();
    let mut stack: Vec<Pattern> = (0..m)
        .flat_map(|a| space.value_codes(a).map(move |v| Pattern::single(a, v)))
        .collect();
    while let Some(p) = stack.pop() {
        if guard.expired() {
            return None;
        }
        stats.nodes_evaluated += 1;
        let (ok, _) = qualifies(index, tau_s, k, upper, &p);
        if !ok {
            continue;
        }
        let start = p.max_attr().map_or(0, |a| a + 1);
        for a in start..m {
            for v in space.value_codes(a) {
                stack.push(p.child(a, v));
            }
        }
        qualifying.push(p);
    }
    // Maximality: no one-term extension (over *any* unused attribute, not
    // just larger-indexed ones) qualifies.
    let mut maximal: Vec<Pattern> = Vec::new();
    'outer: for p in qualifying {
        for a in 0..m {
            if p.value_of(a).is_some() {
                continue;
            }
            for v in space.value_codes(a) {
                if guard.expired() {
                    return None;
                }
                let mut terms = p.terms().to_vec();
                terms.push((a, v));
                let ext = Pattern::from_terms(terms).expect("attribute unused");
                stats.nodes_evaluated += 1;
                if qualifies(index, tau_s, k, upper, &ext).0 {
                    continue 'outer;
                }
            }
        }
        maximal.push(p);
    }
    maximal.sort_unstable();
    Some(maximal)
}

/// Upper-bound detection over a `k` range: for each `k`, the most specific
/// substantial patterns with `s_Rk(p) > U_k`.
///
/// This is the **per-`k` rescan**: every `k` pays a fresh DFS plus the
/// full maximality sweep. [`crate::Audit::run`] with `Engine::Optimized`
/// uses the incremental upper engine instead; this function remains as the
/// free-standing API and the differential/benchmark anchor for it.
///
/// Honors [`DetectConfig::deadline`], checking it *inside* each single-`k`
/// search: a run that exceeds the budget truncates to the completed `k`
/// values and sets [`SearchStats::timed_out`].
pub fn upper_most_specific<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    upper: &Bounds,
) -> DetectionOutput {
    assert!(cfg.k_max <= index.n(), "k_max exceeds the ranked tuples");
    let mut stats = SearchStats::default();
    let mut guard = DeadlineGuard::new(cfg.deadline);
    let mut per_k = Vec::with_capacity(cfg.range_len());
    for k in cfg.k_min..=cfg.k_max {
        stats.full_searches += 1;
        match upper_most_specific_single_k_guarded(
            index,
            space,
            cfg.tau_s,
            k,
            upper.at(k),
            &mut stats,
            &mut guard,
        ) {
            Some(patterns) => per_k.push(KResult { k, patterns }),
            None => {
                stats.timed_out = true;
                break;
            }
        }
    }
    stats.elapsed = guard.elapsed();
    DetectionOutput { per_k, stats }
}

/// A combined lower+upper report for one `k`, the paper’s “plausible
/// problem definition” that accounts for both bound directions.
#[derive(Debug, Clone)]
pub struct CombinedKResult {
    /// The `k` this refers to.
    pub k: usize,
    /// Most general patterns below the lower bound.
    pub under_represented: Vec<Pattern>,
    /// Most specific substantial patterns above the upper bound.
    pub over_represented: Vec<Pattern>,
}

/// Output of [`combined_bounds`]: per-`k` results plus instrumentation,
/// so a deadline-truncated prefix is distinguishable from a legitimately
/// short range ([`SearchStats::timed_out`]).
#[derive(Debug, Clone)]
pub struct CombinedOutput {
    /// Per-`k` result sets, ordered by `k` (possibly truncated on
    /// timeout).
    pub per_k: Vec<CombinedKResult>,
    /// Counters summed over both directions; `elapsed` is the total.
    pub stats: SearchStats,
}

/// Runs both directions for each `k` in the range.
///
/// Honors [`DetectConfig::deadline`]: the lower side runs first under the
/// full budget, the upper side gets the **remaining** wall clock (not a
/// fresh budget) and only covers the `k` values the possibly-truncated
/// lower side produced, so a timed-out run returns a consistent prefix —
/// flagged via [`SearchStats::timed_out`].
pub fn combined_bounds<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    lower: &Bounds,
    upper: &Bounds,
) -> CombinedOutput {
    let low = crate::engine::global_bounds(index, space, cfg, lower);
    let Some(last) = low.per_k.last() else {
        return CombinedOutput {
            per_k: Vec::new(),
            stats: low.stats,
        };
    };
    let over_cfg = DetectConfig {
        k_max: last.k,
        deadline: cfg.deadline.map(|d| d.saturating_sub(low.stats.elapsed)),
        ..cfg.clone()
    };
    let high = upper_most_specific(index, space, &over_cfg, upper);
    let mut stats = low.stats.clone();
    stats.merge(&high.stats);
    stats.elapsed = low.stats.elapsed + high.stats.elapsed;
    CombinedOutput {
        per_k: low
            .per_k
            .into_iter()
            .zip(high.per_k)
            .map(|(l, h)| CombinedKResult {
                k: l.k,
                under_represented: l.patterns,
                over_represented: h.patterns,
            })
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::space::RankedIndex;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_data::Dataset;
    use rankfair_rank::Ranking;

    fn fig1() -> (Dataset, PatternSpace, Ranking, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (ds, space, ranking, index)
    }

    /// Brute-force reference for the upper problem.
    fn oracle_upper(
        ds: &Dataset,
        space: &PatternSpace,
        ranking: &Ranking,
        tau: usize,
        k: usize,
        u: usize,
    ) -> Vec<Pattern> {
        let all = oracle::enumerate_substantial(ds, space, ranking, tau);
        let qualifying: Vec<&Pattern> = all
            .iter()
            .filter(|p| oracle::naive_counts(ds, space, ranking, p, k).1 > u)
            .collect();
        let mut maximal: Vec<Pattern> = qualifying
            .iter()
            .filter(|p| !qualifying.iter().any(|q| p.is_proper_subset_of(q)))
            .map(|p| (*p).clone())
            .collect();
        maximal.sort_unstable();
        maximal
    }

    #[test]
    fn upper_matches_oracle_on_fig1() {
        let (ds, space, ranking, index) = fig1();
        let mut stats = SearchStats::default();
        for tau in [1, 2, 4] {
            for k in [3, 5, 8, 16] {
                for u in [0, 1, 2, 4] {
                    let got = upper_most_specific_single_k(&index, &space, tau, k, u, &mut stats);
                    let want = oracle_upper(&ds, &space, &ranking, tau, k, u);
                    assert_eq!(got, want, "tau={tau} k={k} u={u}");
                }
            }
        }
    }

    #[test]
    fn over_represented_groups_exceed_bound_and_are_maximal() {
        let (_ds, space, _ranking, index) = fig1();
        let mut stats = SearchStats::default();
        let res = upper_most_specific_single_k(&index, &space, 2, 5, 2, &mut stats);
        assert!(!res.is_empty());
        for p in &res {
            let (sd, count) = index.counts(p, 5);
            assert!(sd >= 2 && count > 2, "{}", space.display(p));
        }
        for a in &res {
            for b in &res {
                assert!(a == b || !a.is_proper_subset_of(b));
            }
        }
    }

    #[test]
    fn range_runner_and_combined() {
        let (_ds, space, _ranking, index) = fig1();
        let cfg = DetectConfig::new(4, 4, 6);
        let out = upper_most_specific(&index, &space, &cfg, &Bounds::constant(2));
        assert_eq!(out.per_k.len(), 3);
        let combined = combined_bounds(
            &index,
            &space,
            &cfg,
            &Bounds::constant(2),
            &Bounds::constant(3),
        );
        assert_eq!(combined.per_k.len(), 3);
        assert_eq!(combined.per_k[0].k, 4);
        assert!(!combined.stats.timed_out);
    }

    #[test]
    fn impossible_upper_bound_returns_nothing() {
        let (_ds, space, _ranking, index) = fig1();
        let mut stats = SearchStats::default();
        assert!(upper_most_specific_single_k(&index, &space, 1, 5, 5, &mut stats).is_empty());
    }

    #[test]
    fn upper_range_honors_deadline() {
        // Regression: `upper_most_specific` used to ignore `cfg.deadline`
        // entirely — a deadline-bound run never stopped and never set
        // `stats.timed_out`. The guard is polled *inside* the single-`k`
        // search, so even the first `k` truncates under a zero budget.
        let (_ds, space, _ranking, index) = fig1();
        let cfg = DetectConfig::new(1, 2, 16).with_deadline(std::time::Duration::ZERO);
        let out = upper_most_specific(&index, &space, &cfg, &Bounds::constant(1));
        assert!(out.stats.timed_out);
        assert!(out.per_k.is_empty());
        // Without a deadline the same run completes and is exact.
        let full = upper_most_specific(
            &index,
            &space,
            &DetectConfig::new(1, 2, 16),
            &Bounds::constant(1),
        );
        assert!(!full.stats.timed_out);
        assert_eq!(full.per_k.len(), 15);
    }

    #[test]
    fn combined_honors_deadline() {
        // Regression: `combined_bounds` ignored the deadline on both
        // sides. Under a zero budget the lower engine truncates before
        // producing any `k`, and the combined report is a (here empty)
        // consistent prefix rather than a full-length result.
        let (_ds, space, _ranking, index) = fig1();
        let cfg = DetectConfig::new(2, 4, 6).with_deadline(std::time::Duration::ZERO);
        let combined = combined_bounds(
            &index,
            &space,
            &cfg,
            &Bounds::constant(2),
            &Bounds::constant(3),
        );
        assert!(combined.per_k.is_empty());
        assert!(combined.stats.timed_out);
        // And the undeadlined run still covers the whole range.
        let full = combined_bounds(
            &index,
            &space,
            &DetectConfig::new(2, 4, 6),
            &Bounds::constant(2),
            &Bounds::constant(3),
        );
        assert_eq!(full.per_k.len(), 3);
        assert!(!full.stats.timed_out);
    }
}

/// Most **general** patterns exceeding the upper bound — the paper’s other
/// §III variant. Over-representation (`s_Rk > U_k`) is subset-closed
/// (subsets have larger counts), so the minimal patterns are found by the
/// same breadth-first dominance search the lower-bound problem uses, with
/// the predicate flipped: expansion stops at qualifying nodes.
pub fn upper_most_general_single_k<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    tau_s: usize,
    k: usize,
    upper: usize,
    stats: &mut SearchStats,
) -> Vec<Pattern> {
    let m = space.n_attrs() as AttrId;
    let mut res: Vec<Pattern> = Vec::new();
    let mut queue: std::collections::VecDeque<Pattern> = (0..m)
        .flat_map(|a| space.value_codes(a).map(move |v| Pattern::single(a, v)))
        .collect();
    while let Some(p) = queue.pop_front() {
        stats.nodes_evaluated += 1;
        let (sd, count) = index.counts(&p, k);
        if sd < tau_s {
            continue;
        }
        if count > upper {
            if !res.iter().any(|q| q.is_subset_of(&p)) {
                res.push(p);
            }
        } else {
            let start = p.max_attr().map_or(0, |a| a + 1);
            for a in start..m {
                for v in space.value_codes(a) {
                    queue.push_back(p.child(a, v));
                }
            }
        }
    }
    res.sort_unstable();
    res
}

/// Most **specific** substantial patterns below the global lower bound —
/// the paper’s remaining §III variant. For the global measure,
/// under-representation is superset-closed (supersets have counts at most
/// as large), so a biased substantial pattern is maximal exactly when
/// every single-term extension falls below `τs`.
pub fn lower_most_specific_single_k<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    tau_s: usize,
    k: usize,
    lower: usize,
    stats: &mut SearchStats,
) -> Vec<Pattern> {
    let m = space.n_attrs() as AttrId;
    let mut qualifying: Vec<Pattern> = Vec::new();
    let mut stack: Vec<Pattern> = (0..m)
        .flat_map(|a| space.value_codes(a).map(move |v| Pattern::single(a, v)))
        .collect();
    while let Some(p) = stack.pop() {
        stats.nodes_evaluated += 1;
        let (sd, count) = index.counts(&p, k);
        if sd < tau_s {
            continue;
        }
        let start = p.max_attr().map_or(0, |a| a + 1);
        for a in start..m {
            for v in space.value_codes(a) {
                stack.push(p.child(a, v));
            }
        }
        if count < lower {
            qualifying.push(p);
        }
    }
    let mut maximal: Vec<Pattern> = qualifying
        .into_iter()
        .filter(|p| {
            // Maximal ⟺ no substantial 1-extension exists (any such
            // extension would inherit the bias by anti-monotonicity).
            for a in 0..m {
                if p.value_of(a).is_some() {
                    continue;
                }
                for v in space.value_codes(a) {
                    let mut terms = p.terms().to_vec();
                    terms.push((a, v));
                    let ext = Pattern::from_terms(terms).expect("attribute unused");
                    stats.nodes_evaluated += 1;
                    if index.size_in_data(&ext) >= tau_s {
                        return false;
                    }
                }
            }
            true
        })
        .collect();
    maximal.sort_unstable();
    maximal
}

#[cfg(test)]
mod variant_tests {
    use super::*;
    use crate::oracle;
    use crate::space::RankedIndex;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_data::Dataset;
    use rankfair_rank::Ranking;

    fn fig1() -> (Dataset, PatternSpace, Ranking, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (ds, space, ranking, index)
    }

    #[test]
    fn upper_most_general_matches_bruteforce() {
        let (ds, space, ranking, index) = fig1();
        let mut stats = SearchStats::default();
        for tau in [1, 3] {
            for k in [4, 8, 16] {
                for u in [0, 1, 3] {
                    let got = upper_most_general_single_k(&index, &space, tau, k, u, &mut stats);
                    let all = oracle::enumerate_substantial(&ds, &space, &ranking, tau);
                    let qualifying: Vec<&Pattern> = all
                        .iter()
                        .filter(|p| oracle::naive_counts(&ds, &space, &ranking, p, k).1 > u)
                        .collect();
                    let mut want: Vec<Pattern> = qualifying
                        .iter()
                        .filter(|p| !qualifying.iter().any(|q| q.is_proper_subset_of(p)))
                        .map(|p| (*p).clone())
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "tau={tau} k={k} u={u}");
                }
            }
        }
    }

    #[test]
    fn lower_most_specific_matches_bruteforce() {
        let (ds, space, ranking, index) = fig1();
        let mut stats = SearchStats::default();
        for tau in [2, 4] {
            for k in [4, 8] {
                for l in [1, 2, 4] {
                    let got = lower_most_specific_single_k(&index, &space, tau, k, l, &mut stats);
                    let all = oracle::enumerate_substantial(&ds, &space, &ranking, tau);
                    let qualifying: Vec<&Pattern> = all
                        .iter()
                        .filter(|p| oracle::naive_counts(&ds, &space, &ranking, p, k).1 < l)
                        .collect();
                    let mut want: Vec<Pattern> = qualifying
                        .iter()
                        .filter(|p| !qualifying.iter().any(|q| p.is_proper_subset_of(q)))
                        .map(|p| (*p).clone())
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "tau={tau} k={k} l={l}");
                }
            }
        }
    }

    #[test]
    fn most_specific_results_are_substantial_and_maximal() {
        let (_ds, space, _ranking, index) = fig1();
        let mut stats = SearchStats::default();
        let res = lower_most_specific_single_k(&index, &space, 4, 4, 2, &mut stats);
        assert!(!res.is_empty());
        for p in &res {
            assert!(index.size_in_data(p) >= 4);
        }
        for a in &res {
            for b in &res {
                assert!(a == b || !a.is_proper_subset_of(b));
            }
        }
    }
}
