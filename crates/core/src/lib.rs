//! Detection of groups with biased representation in ranking.
//!
//! This crate implements the core contribution of *“Detection of Groups
//! with Biased Representation in Ranking”* (Li, Moskovitch, Jagadish —
//! ICDE 2023): given a dataset, a black-box ranking and a range of `k`
//! values, find **all most general patterns** (conjunctions of
//! attribute=value terms describing groups) whose representation among the
//! top-`k` ranked tuples is biased, for every `k` in the range — without
//! pre-defining protected groups.
//!
//! Two fairness measures are supported (the paper’s Problems 3.1 and 3.2):
//!
//! * **global bounds** — a group is biased at `k` when its count in the
//!   top-`k` falls below a user-given lower bound `L_k`
//!   ([`BiasMeasure::GlobalLower`]);
//! * **proportional representation** — a group is biased at `k` when its
//!   count falls below `α · s_D(p) · k / |D|`
//!   ([`BiasMeasure::Proportional`]).
//!
//! Three algorithms compute the result:
//!
//! * [`iter_td`] — the paper’s baseline `IterTD`: one full top-down search
//!   of the pattern graph per `k` (Algorithm 1 applied iteratively);
//! * [`global_bounds`] — Algorithm 2: reuses the search frontier between
//!   consecutive `k` values, re-examining only patterns the newly added
//!   tuple satisfies;
//! * [`prop_bounds`] — Algorithm 3: additionally schedules each non-biased
//!   pattern at the future `k̃` where the growing proportional bound would
//!   first overtake its count.
//!
//! All three provably return the same result set; the test suite checks
//! them against each other and against a brute-force [`oracle`] on
//! thousands of randomized instances, and pins the paper’s worked Examples
//! 2.3–4.9 as unit tests.
//!
//! # Quickstart
//!
//! ```
//! use rankfair_core::{Detector, DetectConfig, BiasMeasure, Bounds};
//! use rankfair_data::examples::{students_fig1, fig1_rank_order};
//! use rankfair_rank::Ranking;
//!
//! let ds = students_fig1();
//! let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
//! let detector = Detector::with_ranking(&ds, ranking).unwrap();
//! let cfg = DetectConfig::new(4, 4, 5); // τs = 4, k ∈ [4, 5]
//! let out = detector.detect_optimized(&cfg, &BiasMeasure::GlobalLower(Bounds::constant(2)));
//! // At k = 4, {School=GP}, {Address=U}, {Failures=1} and {Failures=2} are
//! // under-represented (Example 4.6 of the paper).
//! let k4: Vec<String> = out.per_k[0]
//!     .patterns
//!     .iter()
//!     .map(|p| detector.describe(p))
//!     .collect();
//! assert!(k4.contains(&"{Address=U}".to_string()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod detector;
mod engine;
pub mod oracle;
mod pattern;
mod report;
mod space;
mod stats;
mod suggest;
mod topdown;
pub mod upper;
pub mod util;

pub use bounds::{BiasMeasure, Bounds};
pub use detector::Detector;
pub use engine::{global_bounds, global_bounds_fast_steps, prop_bounds, DetectionStream};
pub use pattern::Pattern;
pub use report::{render_report, render_report_csv, summarize, BiasedGroup, KReport};
pub use space::{AttrId, PatternSpace, RankedIndex, SpaceError};
pub use stats::{DetectConfig, DetectionOutput, KResult, SearchStats};
pub use suggest::suggest_tau;
pub use topdown::{iter_td, top_down_single_k};
