//! Detection of groups with biased representation in ranking.
//!
//! This crate implements the core contribution of *“Detection of Groups
//! with Biased Representation in Ranking”* (Li, Moskovitch, Jagadish —
//! ICDE 2023): given a dataset, a black-box ranking and a range of `k`
//! values, find **all** patterns (conjunctions of attribute=value terms
//! describing groups) whose representation among the top-`k` ranked tuples
//! is biased, for every `k` in the range — without pre-defining protected
//! groups.
//!
//! The entry point is the owned, `Send + Sync` [`Audit`], built by
//! [`AuditBuilder`] and executing an [`AuditTask`]:
//!
//! * [`AuditTask::UnderRep`] — most general under-represented groups under
//!   either fairness measure (the paper's Problems 3.1/3.2):
//!   [`BiasMeasure::GlobalLower`] (`s_Rk(p) < L_k`) or
//!   [`BiasMeasure::Proportional`] (`s_Rk(p) < α·s_D(p)·k/n`);
//! * [`AuditTask::OverRep`] — groups exceeding an upper bound `U_k`
//!   (§III), most specific or most general ([`OverRepScope`]);
//! * [`AuditTask::Combined`] — both directions at once.
//!
//! Each task runs on the [`Engine`] of your choice — `Optimized` (the
//! incremental Algorithms 2–3 for under-representation and the matching
//! incremental upper engine for over-representation) or `Baseline`
//! (`IterTD` / brute force) — and all pairs provably agree; the
//! test suite checks them against each other and against a brute-force
//! [`oracle`] on thousands of randomized instances, and pins the paper's
//! worked Examples 2.3–4.9 as unit tests. [`Audit::run`] can split the
//! `k` range across scoped threads ([`AuditBuilder::threads`]);
//! [`Audit::run_streaming`] yields results `k` by `k` on demand; and
//! [`MonitorAudit`] keeps an audit live over an *evolving* ranking by
//! re-auditing only the `k` span each edit batch can have changed.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use rankfair_core::{Audit, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine};
//! use rankfair_data::examples::{students_fig1, fig1_rank_order};
//! use rankfair_rank::Ranking;
//!
//! let audit = Audit::builder(Arc::new(students_fig1()))
//!     .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
//!     .build()
//!     .unwrap();
//! let cfg = DetectConfig::new(4, 4, 5); // τs = 4, k ∈ [4, 5]
//! let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
//! let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
//! // At k = 4, {School=GP}, {Address=U}, {Failures=1} and {Failures=2} are
//! // under-represented (Example 4.6 of the paper).
//! let k4: Vec<String> = out.per_k[0].under.iter().map(|p| audit.describe(p)).collect();
//! assert!(k4.contains(&"{Address=U}".to_string()));
//! ```
//!
//! # Thread safety
//!
//! [`Audit`] owns all of its state (`Arc<Dataset>`, pattern space, ranking,
//! bitmap index) and is `Send + Sync` — asserted at compile time — so one
//! audit can serve concurrent requests:
//!
//! ```
//! fn assert_send_sync<T: Send + Sync>() {}
//! assert_send_sync::<rankfair_core::Audit>();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod bounds;
mod engine;
pub mod json;
mod monitor;
pub mod oracle;
mod pattern;
mod report;
mod shard;
mod space;
mod stats;
mod suggest;
mod topdown;
pub mod upper;
mod upper_engine;
pub mod util;

pub use audit::{
    Audit, AuditBuilder, AuditError, AuditIndex, AuditKResult, AuditOutcome, AuditStream,
    AuditTask, Engine, OverRepScope,
};
pub use bounds::{BiasMeasure, Bounds};
pub use monitor::{
    CheckpointStats, DeltaReport, KDelta, MonitorAudit, MonitorBuilder, MonitorError, RankingEdit,
};
pub use pattern::Pattern;
pub use report::{
    render_report, render_report_csv, summarize, summarize_audit, BiasDirection, BiasedGroup,
    KReport,
};
pub use shard::ShardedIndex;
pub use space::{AttrId, CountsProvider, PatternSpace, RankedIndex, SpaceError};
pub use stats::{DetectConfig, DetectionOutput, KResult, SearchStats};
pub use suggest::suggest_tau;
pub use topdown::top_down_single_k;
