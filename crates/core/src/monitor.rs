//! Live ranking monitor: delta re-audits over an evolving ranking.
//!
//! The paper's algorithms audit a *frozen* ranking; a serving deployment
//! faces rankings that churn — scores get re-estimated, new tuples
//! arrive, the interesting `k` cutoffs move. Rebuilding an [`Audit`]
//! (pattern space + rank-ordered bitmap index) and re-running the whole
//! `k` range after every batch of edits throws away almost all of the
//! previous work: a small batch of score updates only reorders a narrow
//! band of rank positions, and the per-`k` result sets outside that band
//! are **provably unchanged**.
//!
//! [`MonitorAudit`] exploits exactly that. It owns an evolving
//! [`Dataset`], a [`ScoredRanking`] (the updatable ranking layer), the
//! fixed [`PatternSpace`] and a [`RankedIndex`] it patches in place, plus
//! the current per-`k` results. One [`MonitorAudit::apply`] call takes a
//! batch of [`RankingEdit`]s and:
//!
//! 1. applies each edit to the dataset and the ranking, accumulating the
//!    hull `[lo, hi]` of rank positions whose occupant changed;
//! 2. patches the bitmap index over that span only
//!    ([`RankedIndex::rewrite_span`] — `O(span·m)` bit flips, no
//!    rebuild);
//! 3. re-runs the audit task over exactly the `k` values whose top-`k`
//!    membership changed. The hull `[lo+1, hi]` bounds them (for
//!    `k ≤ lo` the top-`k` prefix is untouched, and for `k > hi` it
//!    contains the whole reordered span, i.e. the same *set* of tuples —
//!    every count `s_Rk`, every bound `L_k`/`U_k`, `s_D` and `n` are
//!    therefore unchanged), but the hull over-recomputes: the true
//!    changed-`k` set is the **union of per-row net movement intervals**
//!    — a row that moved from position `op` to `p` changes top-`k`
//!    membership for `k ∈ [min(op,p)+1, max(op,p)]` only. The monitor
//!    computes that union, merges segments closer than the checkpoint
//!    cadence (a seek would replay the gap anyway), and replays only the
//!    surviving segments — a batch of two tight edit clusters far apart
//!    no longer re-audits the dead middle. The re-run drives the same
//!    incremental engines (`engine.rs` / `upper_engine.rs`) through the
//!    same [`crate::audit::AuditParts`] execution core as a fresh
//!    [`Audit::run`], so a delta re-audit cannot drift from a full one;
//! 4. splices the recomputed `k` results over the cached ones and diffs
//!    old vs new into a typed [`DeltaReport`] — which groups entered and
//!    left the biased set, per `k` and per direction.
//!
//! # Persistent engine state
//!
//! With [`Engine::Optimized`] the monitor keeps the engines' search
//! state **across** edit batches. The pattern-tree *structure* (interned
//! patterns, parent/child links, `s_D`, pruned verdicts) is `k`- and
//! bound-independent, so each engine interns it once in a flat
//! index-addressed **arena** that persists for the monitor's lifetime;
//! every `C` values of `k` ([`MonitorBuilder::checkpoint_every`]) the
//! engine snapshots only its *run state* — per-node counts, frontier
//! bits and result sets, a few flat-vector memcpys — never the arena.
//! Step 3 then *seeks* to the checkpoint at or below each recompute
//! segment and replays forward with per-`k` subtree walks, re-activating
//! stored arena nodes with prefix-only recounts (the stored `s_D` makes
//! the full fused scan redundant), instead of paying the from-scratch
//! top-down build at the segment's first `k` that used to dominate delta
//! cost. A checkpoint is exact after a reorder whenever no moved row's
//! net movement interval covers its `k` (stored counts are functions of
//! the top-`k` *set* alone); a seek checkpoint an edit did swallow is
//! **repaired in place** from the old-vs-new top-`k` set diff — ±count
//! walks for the tuples that crossed, plus one store reclassify — so no
//! pure reorder ever triggers a fresh engine build. (One carve out: a
//! *decreasing* lower step bound still rebuilds at its step during
//! replay, exactly as Algorithm 2 does — the store-rescan shortcut only
//! covers increases.)
//! [`MonitorAudit::checkpoint_stats`] exposes the live-checkpoint,
//! arena/memory and seek/repair/segment counters (also on the wire
//! `snapshot` op).
//!
//! Insertions grow the universe (`n`, and `s_D` of every pattern the new
//! tuple matches), which can flip substantiality, the proportional
//! bound and every stored checkpoint count at *any* `k`; a batch
//! containing an insertion therefore voids the checkpoint store and
//! recomputes the full `k` range (reseeding the checkpoint grid) —
//! still against the patched index, so the `O(n·m)` index rebuild is
//! avoided even then.
//!
//! ```
//! use rankfair_core::{
//!     AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, MonitorAudit, RankingEdit,
//! };
//! use rankfair_data::examples::students_fig1;
//!
//! let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
//! let mut monitor = MonitorAudit::builder(students_fig1(), "Grade")
//!     .build(DetectConfig::new(4, 4, 5), task, Engine::Optimized)
//!     .unwrap();
//! let before = monitor.results().to_vec();
//! // The bottom-ranked student gets a much better grade: re-audit the
//! // delta (their climb reorders every position above them).
//! let delta = monitor
//!     .apply(&[RankingEdit::ScoreUpdate { row: 5, score: 19.5 }])
//!     .unwrap();
//! assert!(delta.recomputed.is_some());
//! assert_ne!(before, monitor.results());
//! ```

use rankfair_data::{Dataset, RowValue, TupleId};
use rankfair_rank::{Ranking, ScoredRanking};

use crate::audit::{
    validate_task, AuditError, AuditKResult, AuditParts, AuditTask, Engine, EngineCheckpoints,
    ReorderSpec,
};
use crate::pattern::Pattern;
use crate::report::KReport;
use crate::space::{PatternSpace, RankedIndex};
use crate::stats::{DetectConfig, SearchStats};
use crate::util::FxHashMap;
use crate::AuditOutcome;

/// One edit to a live ranking.
#[derive(Debug, Clone, PartialEq)]
pub enum RankingEdit {
    /// Re-score an existing tuple; the ranking reorders locally.
    ScoreUpdate {
        /// Row id of the tuple to re-score.
        row: TupleId,
        /// The new score (written into the monitor's score column too).
        score: f64,
    },
    /// Append a new tuple (one cell per dataset column, in declaration
    /// order) and insert it into the ranking at the position its score
    /// column cell dictates.
    Insert {
        /// The new tuple's cells.
        cells: Vec<RowValue>,
    },
}

/// Typed error of the monitor layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorError {
    /// Construction-time audit error (bad attributes, invalid task
    /// bounds, `k_max` beyond the dataset, …).
    Audit(AuditError),
    /// The score column is missing or not numeric.
    ScoreColumn(String),
    /// A score update names a row outside the dataset.
    UnknownRow {
        /// The offending row id.
        row: TupleId,
        /// Rows currently ranked.
        n: usize,
    },
    /// An inserted tuple uses a label unknown to a pattern attribute.
    /// The pattern space (and the bitmap index derived from it) has fixed
    /// cardinalities; new labels on non-pattern columns are fine, but on
    /// a pattern attribute they would require a rebuild — reported as an
    /// error instead of silently miscounting.
    UnknownLabel {
        /// The pattern attribute column.
        column: String,
        /// The unknown label.
        label: String,
    },
    /// An edit carries a NaN score or an otherwise malformed payload.
    BadEdit(String),
    /// The configuration carries a deadline. Monitors require *complete*
    /// cached results for the whole `k` range — a truncated initial
    /// build would make every later delta splice against missing entries
    /// — so a deadline is rejected loudly instead of silently ignored.
    DeadlineUnsupported,
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::Audit(e) => write!(f, "audit: {e}"),
            MonitorError::ScoreColumn(c) => {
                write!(f, "score column `{c}` is missing or not numeric")
            }
            MonitorError::UnknownRow { row, n } => {
                write!(f, "row {row} out of range 0..{n}")
            }
            MonitorError::UnknownLabel { column, label } => write!(
                f,
                "label `{label}` is not in the dictionary of pattern attribute `{column}`"
            ),
            MonitorError::BadEdit(e) => write!(f, "bad edit: {e}"),
            MonitorError::DeadlineUnsupported => write!(
                f,
                "monitors do not support config.deadline (cached results must cover the whole k range)"
            ),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<AuditError> for MonitorError {
    fn from(e: AuditError) -> Self {
        MonitorError::Audit(e)
    }
}

/// Per-`k` membership changes produced by one edit batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KDelta {
    /// The `k` this delta refers to.
    pub k: usize,
    /// Under-represented groups that entered the result set.
    pub entered_under: Vec<Pattern>,
    /// Under-represented groups that left it.
    pub left_under: Vec<Pattern>,
    /// Over-represented groups that entered.
    pub entered_over: Vec<Pattern>,
    /// Over-represented groups that left.
    pub left_over: Vec<Pattern>,
}

impl KDelta {
    /// Whether nothing changed at this `k`.
    pub fn is_empty(&self) -> bool {
        self.entered_under.is_empty()
            && self.left_under.is_empty()
            && self.entered_over.is_empty()
            && self.left_over.is_empty()
    }
}

/// What one [`MonitorAudit::apply`] call did.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// Edits applied.
    pub edits: usize,
    /// Inclusive `k` hull that was re-audited (outer bounds of
    /// `segments`), or `None` when the batch provably changed no top-`k`
    /// set in the configured range.
    pub recomputed: Option<(usize, usize)>,
    /// The disjoint ascending `k` segments actually replayed — the union
    /// of per-row net movement intervals, merged across gaps shorter
    /// than the checkpoint cadence and clamped to the configured range.
    /// Empty iff `recomputed` is `None`; a single hull-wide segment for
    /// insertions (and in hull-replay mode).
    pub segments: Vec<(usize, usize)>,
    /// The `k` values whose result sets changed, with the group-level
    /// diff. Only non-empty deltas appear; `k` ascending.
    pub changed: Vec<KDelta>,
    /// Instrumentation of the re-audit (zero when nothing was recomputed).
    pub stats: SearchStats,
}

impl DeltaReport {
    /// Total `(k, group)` membership changes, both directions.
    pub fn total_changes(&self) -> usize {
        self.changed
            .iter()
            .map(|d| {
                d.entered_under.len()
                    + d.left_under.len()
                    + d.entered_over.len()
                    + d.left_over.len()
            })
            .sum()
    }
}

/// A point-in-time view of the monitor's persistent engine state: how
/// many checkpoints are live, what they cost in memory, and how well the
/// delta replays have been exploiting them. `None` from
/// [`MonitorAudit::checkpoint_stats`] means the monitor runs the baseline
/// engine, which keeps no state between `k` values to checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Grid spacing `C`: one engine snapshot every `C` values of `k`.
    pub cadence: usize,
    /// Live lower-engine checkpoints.
    pub lower_checkpoints: usize,
    /// Live upper-engine checkpoints.
    pub upper_checkpoints: usize,
    /// Node *slots* held across every snapshot (each slot one `u32`
    /// count plus frontier bits) — the memory the speed/memory trade-off
    /// spends (smaller `C` ⇒ shorter replays, more stored slots).
    pub stored_nodes: usize,
    /// Pattern nodes interned across both engines' persistent arenas —
    /// structure stored once, shared by every snapshot.
    pub arena_nodes: usize,
    /// Delta runs (per direction) that resumed from a checkpoint.
    pub seeks: u64,
    /// Runs that found no usable checkpoint and paid a from-scratch
    /// build (includes the initial audit).
    pub cold_builds: u64,
    /// Seek checkpoints repaired in place (±count walks over the top-`k`
    /// set diff + one store reclassify) because an edit had swallowed
    /// them — each repair is a from-scratch build avoided.
    pub repairs: u64,
    /// Every `k` position the replay drivers computed (cold builds,
    /// catch-up steps and requested `k`s alike) — the total replay work.
    pub replayed_steps: u64,
    /// Node activations served by the arena's stored `s_D` plus a
    /// truncated prefix-only recount, instead of a full fused scan.
    pub prefix_recounts: u64,
    /// Replay segments driven (per engine direction) — with segmented
    /// replay a sparse batch contributes its changed-`k` clusters only.
    pub segments: u64,
    /// Checkpoints dropped by edit invalidation (everything, arena
    /// included, on insertions; reorders repair instead).
    pub invalidated: u64,
}

/// Fluent construction of a [`MonitorAudit`].
pub struct MonitorBuilder {
    dataset: Dataset,
    score_column: String,
    ascending: bool,
    attrs: Option<Vec<String>>,
    checkpoint_every: usize,
    segmented: bool,
}

impl MonitorBuilder {
    /// Ranks ascending (lower scores first) instead of the default
    /// descending.
    pub fn ascending(mut self, ascending: bool) -> Self {
        self.ascending = ascending;
        self
    }

    /// Sets the checkpoint cadence `C` (clamped to ≥ 1; default
    /// [`MonitorAudit::DEFAULT_CHECKPOINT_CADENCE`]): the optimized
    /// engines snapshot their search state every `C` values of `k`, so a
    /// delta re-audit replays at most `C − 1` extra `k` steps to reach
    /// its span — at the cost of `⌈k_max / C⌉` stored node stores.
    /// Smaller `C` = faster deltas, more memory.
    pub fn checkpoint_every(mut self, cadence: usize) -> Self {
        self.checkpoint_every = cadence.max(1);
        self
    }

    /// Toggles segmented replay (default `true`): delta re-audits replay
    /// only the union of per-row net movement intervals instead of the
    /// whole edit hull `[lo+1, hi]`. `false` restores hull replay — the
    /// differential sweeps compare both modes against a fresh audit.
    pub fn segmented_replay(mut self, segmented: bool) -> Self {
        self.segmented = segmented;
        self
    }

    /// Restricts the pattern attributes to the named columns (default:
    /// every categorical column).
    pub fn attributes<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.attrs = Some(attrs.into_iter().map(Into::into).collect());
        self
    }

    /// Builds the monitor and runs the initial full audit.
    pub fn build(
        self,
        cfg: DetectConfig,
        task: AuditTask,
        engine: Engine,
    ) -> Result<MonitorAudit, MonitorError> {
        let Some(score_col) = self.dataset.column_index(&self.score_column) else {
            return Err(MonitorError::ScoreColumn(self.score_column));
        };
        let Some(scores) = self.dataset.column(score_col).values() else {
            return Err(MonitorError::ScoreColumn(self.score_column));
        };
        let scored = if self.ascending {
            ScoredRanking::ascending(scores.to_vec())
        } else {
            ScoredRanking::new(scores.to_vec())
        }
        .map_err(|e| MonitorError::BadEdit(e.to_string()))?;
        let space = match &self.attrs {
            Some(attrs) => {
                let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
                PatternSpace::from_column_names(&self.dataset, &refs)
            }
            None => PatternSpace::from_dataset(&self.dataset),
        }
        .map_err(AuditError::Space)?;
        if cfg.deadline.is_some() {
            return Err(MonitorError::DeadlineUnsupported);
        }
        validate_task(&cfg, &task, self.dataset.n_rows())?;
        let ranking = scored.to_ranking();
        let index = RankedIndex::build(&self.dataset, &space, &ranking);
        let parts = AuditParts {
            dataset: &self.dataset,
            space: &space,
            ranking: &ranking,
            index: &index,
        };
        // The optimized engines carry persistent, checkpointed state
        // between re-audits; the baseline rebuilds per k by design (it is
        // the differential anchor) and has nothing to checkpoint.
        let (out, checkpoints) = match engine {
            Engine::Optimized => {
                let mut ckpts = EngineCheckpoints::new(self.checkpoint_every);
                let out = parts.run_range_checkpointed(
                    &cfg,
                    &[(cfg.k_min, cfg.k_max)],
                    &task,
                    &mut ckpts,
                    None,
                );
                (out, Some(ckpts))
            }
            Engine::Baseline => (parts.run_range(&cfg, &task, engine), None),
        };
        Ok(MonitorAudit {
            dataset: self.dataset,
            space,
            score_col,
            scored,
            index,
            cfg,
            task,
            engine,
            checkpoints,
            segmented: self.segmented,
            results: out.per_k,
            stats: out.stats,
        })
    }
}

/// An audit kept up to date over an evolving ranking by delta re-audits.
/// See the module docs for the recomputation contract.
#[derive(Debug)]
pub struct MonitorAudit {
    dataset: Dataset,
    space: PatternSpace,
    score_col: usize,
    scored: ScoredRanking,
    index: RankedIndex,
    cfg: DetectConfig,
    task: AuditTask,
    engine: Engine,
    /// Persistent engine snapshots (`Some` iff `engine` is optimized).
    checkpoints: Option<EngineCheckpoints>,
    /// Replay the exact changed-`k` segments (default) vs the edit hull.
    segmented: bool,
    /// Current result sets for every `k` in `cfg`'s range, `k` ascending.
    results: Vec<AuditKResult>,
    /// Cumulative instrumentation: the initial build plus every re-audit.
    stats: SearchStats,
}

impl MonitorAudit {
    /// Starts a builder over `dataset`, ranking by `score_column`
    /// (numeric, descending by default).
    pub fn builder(dataset: Dataset, score_column: &str) -> MonitorBuilder {
        MonitorBuilder {
            dataset,
            score_column: score_column.to_string(),
            ascending: false,
            attrs: None,
            checkpoint_every: Self::DEFAULT_CHECKPOINT_CADENCE,
            segmented: true,
        }
    }

    /// Default checkpoint cadence `C` (see
    /// [`MonitorBuilder::checkpoint_every`]). Counts-only arena snapshots
    /// are cheap enough that a denser grid is affordable, but a finer
    /// default buys little: seek distance shrinks while per-replay grid
    /// maintenance (snapshot writes, repair-heal work) grows to match.
    pub const DEFAULT_CHECKPOINT_CADENCE: usize = 8;

    /// The evolving dataset (edits applied so far included).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The pattern space (fixed for the monitor's lifetime).
    pub fn space(&self) -> &PatternSpace {
        &self.space
    }

    /// The current ranking as a frozen snapshot (`O(n)`).
    pub fn ranking(&self) -> Ranking {
        self.scored.to_ranking()
    }

    /// Rows currently ranked.
    pub fn n_rows(&self) -> usize {
        self.dataset.n_rows()
    }

    /// The detection configuration the monitor audits under.
    pub fn config(&self) -> &DetectConfig {
        &self.cfg
    }

    /// The task the monitor audits.
    pub fn task(&self) -> &AuditTask {
        &self.task
    }

    /// Current per-`k` result sets, `k` ascending over the configured
    /// range.
    pub fn results(&self) -> &[AuditKResult] {
        &self.results
    }

    /// Cumulative instrumentation: initial build plus every delta
    /// re-audit.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// The persistent-engine-state picture: live checkpoints, their node
    /// footprint, and the seek/build/replay counters. `None` when the
    /// monitor runs [`Engine::Baseline`], which keeps no incremental
    /// state to checkpoint.
    pub fn checkpoint_stats(&self) -> Option<CheckpointStats> {
        self.checkpoints.as_ref().map(|ck| {
            let (lower, upper) = ck.live();
            CheckpointStats {
                cadence: ck.cadence,
                lower_checkpoints: lower,
                upper_checkpoints: upper,
                stored_nodes: ck.stored_nodes(),
                arena_nodes: ck.arena_nodes(),
                seeks: ck.counters.seeks,
                cold_builds: ck.counters.cold_builds,
                repairs: ck.counters.repairs,
                replayed_steps: ck.counters.replayed_steps,
                prefix_recounts: ck.counters.prefix_recounts,
                segments: ck.counters.segments,
                invalidated: ck.invalidated,
            }
        })
    }

    /// Renders the current results as enriched per-`k` reports (the same
    /// shape [`Audit::report`] produces).
    ///
    /// [`Audit::report`]: crate::Audit::report
    pub fn reports(&self) -> Vec<KReport> {
        let out = AuditOutcome {
            per_k: self.results.clone(),
            stats: self.stats.clone(),
        };
        crate::report::summarize_audit(&out, &self.index, &self.space, &self.task)
    }

    /// Renders a pattern with attribute names and value labels.
    pub fn describe(&self, p: &Pattern) -> String {
        self.space.display(p)
    }

    /// Pre-validates a batch so a failure cannot leave the monitor
    /// half-updated. `n` tracks insertions earlier in the same batch.
    fn validate_edits(&self, edits: &[RankingEdit]) -> Result<(), MonitorError> {
        let mut n = self.dataset.n_rows();
        // Row ids are dense: every insert of the batch must fit the
        // TupleId space *before* any edit is applied, or `insert` could
        // fail mid-batch and break atomicity.
        let inserts = edits
            .iter()
            .filter(|e| matches!(e, RankingEdit::Insert { .. }))
            .count();
        if !self.scored.can_insert(inserts) {
            return Err(MonitorError::BadEdit(format!(
                "batch of {inserts} inserts would overflow the TupleId row-id space"
            )));
        }
        // New labels earlier inserts in this batch will add per column:
        // `push_row` must not be able to fail on dictionary overflow
        // after part of the batch has been applied.
        let mut pending_labels: Vec<Vec<&str>> = vec![Vec::new(); self.dataset.n_cols()];
        for edit in edits {
            match edit {
                RankingEdit::ScoreUpdate { row, score } => {
                    if (*row as usize) >= n {
                        return Err(MonitorError::UnknownRow { row: *row, n });
                    }
                    if score.is_nan() {
                        return Err(MonitorError::BadEdit(format!(
                            "new score of row {row} is NaN"
                        )));
                    }
                }
                RankingEdit::Insert { cells } => {
                    if cells.len() != self.dataset.n_cols() {
                        return Err(MonitorError::BadEdit(format!(
                            "insert has {} cells but the dataset has {} columns",
                            cells.len(),
                            self.dataset.n_cols()
                        )));
                    }
                    for ((col, cell), pending) in self
                        .dataset
                        .columns()
                        .iter()
                        .zip(cells)
                        .zip(pending_labels.iter_mut())
                    {
                        match (cell, col.is_categorical()) {
                            (RowValue::Label(label), true) => {
                                let is_new = col.code_of(label).is_none()
                                    && !pending.contains(&label.as_str());
                                if is_new {
                                    let card = col.cardinality().unwrap_or(0);
                                    // `>=` mirrors the data layer's cap,
                                    // which reserves ValueCode::MAX.
                                    if card + pending.len() >= usize::from(u16::MAX) {
                                        return Err(MonitorError::BadEdit(format!(
                                            "column `{}` would exceed the dictionary space",
                                            col.name()
                                        )));
                                    }
                                    pending.push(label);
                                }
                            }
                            (RowValue::Number(_), false) => {}
                            _ => {
                                return Err(MonitorError::BadEdit(format!(
                                    "cell kind mismatch for column `{}`",
                                    col.name()
                                )))
                            }
                        }
                    }
                    match cells.get(self.score_col) {
                        Some(RowValue::Number(s)) if s.is_nan() => {
                            return Err(MonitorError::BadEdit("inserted score is NaN".into()))
                        }
                        Some(RowValue::Number(_)) => {}
                        // The kind check above already rejected a label
                        // here; cover it in-band all the same.
                        _ => {
                            return Err(MonitorError::BadEdit(
                                "insert score cell must be numeric".into(),
                            ))
                        }
                    }
                    // Pattern attributes have fixed cardinalities: a label
                    // outside the dictionary cannot be represented in the
                    // index.
                    for a in self.space.attr_ids() {
                        let col_idx = self.space.dataset_col(a);
                        let col = self.dataset.column(col_idx);
                        // Pattern columns are categorical by
                        // construction; reject in-band regardless.
                        let Some(RowValue::Label(label)) = cells.get(col_idx) else {
                            return Err(MonitorError::BadEdit(format!(
                                "cell for pattern column `{}` must be a label",
                                col.name()
                            )));
                        };
                        if col.code_of(label).is_none() {
                            return Err(MonitorError::UnknownLabel {
                                column: col.name().to_string(),
                                label: label.clone(),
                            });
                        }
                    }
                    n += 1;
                }
            }
        }
        Ok(())
    }

    /// Applies one batch of edits and re-audits the affected `k` span,
    /// returning the typed diff. On error the monitor is unchanged.
    pub fn apply(&mut self, edits: &[RankingEdit]) -> Result<DeltaReport, MonitorError> {
        self.validate_edits(edits)?;
        // The pre-batch order: a pure reorder's seek checkpoint may need
        // repairing from the old-vs-new top-k set diff. Batches with an
        // insert never repair (the whole store is invalidated), so skip
        // the O(n) copy for them.
        let has_insert = edits
            .iter()
            .any(|e| matches!(e, RankingEdit::Insert { .. }));
        let old_order =
            (self.checkpoints.is_some() && !has_insert).then(|| self.scored.order().to_vec());
        let mut span: Option<(usize, usize)> = None;
        let merge = |d: Option<(usize, usize)>, span: &mut Option<(usize, usize)>| {
            if let Some((lo, hi)) = d {
                *span = Some(match *span {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        };
        let mut inserted = false;
        for edit in edits {
            match edit {
                RankingEdit::ScoreUpdate { row, score } => {
                    let d = self
                        .scored
                        .update_score(*row, *score)
                        .map_err(|e| MonitorError::BadEdit(e.to_string()))?;
                    self.dataset
                        .set_number(*row as usize, self.score_col, *score)
                        .map_err(|e| MonitorError::BadEdit(e.to_string()))?;
                    merge(d.changed, &mut span);
                }
                RankingEdit::Insert { cells } => {
                    let score = match cells.get(self.score_col) {
                        Some(RowValue::Number(s)) => *s,
                        _ => unreachable!("validate_edits proved this cell numeric"), // lint:allow(panic-path) -- earlier batch edits are already applied here; an in-band error would break apply's all-or-nothing contract, and validate_edits pre-proved the cell
                    };
                    self.dataset
                        .push_row(cells)
                        .map_err(|e| MonitorError::BadEdit(e.to_string()))?;
                    let d = self
                        .scored
                        .insert(score)
                        .map_err(|e| MonitorError::BadEdit(e.to_string()))?;
                    self.index.grow();
                    inserted = true;
                    merge(d.changed, &mut span);
                }
            }
        }
        // Patch the index over the hull of occupant-changed positions.
        if let Some((lo, hi)) = span {
            self.index
                .rewrite_span(&self.dataset, &self.space, self.scored.order(), lo, hi);
        }
        // Checkpoint maintenance. An insertion moves `n` and the `s_D`
        // of every pattern the new tuple matches — every snapshot's
        // counts (and pruned flags) are stale, so the store is voided
        // and reseeded by the full-range recompute below. A pure reorder
        // of positions `[lo, hi]` only changes the top-k *sets* for
        // `k ∈ (lo, hi]`: snapshots at `k ≤ lo` and `k > hi` stay exact;
        // of the stale ones, the replay rewrites every grid k inside the
        // recomputed span and *repairs* the single seek checkpoint that
        // can sit in the gap `(lo, k_min)` — so no snapshot is ever
        // discarded on a reorder, and no reorder ever pays a fresh
        // build. (Gap proof: grid ks are ≥ k_min and the seek k is the
        // largest grid k ≤ max(lo + 1, k_min), so every other stale grid
        // k lies inside the recomputed span.)
        if inserted {
            if let Some(ckpts) = &mut self.checkpoints {
                ckpts.invalidate_all();
            }
        }
        // The k values whose top-k membership can have changed: the whole
        // range when the universe grew (n and s_D moved); else the union
        // of per-row net movement intervals — exact, and a subset of the
        // hull (lo, hi] that hull replay recomputes wholesale.
        let segments: Vec<(usize, usize)> = if inserted {
            vec![(self.cfg.k_min, self.cfg.k_max)]
        } else if let Some((lo, hi)) = span {
            let gap = self.checkpoints.as_ref().map_or(1, |ck| ck.cadence);
            match &old_order {
                Some(old) if self.segmented => changed_k_segments(
                    old,
                    self.scored.order(),
                    lo,
                    hi,
                    self.cfg.k_min,
                    self.cfg.k_max,
                    gap,
                ),
                _ => {
                    let k_lo = (lo + 1).max(self.cfg.k_min);
                    let k_hi = hi.min(self.cfg.k_max);
                    if k_lo <= k_hi {
                        vec![(k_lo, k_hi)]
                    } else {
                        Vec::new()
                    }
                }
            }
        } else {
            Vec::new()
        };
        // Every segment empty (or clamped away): no top-k set in the
        // configured range changed, nothing to recompute — checkpoints in
        // the hull's dead middle are exact by the same argument.
        let Some((&(k_lo, _), &(_, k_hi))) = segments.first().zip(segments.last()) else {
            return Ok(DeltaReport {
                edits: edits.len(),
                recomputed: None,
                segments: Vec::new(),
                changed: Vec::new(),
                stats: SearchStats::default(),
            });
        };
        let ranking = self.scored.to_ranking();
        let parts = AuditParts {
            dataset: &self.dataset,
            space: &self.space,
            ranking: &ranking,
            index: &self.index,
        };
        // The delta path: seek into the persistent engine snapshots
        // (repairing a seek point this batch's edits swallowed) and
        // replay each segment, instead of paying a from-scratch engine
        // build at `k_lo`. Baseline monitors re-run the hull the old way
        // (their segments are always the single clamped hull — the
        // segmented union needs the pre-batch order, which only
        // checkpointed monitors retain).
        let reorder = if inserted {
            None
        } else {
            old_order
                .zip(span)
                .map(|(old_order, (lo, _))| ReorderSpec { lo, old_order })
        };
        let out = match &mut self.checkpoints {
            Some(ckpts) => parts.run_range_checkpointed(
                &self.cfg,
                &segments,
                &self.task,
                ckpts,
                reorder.as_ref(),
            ),
            None => {
                let sub = DetectConfig {
                    tau_s: self.cfg.tau_s,
                    k_min: k_lo,
                    k_max: k_hi,
                    deadline: None,
                };
                parts.run_range(&sub, &self.task, self.engine)
            }
        };
        // Re-audits run back to back with the initial build: their wall
        // clocks add (merge's max is for parallel workers).
        let elapsed_before = self.stats.elapsed;
        self.stats.merge(&out.stats);
        self.stats.elapsed = elapsed_before + out.stats.elapsed;
        let mut changed = Vec::new();
        for new in out.per_k {
            let slot = new.k - self.cfg.k_min;
            let old = std::mem::replace(&mut self.results[slot], new); // lint:allow(panic-path) -- run_range only produces k inside (k_lo, k_hi] ⊆ the configured grid `results` was built over
            let new = &self.results[slot]; // lint:allow(panic-path) -- same in-grid slot as the line above

            let (entered_under, left_under) = diff_sorted(&old.under, &new.under);
            let (entered_over, left_over) = diff_sorted(&old.over, &new.over);
            let delta = KDelta {
                k: new.k,
                entered_under,
                left_under,
                entered_over,
                left_over,
            };
            if !delta.is_empty() {
                changed.push(delta);
            }
        }
        Ok(DeltaReport {
            edits: edits.len(),
            recomputed: Some((k_lo, k_hi)),
            segments,
            changed,
            stats: out.stats,
        })
    }
}

/// The exact changed-`k` set of a pure reorder, as disjoint ascending
/// inclusive segments. A row that moved from old position `op` to new
/// position `p` (0-based ranks) changes top-`k` membership exactly for
/// `k ∈ [min(op,p)+1, max(op,p)]`; the changed-`k` set is the union of
/// those intervals over every moved row in the hull `[lo, hi]`. Segments
/// separated by less than `gap` (the checkpoint cadence) are merged — a
/// separate seek would replay the gap anyway — and the result is clamped
/// to `[k_min, k_max]`. The union's outer bounds equal the hull's
/// `[lo+1, hi]`, so hull replay is the one-segment special case.
fn changed_k_segments(
    old_order: &[TupleId],
    new_order: &[TupleId],
    lo: usize,
    hi: usize,
    k_min: usize,
    k_max: usize,
    gap: usize,
) -> Vec<(usize, usize)> {
    let mut intervals: Vec<(usize, usize)> = Vec::new();
    match (old_order.get(lo..=hi), new_order.get(lo..=hi)) {
        (Some(old_hull), Some(new_hull)) => {
            let mut old_pos = FxHashMap::default();
            for (i, &row) in old_hull.iter().enumerate() {
                old_pos.insert(row, lo + i);
            }
            for (i, &row) in new_hull.iter().enumerate() {
                let p = lo + i;
                match old_pos.get(&row) {
                    // A pure reorder permutes the hull's own occupants; an
                    // unknown row means the caller's hull is unsound — fall
                    // back to full-hull replay rather than under-recompute.
                    None => {
                        debug_assert!(false, "row {row} entered the reorder hull");
                        intervals = vec![(lo + 1, hi)];
                        break;
                    }
                    Some(&op) if op != p => intervals.push((op.min(p) + 1, op.max(p))),
                    Some(_) => {}
                }
            }
        }
        // A hull outside the ranking is a caller bug; replay it whole
        // (clamped below) rather than panic or under-recompute.
        _ => {
            debug_assert!(false, "reorder hull [{lo}, {hi}] outside the ranking");
            intervals.push((lo + 1, hi));
        }
    }
    intervals.sort_unstable();
    let mut segments: Vec<(usize, usize)> = Vec::new();
    for (s, e) in intervals {
        match segments.last_mut() {
            Some(last) if s <= last.1 + gap => last.1 = last.1.max(e),
            _ => segments.push((s, e)),
        }
    }
    segments
        .into_iter()
        .filter_map(|(s, e)| {
            let s = s.max(k_min);
            let e = e.min(k_max);
            (s <= e).then_some((s, e))
        })
        .collect()
}

/// `(in new but not old, in old but not new)` for canonically sorted
/// pattern lists.
fn diff_sorted(old: &[Pattern], new: &[Pattern]) -> (Vec<Pattern>, Vec<Pattern>) {
    let mut entered = Vec::new();
    let mut left = Vec::new();
    let (mut i, mut j) = (0, 0);
    loop {
        match (old.get(i), new.get(j)) {
            (Some(o), Some(n)) => match o.cmp(n) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    left.push(o.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    entered.push(n.clone());
                    j += 1;
                }
            },
            (Some(o), None) => {
                left.push(o.clone());
                i += 1;
            }
            (None, Some(n)) => {
                entered.push(n.clone());
                j += 1;
            }
            (None, None) => break,
        }
    }
    (entered, left)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{BiasMeasure, Bounds};
    use crate::{Audit, OverRepScope};
    use rankfair_data::examples::students_fig1;
    use std::sync::Arc;

    fn grade_monitor(task: AuditTask) -> MonitorAudit {
        MonitorAudit::builder(students_fig1(), "Grade")
            .build(DetectConfig::new(2, 2, 16), task, Engine::Optimized)
            .unwrap()
    }

    /// A fresh audit over the monitor's current dataset must agree with
    /// the monitor's cached results exactly.
    fn assert_matches_fresh(monitor: &MonitorAudit) {
        let audit = Audit::builder(Arc::new(monitor.dataset().clone()))
            .ranking(monitor.ranking())
            .build()
            .unwrap();
        let fresh = audit
            .run(monitor.config(), monitor.task(), Engine::Optimized)
            .unwrap();
        assert_eq!(monitor.results(), &fresh.per_k[..]);
    }

    #[test]
    fn initial_results_match_fresh_audit() {
        for task in [
            AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.9 }),
            AuditTask::OverRep {
                upper: Bounds::constant(2),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::Combined {
                lower: Bounds::constant(2),
                upper: Bounds::constant(3),
            },
        ] {
            let monitor = grade_monitor(task);
            assert_matches_fresh(&monitor);
        }
    }

    #[test]
    fn score_update_recomputes_only_the_affected_span() {
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let mut monitor = grade_monitor(task);
        // Row 8 sits near the bottom of the fig1 ranking; a small nudge
        // that does not cross anyone yields no recompute at all.
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate {
                row: monitor.ranking().at(15),
                score: monitor.scored.score(monitor.ranking().at(15)) - 0.01,
            }])
            .unwrap();
        assert_eq!(d.recomputed, None);
        assert!(d.changed.is_empty());
        assert_matches_fresh(&monitor);
        // A big promotion recomputes a bounded span and changes results.
        let bottom = monitor.ranking().at(15);
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate {
                row: bottom,
                score: 19.9,
            }])
            .unwrap();
        let (lo, hi) = d.recomputed.unwrap();
        assert!(lo >= 2 && hi <= 16, "span [{lo}, {hi}]");
        assert_matches_fresh(&monitor);
    }

    #[test]
    fn insert_recomputes_full_range_and_matches_fresh_audit() {
        use rankfair_data::RowValue;
        let task = AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(3),
        };
        let mut monitor = grade_monitor(task);
        let d = monitor
            .apply(&[RankingEdit::Insert {
                cells: vec![
                    RowValue::Label("F".into()),
                    RowValue::Label("GP".into()),
                    RowValue::Label("U".into()),
                    RowValue::Label("0".into()),
                    RowValue::Number(12.5),
                ],
            }])
            .unwrap();
        assert_eq!(d.recomputed, Some((2, 16)));
        assert_eq!(monitor.n_rows(), 17);
        assert_matches_fresh(&monitor);
    }

    #[test]
    fn bad_edits_are_rejected_atomically() {
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let mut monitor = grade_monitor(task);
        let before = monitor.results().to_vec();
        let n_before = monitor.n_rows();
        // Second edit invalid: the valid first edit must not be applied.
        let err = monitor
            .apply(&[
                RankingEdit::ScoreUpdate { row: 0, score: 1.0 },
                RankingEdit::ScoreUpdate {
                    row: 99,
                    score: 1.0,
                },
            ])
            .unwrap_err();
        assert!(matches!(err, MonitorError::UnknownRow { row: 99, .. }));
        assert_eq!(monitor.results(), &before[..]);
        assert_eq!(monitor.n_rows(), n_before);
        // NaN scores, wrong arity, unknown labels.
        assert!(matches!(
            monitor
                .apply(&[RankingEdit::ScoreUpdate {
                    row: 0,
                    score: f64::NAN
                }])
                .unwrap_err(),
            MonitorError::BadEdit(_)
        ));
        assert!(matches!(
            monitor
                .apply(&[RankingEdit::Insert { cells: vec![] }])
                .unwrap_err(),
            MonitorError::BadEdit(_)
        ));
        use rankfair_data::RowValue;
        assert!(matches!(
            monitor
                .apply(&[RankingEdit::Insert {
                    cells: vec![
                        RowValue::Label("X".into()), // unknown Gender label
                        RowValue::Label("GP".into()),
                        RowValue::Label("U".into()),
                        RowValue::Label("0".into()),
                        RowValue::Number(1.0),
                    ],
                }])
                .unwrap_err(),
            MonitorError::UnknownLabel { .. }
        ));
        assert_eq!(monitor.results(), &before[..]);
    }

    #[test]
    fn builder_validates_score_column_and_task() {
        let err = MonitorAudit::builder(students_fig1(), "Nope")
            .build(
                DetectConfig::new(2, 2, 16),
                AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
                Engine::Optimized,
            )
            .unwrap_err();
        assert!(matches!(err, MonitorError::ScoreColumn(_)));
        let err = MonitorAudit::builder(students_fig1(), "Gender")
            .build(
                DetectConfig::new(2, 2, 16),
                AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
                Engine::Optimized,
            )
            .unwrap_err();
        assert!(matches!(err, MonitorError::ScoreColumn(_)));
        let err = MonitorAudit::builder(students_fig1(), "Grade")
            .build(
                DetectConfig::new(2, 2, 17),
                AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
                Engine::Optimized,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MonitorError::Audit(AuditError::InvalidKRange { .. })
        ));
        // A deadline would let the initial build truncate, leaving later
        // delta splices with missing k entries: rejected loudly.
        let err = MonitorAudit::builder(students_fig1(), "Grade")
            .build(
                DetectConfig::new(2, 2, 16).with_deadline(std::time::Duration::from_secs(1)),
                AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
                Engine::Optimized,
            )
            .unwrap_err();
        assert!(matches!(err, MonitorError::DeadlineUnsupported));
    }

    #[test]
    fn checkpoints_seek_and_invalidate_across_edit_kinds() {
        use rankfair_data::RowValue;
        let task = AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(2),
        };
        for cadence in [1usize, 3, 8] {
            let mut monitor = MonitorAudit::builder(students_fig1(), "Grade")
                .checkpoint_every(cadence)
                .build(DetectConfig::new(2, 2, 16), task.clone(), Engine::Optimized)
                .unwrap();
            let initial = monitor.checkpoint_stats().expect("optimized keeps state");
            assert_eq!(initial.cadence, cadence);
            // Both directions built once from scratch and laid checkpoints
            // on the grid k = k_min, k_min+C, … up to k_max = 16.
            assert_eq!(initial.cold_builds, 2);
            assert_eq!(initial.seeks, 0);
            let per_dir = (16 - 2) / cadence + 1;
            assert_eq!(initial.lower_checkpoints, per_dir);
            assert_eq!(initial.upper_checkpoints, per_dir);
            assert!(initial.stored_nodes > 0);
            // A mid-ranking swap: the delta seeks (repairing the seek
            // snapshot if the hull swallowed it) instead of rebuilding.
            let mid = monitor.ranking().at(9);
            let score = monitor.scored.score(monitor.ranking().at(5));
            let d = monitor
                .apply(&[RankingEdit::ScoreUpdate {
                    row: mid,
                    score: score + 0.01,
                }])
                .unwrap();
            assert!(d.recomputed.is_some());
            let after = monitor.checkpoint_stats().unwrap();
            assert_eq!(after.seeks, 2, "cadence {cadence}");
            assert_eq!(after.cold_builds, 2, "no fresh build on a reorder");
            assert_eq!(after.invalidated, 0, "reorders repair, never discard");
            // The replay heals the grid near the span start and may prune
            // deep stale snapshots (bounded clone churn), but always keeps
            // a seekable store.
            assert!(after.lower_checkpoints >= 1 && after.lower_checkpoints <= per_dir);
            assert!(after.upper_checkpoints >= 1 && after.upper_checkpoints <= per_dir);
            assert_matches_fresh(&monitor);
            // A strike at the very top of the ranking swallows every
            // checkpoint at or below the hull end — the seek snapshot is
            // repaired in place, still without any fresh build.
            let top = monitor.ranking().at(0);
            monitor
                .apply(&[RankingEdit::ScoreUpdate {
                    row: top,
                    score: -5.0,
                }])
                .unwrap();
            let struck = monitor.checkpoint_stats().unwrap();
            assert_eq!(struck.cold_builds, 2, "cadence {cadence}");
            assert_eq!(
                struck.repairs,
                after.repairs + 2,
                "both directions repair their seek"
            );
            assert!(struck.lower_checkpoints >= 1);
            assert_matches_fresh(&monitor);
            // An insertion moves n and s_D: every snapshot is dropped,
            // then the full-range recompute reseeds the grid.
            let before_insert = monitor.checkpoint_stats().unwrap();
            monitor
                .apply(&[RankingEdit::Insert {
                    cells: vec![
                        RowValue::Label("F".into()),
                        RowValue::Label("GP".into()),
                        RowValue::Label("U".into()),
                        RowValue::Label("0".into()),
                        RowValue::Number(12.5),
                    ],
                }])
                .unwrap();
            let after_insert = monitor.checkpoint_stats().unwrap();
            assert_eq!(
                after_insert.invalidated,
                before_insert.invalidated
                    + (before_insert.lower_checkpoints + before_insert.upper_checkpoints) as u64,
                "insert must drop every checkpoint"
            );
            assert_eq!(after_insert.cold_builds, 4, "insert rebuilds both sides");
            // The post-insert full-range rebuild relays the whole grid.
            assert_eq!(after_insert.lower_checkpoints, per_dir);
            assert_matches_fresh(&monitor);
        }
        // The baseline engine has no incremental state to checkpoint.
        let baseline = MonitorAudit::builder(students_fig1(), "Grade")
            .build(
                DetectConfig::new(2, 2, 8),
                AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
                Engine::Baseline,
            )
            .unwrap();
        assert!(baseline.checkpoint_stats().is_none());
    }

    /// Satellite of the segmented-replay change: the `(lo + 1).max(k_min)`
    /// / `hi.min(k_max)` clamp math at the very edges of the configured
    /// `k` grid, for both the no-op and the exactly-one-`k` outcomes.
    #[test]
    fn span_clamp_boundaries_at_k_min_and_k_max() {
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        // A swap of rank positions 0↔1 only changes the top-1 set, below
        // k_min = 2: provably nothing to recompute.
        let mut monitor = grade_monitor(task.clone());
        let top1 = monitor.ranking().at(1);
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate {
                row: top1,
                score: 20.5,
            }])
            .unwrap();
        assert_eq!(d.recomputed, None);
        assert!(d.segments.is_empty());
        assert_matches_fresh(&monitor);
        // Positions 1↔2 change exactly the top-2 set: k = k_min alone.
        let mut monitor = grade_monitor(task.clone());
        let row = monitor.ranking().at(2);
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate { row, score: 19.5 }])
            .unwrap();
        assert_eq!(d.recomputed, Some((2, 2)));
        assert_eq!(d.segments, vec![(2, 2)]);
        assert_matches_fresh(&monitor);
        // Positions 14↔15 change exactly the top-15 set: k = 15 ≤ k_max.
        let mut monitor = grade_monitor(task.clone());
        let row = monitor.ranking().at(15);
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate { row, score: 4.5 }])
            .unwrap();
        assert_eq!(d.recomputed, Some((15, 15)));
        assert_eq!(d.segments, vec![(15, 15)]);
        assert_matches_fresh(&monitor);
        // The same bottom swap under k_max = 14: the one changed k lies
        // past the range and the hi.min(k_max) clamp empties the span.
        let mut monitor = MonitorAudit::builder(students_fig1(), "Grade")
            .build(DetectConfig::new(2, 2, 14), task.clone(), Engine::Optimized)
            .unwrap();
        let row = monitor.ranking().at(15);
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate { row, score: 4.5 }])
            .unwrap();
        assert_eq!(d.recomputed, None);
        assert!(d.segments.is_empty());
        assert_matches_fresh(&monitor);
        // And with k_max = 15 exactly, the clamp keeps the edge k.
        let mut monitor = MonitorAudit::builder(students_fig1(), "Grade")
            .build(DetectConfig::new(2, 2, 15), task, Engine::Optimized)
            .unwrap();
        let row = monitor.ranking().at(15);
        let d = monitor
            .apply(&[RankingEdit::ScoreUpdate { row, score: 4.5 }])
            .unwrap();
        assert_eq!(d.recomputed, Some((15, 15)));
        assert_eq!(d.segments, vec![(15, 15)]);
        assert_matches_fresh(&monitor);
    }

    /// A batch of two tight swaps far apart replays two one-`k` segments
    /// instead of the whole hull — same results, strictly less work.
    #[test]
    fn segmented_replay_skips_the_dead_middle() {
        let task = AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(2),
        };
        let run = |segmented: bool| {
            let mut monitor = MonitorAudit::builder(students_fig1(), "Grade")
                .checkpoint_every(1)
                .segmented_replay(segmented)
                .build(DetectConfig::new(2, 2, 16), task.clone(), Engine::Optimized)
                .unwrap();
            let steps0 = monitor.checkpoint_stats().unwrap().replayed_steps;
            // Swap rank positions 2↔3 and 12↔13 in one batch.
            let r_a = monitor.ranking().at(3);
            let r_b = monitor.ranking().at(13);
            let d = monitor
                .apply(&[
                    RankingEdit::ScoreUpdate {
                        row: r_a,
                        score: 15.5,
                    },
                    RankingEdit::ScoreUpdate {
                        row: r_b,
                        score: 6.5,
                    },
                ])
                .unwrap();
            assert_matches_fresh(&monitor);
            let stats = monitor.checkpoint_stats().unwrap();
            (d, stats.replayed_steps - steps0)
        };
        let (seg, seg_steps) = run(true);
        let (hull, hull_steps) = run(false);
        assert_eq!(seg.recomputed, Some((3, 13)));
        assert_eq!(hull.recomputed, Some((3, 13)));
        assert_eq!(seg.segments, vec![(3, 3), (13, 13)]);
        assert_eq!(hull.segments, vec![(3, 13)]);
        assert_eq!(seg.changed, hull.changed);
        assert!(
            seg_steps < hull_steps,
            "segmented replayed {seg_steps} k steps vs hull {hull_steps}"
        );
    }

    #[test]
    fn reports_render_current_state() {
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
        let monitor = grade_monitor(task);
        let reports = monitor.reports();
        assert_eq!(reports.len(), 15);
        assert!(reports.iter().any(|r| !r.groups.is_empty()));
    }
}
