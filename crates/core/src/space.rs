use std::fmt;

use rankfair_data::{
    intersect_counts_iter, intersect_prefix_iter, Bitmap, Dataset, TupleId, ValueCode,
};
use rankfair_rank::Ranking;

use crate::pattern::Pattern;

/// Index of an attribute within a [`PatternSpace`] (not a dataset column
/// index — the space may select a subset of the dataset’s columns).
pub type AttrId = u16;

/// Error raised when constructing a [`PatternSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The referenced dataset column is not categorical.
    NotCategorical(String),
    /// No categorical columns were available.
    Empty,
    /// A referenced column does not exist.
    UnknownColumn(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::NotCategorical(c) => {
                write!(f, "column `{c}` is not categorical")
            }
            SpaceError::Empty => write!(f, "no categorical attributes"),
            SpaceError::UnknownColumn(c) => write!(f, "no column named `{c}`"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// The count surface the detection engines consume.
///
/// Everything in the lower and upper engines reaches the data through
/// three primitives — the universe size, the fused `(s_D, s_Rk)` count,
/// and the value of an attribute at a rank position — so any provider
/// implementing them runs the same algorithms unchanged: the single
/// [`RankedIndex`], the sharded additive merge of
/// [`ShardedIndex`](crate::ShardedIndex), or the
/// [`AuditIndex`](crate::AuditIndex) dispatching between them.
pub trait CountsProvider: Sync {
    /// Number of tuples.
    fn n(&self) -> usize;

    /// `(s_D(p), s_Rk(p))` — the pattern's size in the data and in the
    /// top-`k` prefix of the ranking.
    fn counts(&self, p: &Pattern, k: usize) -> (usize, usize);

    /// Value of `attr` for the tuple at rank position `pos` (0-based).
    fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode;

    /// `s_D(p)` alone.
    fn size_in_data(&self, p: &Pattern) -> usize {
        self.counts(p, 0).0
    }

    /// `s_Rk(p)` alone — the prefix half of [`CountsProvider::counts`].
    ///
    /// The engines call this when re-activating a stored node whose `s_D`
    /// is already interned in the arena, so providers should truncate the
    /// scan at `k` when they can ([`RankedIndex`] does); the default
    /// computes the fused pair and discards `s_D`.
    fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        self.counts(p, k).1
    }

    /// Whether the tuple at rank position `pos` satisfies `p`.
    fn matches_at(&self, pos: usize, p: &Pattern) -> bool {
        p.matches(|a| self.code_at(pos, a))
    }
}

#[derive(Debug, Clone)]
struct AttrInfo {
    name: String,
    labels: Vec<String>,
}

/// The set of attributes over which patterns are defined, in the fixed
/// order that drives the search tree of Definition 4.1.
#[derive(Debug, Clone)]
pub struct PatternSpace {
    attrs: Vec<AttrInfo>,
    dataset_cols: Vec<usize>,
}

impl PatternSpace {
    /// Builds a space over **all** categorical columns of `ds`, in
    /// declaration order.
    pub fn from_dataset(ds: &Dataset) -> Result<Self, SpaceError> {
        let cols = ds.categorical_columns();
        Self::from_columns(ds, &cols)
    }

    /// Builds a space over the given dataset columns (all must be
    /// categorical). The order of `cols` fixes the attribute order.
    pub fn from_columns(ds: &Dataset, cols: &[usize]) -> Result<Self, SpaceError> {
        if cols.is_empty() {
            return Err(SpaceError::Empty);
        }
        let mut attrs = Vec::with_capacity(cols.len());
        for &c in cols {
            let col = ds.column(c);
            match col.data() {
                rankfair_data::ColumnData::Categorical { labels, .. } => attrs.push(AttrInfo {
                    name: col.name().to_string(),
                    labels: labels.clone(),
                }),
                _ => return Err(SpaceError::NotCategorical(col.name().to_string())),
            }
        }
        Ok(PatternSpace {
            attrs,
            dataset_cols: cols.to_vec(),
        })
    }

    /// Builds a space from column names.
    pub fn from_column_names(ds: &Dataset, names: &[&str]) -> Result<Self, SpaceError> {
        let cols: Result<Vec<usize>, SpaceError> = names
            .iter()
            .map(|n| {
                ds.column_index(n)
                    .ok_or_else(|| SpaceError::UnknownColumn((*n).to_string()))
            })
            .collect();
        Self::from_columns(ds, &cols?)
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Cardinality of attribute `a`.
    pub fn card(&self, a: AttrId) -> usize {
        self.attrs[usize::from(a)].labels.len()
    }

    /// All attribute ids, typed — the checked replacement for the old
    /// `0..n_attrs() as u16` loops (a bare cast would wrap past
    /// `u16::MAX` attributes instead of failing).
    pub fn attr_ids(&self) -> std::ops::Range<AttrId> {
        0..AttrId::try_from(self.attrs.len()).expect("attribute count fits AttrId")
    }

    /// All value codes of attribute `a`, typed — the checked
    /// replacement for the old `0..card(a) as u16` loops. The data
    /// layer's dictionary cap reserves `ValueCode::MAX`, so every real
    /// cardinality fits.
    pub fn value_codes(&self, a: AttrId) -> std::ops::Range<ValueCode> {
        0..ValueCode::try_from(self.card(a)).expect("dictionary cap keeps cardinality in ValueCode")
    }

    /// Name of attribute `a`.
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attrs[usize::from(a)].name
    }

    /// Label of value `v` of attribute `a`.
    pub fn label(&self, a: AttrId, v: ValueCode) -> &str {
        &self.attrs[usize::from(a)].labels[usize::from(v)]
    }

    /// Dataset column index backing attribute `a`.
    pub fn dataset_col(&self, a: AttrId) -> usize {
        self.dataset_cols[usize::from(a)]
    }

    /// Attribute id for the attribute named `name`, if present.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| i as AttrId)
    }

    /// Builds a pattern from `(attribute name, value label)` pairs.
    ///
    /// Returns `None` if a name or label is unknown, or an attribute
    /// repeats.
    pub fn pattern(&self, pairs: &[(&str, &str)]) -> Option<Pattern> {
        let mut terms = Vec::with_capacity(pairs.len());
        for &(name, label) in pairs {
            let a = self.attr_by_name(name)?;
            let v = self.attrs[usize::from(a)]
                .labels
                .iter()
                .position(|l| l == label)? as ValueCode;
            terms.push((a, v));
        }
        Pattern::from_terms(terms)
    }

    /// Renders a pattern as `{Attr=label, …}`.
    pub fn display(&self, p: &Pattern) -> String {
        let mut out = String::from("{");
        for (i, &(a, v)) in p.terms().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(self.attr_name(a));
            out.push('=');
            out.push_str(self.label(a, v));
        }
        out.push('}');
        out
    }

    /// Total number of non-empty patterns, `∏(card+1) − 1` — the size of
    /// the pattern graph. Saturates at `u64::MAX`.
    pub fn pattern_graph_size(&self) -> u64 {
        let mut total: u64 = 1;
        for a in &self.attrs {
            total = total.saturating_mul(a.labels.len() as u64 + 1);
        }
        total - 1
    }
}

/// The dataset re-indexed in **rank order** with one bitmap per
/// (attribute, value) pair.
///
/// Position `p` of every structure refers to the tuple ranked `p+1`-th.
/// With this layout:
///
/// * `s_D(pattern)` = popcount of the AND of the term bitmaps,
/// * `s_Rk(pattern)` = popcount of the same AND over the first `k` bits,
///
/// both computed by one fused pass ([`RankedIndex::counts`]); and the tuple
/// entering the top-k when `k` grows by one is simply position `k`
/// ([`RankedIndex::code_at`] feeds the incremental walk).
#[derive(Debug, Clone)]
pub struct RankedIndex {
    n: usize,
    /// `codes[attr][pos]` — value of `attr` for the tuple at rank position
    /// `pos`.
    codes: Vec<Vec<ValueCode>>,
    /// `bitmaps[attr][value]` over rank positions.
    bitmaps: Vec<Vec<Bitmap>>,
}

impl RankedIndex {
    /// Builds the index for `ds` under `ranking`, over the attributes of
    /// `space`.
    ///
    /// # Panics
    /// Panics if the ranking length differs from the dataset, or codes
    /// exceed the space’s cardinalities.
    pub fn build(ds: &Dataset, space: &PatternSpace, ranking: &Ranking) -> Self {
        assert_eq!(
            ranking.len(),
            ds.n_rows(),
            "ranking must cover every dataset row"
        );
        Self::build_from_order(ds, space, ranking.order())
    }

    /// Builds the index over a (possibly partial) rank-order slice: the
    /// tuple at `order[pos]` occupies local position `pos`. This is the
    /// shard-local build — a contiguous block of a global ranking becomes
    /// its own index, with the additive-merge identity
    /// `counts(p, k) = Σ_shard counts(p, k ∩ shard span)` recovering the
    /// global counts (see [`ShardedIndex`](crate::ShardedIndex)).
    ///
    /// # Panics
    /// Panics if a row id is out of range for `ds`, or codes exceed the
    /// space's cardinalities.
    pub fn build_from_order(ds: &Dataset, space: &PatternSpace, order: &[TupleId]) -> Self {
        let n = order.len();
        let m = space.n_attrs();
        let mut codes = Vec::with_capacity(m);
        let mut bitmaps = Vec::with_capacity(m);
        for a in 0..m {
            let col = ds.column(space.dataset_col(a as AttrId));
            let card = space.card(a as AttrId);
            let mut attr_codes = Vec::with_capacity(n);
            let mut attr_maps = vec![Bitmap::new(n); card];
            for (pos, &row) in order.iter().enumerate() {
                let v = col.code(row as usize);
                assert!(usize::from(v) < card, "code out of range for attribute");
                attr_codes.push(v);
                attr_maps[usize::from(v)].set(pos);
            }
            codes.push(attr_codes);
            bitmaps.push(attr_maps);
        }
        RankedIndex { n, codes, bitmaps }
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `(s_D(p), s_Rk(p))` in one fused bitmap pass, with **zero heap
    /// allocations**: the term→bitmap mapping is a lazy iterator handed to
    /// [`intersect_counts_iter`], so the search hot path never materializes
    /// a `Vec<&Bitmap>` per pattern evaluation.
    pub fn counts(&self, p: &Pattern, k: usize) -> (usize, usize) {
        intersect_counts_iter(
            p.terms()
                .iter()
                .map(|&(a, v)| &self.bitmaps[usize::from(a)][usize::from(v)]),
            k,
            self.n,
        )
    }

    /// `s_D(p)` alone.
    pub fn size_in_data(&self, p: &Pattern) -> usize {
        self.counts(p, 0).0
    }

    /// `s_Rk(p)` alone, walking only the bitmap blocks that overlap the
    /// top-`k` prefix — the engines' arena re-activation recount, which
    /// for `k ≪ n` touches a `k/n` fraction of the fused pass's blocks.
    pub fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        intersect_prefix_iter(
            p.terms()
                .iter()
                .map(|&(a, v)| &self.bitmaps[usize::from(a)][usize::from(v)]),
            k,
            self.n,
        )
    }

    /// Value of `attr` for the tuple at rank position `pos` (0-based).
    pub fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode {
        self.codes[usize::from(attr)][pos]
    }

    /// Grows the index by one rank position (appended with placeholder
    /// codes and clear bits). The caller must follow up with
    /// [`RankedIndex::rewrite_span`] covering the new position — a live
    /// insertion shifts every position from the insertion point to the
    /// end, so the repaired span always includes it.
    pub fn grow(&mut self) {
        // The placeholder must be a code no attribute can have: a valid
        // code would fool `rewrite_span`'s `old == new` short-circuit into
        // skipping the position, leaving the new tuple's bit unset.
        for attr_codes in &mut self.codes {
            attr_codes.push(ValueCode::MAX);
        }
        for attr_maps in &mut self.bitmaps {
            for map in attr_maps {
                map.push_zero();
            }
        }
        self.n += 1;
    }

    /// Patches the index after ranking edits: for every position in
    /// `lo..=hi`, re-reads the occupant row from `order` and rewrites the
    /// position's codes and bitmap bits in place. `O((hi−lo+1)·m)` bit
    /// flips instead of the `O(n·m)` full rebuild — the index half of the
    /// monitor's delta re-audit.
    ///
    /// The span and value codes are **internal invariants**: the primary
    /// caller is the monitor, whose edit validation rejects out-of-range
    /// rows and unknown labels before anything is applied, and whose
    /// spans come from [`ScoredRanking`] deltas over the same universe.
    /// Those are `debug_assert!`s — a violation still fails loudly in
    /// release via the slice indexing that follows, so the serving wire
    /// path cannot corrupt silently (tests/wire_robustness.rs drives
    /// corrupted `update` ops through the full stack to prove no panic
    /// escapes the in-band error handling). The order-*length* check
    /// stays a hard assert: a short-but-span-covering `order` from an
    /// external caller would otherwise rewrite the index silently from
    /// the wrong universe.
    ///
    /// # Panics
    /// Panics if `order` does not cover every position of the index.
    ///
    /// [`ScoredRanking`]: rankfair_rank::ScoredRanking
    pub fn rewrite_span(
        &mut self,
        ds: &Dataset,
        space: &PatternSpace,
        order: &[TupleId],
        lo: usize,
        hi: usize,
    ) {
        debug_assert!(hi < self.n && lo <= hi, "span [{lo}, {hi}] out of range");
        assert_eq!(order.len(), self.n, "order must cover every position");
        for (a, (attr_codes, attr_maps)) in self.codes.iter_mut().zip(&mut self.bitmaps).enumerate()
        {
            let col = ds.column(space.dataset_col(a as AttrId));
            for pos in lo..=hi {
                let new = col.code(order[pos] as usize);
                debug_assert!(
                    usize::from(new) < attr_maps.len(),
                    "code out of range for attribute"
                );
                let old = attr_codes[pos];
                if old != new {
                    // `old` may be the `grow` placeholder (no bit set yet).
                    if let Some(map) = attr_maps.get_mut(usize::from(old)) {
                        map.clear(pos);
                    }
                    attr_maps[usize::from(new)].set(pos);
                    attr_codes[pos] = new;
                }
            }
        }
    }

    /// Whether the tuple at rank position `pos` satisfies `p`.
    pub fn matches_at(&self, pos: usize, p: &Pattern) -> bool {
        p.matches(|a| self.code_at(pos, a))
    }
}

impl CountsProvider for RankedIndex {
    fn n(&self) -> usize {
        RankedIndex::n(self)
    }

    fn counts(&self, p: &Pattern, k: usize) -> (usize, usize) {
        RankedIndex::counts(self, p, k)
    }

    fn code_at(&self, pos: usize, attr: AttrId) -> ValueCode {
        RankedIndex::code_at(self, pos, attr)
    }

    fn prefix_count(&self, p: &Pattern, k: usize) -> usize {
        RankedIndex::prefix_count(self, p, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    fn fig1() -> (Dataset, PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (ds, space, index)
    }

    #[test]
    fn space_reflects_categorical_columns() {
        let (_ds, space, _index) = fig1();
        assert_eq!(space.n_attrs(), 4);
        assert_eq!(space.attr_name(0), "Gender");
        assert_eq!(space.attr_name(3), "Failures");
        assert_eq!(space.card(3), 3); // failures 0/1/2
        assert_eq!(space.attr_by_name("School"), Some(1));
        assert_eq!(space.attr_by_name("Grade"), None); // numeric
    }

    #[test]
    fn numeric_column_rejected() {
        let ds = students_fig1();
        let grade_col = ds.column_index("Grade").unwrap();
        assert!(matches!(
            PatternSpace::from_columns(&ds, &[grade_col]),
            Err(SpaceError::NotCategorical(_))
        ));
        assert!(matches!(
            PatternSpace::from_columns(&ds, &[]),
            Err(SpaceError::Empty)
        ));
    }

    #[test]
    fn pattern_from_names_and_display() {
        let (_ds, space, _index) = fig1();
        let p = space
            .pattern(&[("School", "GP"), ("Address", "U")])
            .unwrap();
        assert_eq!(space.display(&p), "{School=GP, Address=U}");
        assert!(space.pattern(&[("School", "nope")]).is_none());
        assert!(space.pattern(&[("Nope", "GP")]).is_none());
    }

    #[test]
    fn example_2_3_counts() {
        // s_D({School=GP}) = 8 and s_R5 = 1 (Example 2.3 of the paper).
        let (_ds, space, index) = fig1();
        let p = space.pattern(&[("School", "GP")]).unwrap();
        assert_eq!(index.counts(&p, 5), (8, 1));
    }

    #[test]
    fn example_2_4_school_counts_in_top5() {
        let (_ds, space, index) = fig1();
        let ms = space.pattern(&[("School", "MS")]).unwrap();
        assert_eq!(index.counts(&ms, 5), (8, 4));
    }

    #[test]
    fn counts_match_naive_for_two_term_patterns() {
        let (ds, space, index) = fig1();
        let order = fig1_rank_order();
        for a in 0..space.n_attrs() as u16 {
            for b in (a + 1)..space.n_attrs() as u16 {
                for va in 0..space.card(a) as u16 {
                    for vb in 0..space.card(b) as u16 {
                        let p = Pattern::from_terms(vec![(a, va), (b, vb)]).unwrap();
                        for k in [0, 3, 7, 16] {
                            let naive_full = (0..16)
                                .filter(|&r| {
                                    ds.code(r, space.dataset_col(a)) == va
                                        && ds.code(r, space.dataset_col(b)) == vb
                                })
                                .count();
                            let naive_pre = order[..k]
                                .iter()
                                .filter(|&&r| {
                                    ds.code(r as usize, space.dataset_col(a)) == va
                                        && ds.code(r as usize, space.dataset_col(b)) == vb
                                })
                                .count();
                            assert_eq!(index.counts(&p, k), (naive_full, naive_pre));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn code_at_and_matches_at_follow_rank_order() {
        let (_ds, space, index) = fig1();
        // Rank position 0 is tuple 12: F, GP, U, failures 0.
        let gender = space.attr_by_name("Gender").unwrap();
        assert_eq!(space.label(gender, index.code_at(0, gender)), "F");
        let p = space
            .pattern(&[("School", "GP"), ("Address", "U")])
            .unwrap();
        assert!(index.matches_at(0, &p));
        assert!(!index.matches_at(1, &p)); // tuple 5 is MS/R
    }

    #[test]
    fn pattern_graph_size_counts_nonempty_patterns() {
        let (_ds, space, _index) = fig1();
        // (2+1)(2+1)(2+1)(3+1) − 1 = 107.
        assert_eq!(space.pattern_graph_size(), 107);
    }

    #[test]
    fn empty_pattern_counts_are_universe() {
        let (_ds, _space, index) = fig1();
        assert_eq!(index.counts(&Pattern::empty(), 5), (16, 5));
    }

    #[test]
    fn rewrite_span_matches_fresh_build_after_reorder() {
        let (ds, space, mut index) = fig1();
        let mut order = fig1_rank_order();
        // Rotate a middle span: positions 3..=8 change occupant.
        order[3..=8].rotate_left(2);
        index.rewrite_span(&ds, &space, &order, 3, 8);
        let fresh = RankedIndex::build(&ds, &space, &Ranking::from_order(order).unwrap());
        for a in 0..space.n_attrs() as u16 {
            for v in 0..space.card(a) as u16 {
                let p = Pattern::single(a, v);
                for k in 0..=16 {
                    assert_eq!(
                        index.counts(&p, k),
                        fresh.counts(&p, k),
                        "a={a} v={v} k={k}"
                    );
                }
            }
            for pos in 0..16 {
                assert_eq!(index.code_at(pos, a), fresh.code_at(pos, a));
            }
        }
    }

    #[test]
    fn grow_then_rewrite_covers_an_insertion() {
        use rankfair_data::RowValue;
        let (mut ds, space, mut index) = fig1();
        // Append a 17th student and slot them in at rank position 5.
        ds.push_row(&[
            RowValue::Label("F".into()),
            RowValue::Label("GP".into()),
            RowValue::Label("R".into()),
            RowValue::Label("1".into()),
            RowValue::Number(9.0),
        ])
        .unwrap();
        let mut order = fig1_rank_order();
        order.insert(5, 16);
        index.grow();
        index.rewrite_span(&ds, &space, &order, 5, 16);
        let fresh = RankedIndex::build(&ds, &space, &Ranking::from_order(order).unwrap());
        assert_eq!(index.n(), 17);
        for a in 0..space.n_attrs() as u16 {
            for v in 0..space.card(a) as u16 {
                let p = Pattern::single(a, v);
                // Every prefix: equal prefix counts at all k pins the
                // bitmaps bit-for-bit (regression: a grow placeholder code
                // of 0 skipped setting the new tuple's value-0 bits).
                for k in 0..=17 {
                    assert_eq!(
                        index.counts(&p, k),
                        fresh.counts(&p, k),
                        "a={a} v={v} k={k}"
                    );
                }
            }
        }
    }
}
