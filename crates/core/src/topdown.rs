//! Algorithm 1 (top-down search for a single `k`) and the `IterTD`
//! baseline that applies it for every `k` in the range (§IV-A).

use std::collections::VecDeque;

use crate::bounds::BiasMeasure;
use crate::pattern::Pattern;
use crate::space::{AttrId, CountsProvider, PatternSpace};
use crate::stats::{DeadlineGuard, DetectConfig, DetectionOutput, KResult, SearchStats};

/// Outcome of one single-`k` top-down search.
#[derive(Debug, Clone)]
pub(crate) struct SingleK {
    /// Most general biased substantial patterns (the paper’s `Res`).
    pub res: Vec<Pattern>,
    /// Biased substantial patterns reached during the search that are
    /// dominated by a pattern in `res` (the paper’s `DRes`). The engine
    /// module maintains its own equivalent; this one documents Algorithm 1
    /// faithfully and is exercised by the Example 4.6 test.
    #[cfg_attr(not(test), allow(dead_code))]
    pub dres: Vec<Pattern>,
    /// Whether the deadline fired mid-search (results incomplete).
    pub aborted: bool,
}

/// Runs Algorithm 1: a breadth-first top-down traversal of the search tree
/// (Definition 4.1) that stops expanding below size-pruned and biased
/// nodes.
///
/// Breadth-first order guarantees that when a pattern `p` is examined,
/// every *minimal* biased proper subset of `p` is already in `res` (subsets
/// live on strictly smaller levels and are never size-pruned, since `s_D`
/// is anti-monotone). The `update(Res, p)` of the paper therefore reduces
/// to a subset probe against `res`.
pub(crate) fn search_single_k<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    tau_s: usize,
    k: usize,
    measure: &BiasMeasure,
    stats: &mut SearchStats,
    guard: &mut DeadlineGuard,
) -> SingleK {
    let n = index.n();
    let m = space.n_attrs() as AttrId;
    let mut res: Vec<Pattern> = Vec::new();
    let mut dres: Vec<Pattern> = Vec::new();
    let mut queue: VecDeque<Pattern> = VecDeque::new();
    // generateChildren({}): every single-term pattern.
    for a in 0..m {
        for v in space.value_codes(a) {
            queue.push_back(Pattern::single(a, v));
        }
    }
    while let Some(p) = queue.pop_front() {
        if guard.expired() {
            return SingleK {
                res,
                dres,
                aborted: true,
            };
        }
        let (sd, count) = index.counts(&p, k);
        stats.nodes_evaluated += 1;
        if sd < tau_s {
            continue; // s_D is anti-monotone: the whole subtree is pruned.
        }
        if measure.is_biased(count, sd, k, n) {
            if res.iter().any(|q| q.is_subset_of(&p)) {
                dres.push(p);
            } else {
                res.push(p);
            }
        } else {
            let start = p.max_attr().map_or(0, |a| a + 1);
            for a in start..m {
                for v in space.value_codes(a) {
                    queue.push_back(p.child(a, v));
                }
            }
        }
    }
    res.sort_unstable();
    dres.sort_unstable();
    SingleK {
        res,
        dres,
        aborted: false,
    }
}

/// Public single-`k` entry point: the most general substantial patterns
/// with biased representation in the top-`k`, in canonical order.
pub fn top_down_single_k<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    tau_s: usize,
    k: usize,
    measure: &BiasMeasure,
) -> Vec<Pattern> {
    let mut stats = SearchStats::default();
    let mut guard = DeadlineGuard::new(None);
    search_single_k(index, space, tau_s, k, measure, &mut stats, &mut guard).res
}

/// The `IterTD` baseline (§IV-A): one full top-down search per `k`.
pub(crate) fn iter_td<I: CountsProvider>(
    index: &I,
    space: &PatternSpace,
    cfg: &DetectConfig,
    measure: &BiasMeasure,
) -> DetectionOutput {
    let mut stats = SearchStats::default();
    let mut guard = DeadlineGuard::new(cfg.deadline);
    let mut per_k = Vec::with_capacity(cfg.range_len());
    for k in cfg.k_min..=cfg.k_max {
        let single = search_single_k(index, space, cfg.tau_s, k, measure, &mut stats, &mut guard);
        stats.full_searches += 1;
        if single.aborted {
            stats.timed_out = true;
            break;
        }
        per_k.push(KResult {
            k,
            patterns: single.res,
        });
    }
    stats.elapsed = guard.elapsed();
    DetectionOutput { per_k, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Bounds;
    use crate::space::RankedIndex;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn fig1() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    fn names(space: &PatternSpace, pats: &[Pattern]) -> Vec<String> {
        pats.iter().map(|p| space.display(p)).collect()
    }

    #[test]
    fn example_4_6_top_down_at_k4() {
        // τs = 4, k = 4, L = 2: Res[4] must contain {School=GP},
        // {Address=U}, {Failures=1} and {Failures=2}; DRes must contain the
        // four dominated two-term patterns listed in Example 4.6.
        let (space, index) = fig1();
        let measure = BiasMeasure::GlobalLower(Bounds::constant(2));
        let mut stats = SearchStats::default();
        let mut guard = DeadlineGuard::new(None);
        let single = search_single_k(&index, &space, 4, 4, &measure, &mut stats, &mut guard);
        let res = names(&space, &single.res);
        assert!(res.contains(&"{School=GP}".to_string()));
        assert!(res.contains(&"{Address=U}".to_string()));
        assert!(res.contains(&"{Failures=1}".to_string()));
        assert!(res.contains(&"{Failures=2}".to_string()));
        // Example 4.6 lists its patterns “among others”; the other most
        // general biased patterns at k = 4 are the two below (both size 4,
        // one tuple in the top-4, and no biased subset).
        assert!(res.contains(&"{Gender=F, School=MS}".to_string()));
        assert!(res.contains(&"{Gender=F, Address=R}".to_string()));
        assert_eq!(res.len(), 6, "unexpected extra results: {res:?}");
        let dres = names(&space, &single.dres);
        for expected in [
            "{Gender=F, Address=U}",
            "{Gender=M, Address=U}",
            "{Gender=F, Failures=1}",
            "{Address=R, Failures=1}",
        ] {
            assert!(
                dres.contains(&expected.to_string()),
                "missing {expected} in {dres:?}"
            );
        }
    }

    #[test]
    fn example_4_6_top_down_at_k5() {
        // After adding tuple 14 (rank 5), {Address=U} and {Failures=1} are
        // no longer biased; {Address=U, Failures=1} and the four previously
        // dominated patterns become most general.
        let (space, index) = fig1();
        let measure = BiasMeasure::GlobalLower(Bounds::constant(2));
        let res = names(&space, &top_down_single_k(&index, &space, 4, 5, &measure));
        let expected = [
            "{School=GP}",
            "{Failures=2}",
            "{Address=U, Failures=1}",
            "{Gender=F, Address=U}",
            "{Gender=M, Address=U}",
            "{Gender=F, Failures=1}",
            "{Address=R, Failures=1}",
            // Unaffected carry-overs from k = 4 (tuple 14 is male):
            "{Gender=F, School=MS}",
            "{Gender=F, Address=R}",
        ];
        for e in expected {
            assert!(res.contains(&e.to_string()), "missing {e} in {res:?}");
        }
        assert_eq!(res.len(), expected.len(), "unexpected extras: {res:?}");
    }

    #[test]
    fn example_4_9_proportional_at_k4_and_k5() {
        // τs = 5, α = 0.9: Res[4] = {School=GP}, {Address=U}, {Failures=1};
        // Res[5] additionally contains {Gender=F}.
        let (space, index) = fig1();
        let measure = BiasMeasure::Proportional { alpha: 0.9 };
        let res4 = names(&space, &top_down_single_k(&index, &space, 5, 4, &measure));
        assert_eq!(
            res4,
            vec!["{School=GP}", "{Address=U}", "{Failures=1}"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        let res5 = names(&space, &top_down_single_k(&index, &space, 5, 5, &measure));
        assert!(res5.contains(&"{Gender=F}".to_string()));
        assert!(res5.contains(&"{School=GP}".to_string()));
        assert!(res5.contains(&"{Address=U}".to_string()));
        assert!(res5.contains(&"{Failures=1}".to_string()));
        assert_eq!(res5.len(), 4, "unexpected extras: {res5:?}");
    }

    #[test]
    fn results_are_most_general_and_substantial() {
        let (space, index) = fig1();
        for tau in [1, 2, 4, 8] {
            for k in 1..=16 {
                let measure = BiasMeasure::GlobalLower(Bounds::constant(3));
                let res = top_down_single_k(&index, &space, tau, k, &measure);
                for p in &res {
                    let (sd, count) = index.counts(p, k);
                    assert!(sd >= tau);
                    assert!(measure.is_biased(count, sd, k, index.n()));
                }
                for a in &res {
                    for b in &res {
                        assert!(
                            a == b || !a.is_proper_subset_of(b),
                            "{} subsumes {}",
                            space.display(a),
                            space.display(b)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn iter_td_covers_whole_range() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(4, 4, 6);
        let out = iter_td(
            &index,
            &space,
            &cfg,
            &BiasMeasure::GlobalLower(Bounds::constant(2)),
        );
        assert_eq!(out.per_k.len(), 3);
        assert_eq!(out.per_k[0].k, 4);
        assert_eq!(out.stats.full_searches, 3);
        assert!(!out.stats.timed_out);
        assert!(out.stats.nodes_evaluated > 0);
    }

    #[test]
    fn iter_td_deadline_truncates() {
        let (space, index) = fig1();
        let cfg = DetectConfig::new(1, 1, 16).with_deadline(std::time::Duration::from_nanos(1));
        // Tiny search: may or may not hit the (1024-tick) deadline check,
        // but must never panic and must stay consistent.
        let out = iter_td(
            &index,
            &space,
            &cfg,
            &BiasMeasure::GlobalLower(Bounds::constant(2)),
        );
        assert!(out.per_k.len() <= 16);
        if out.per_k.len() < 16 {
            assert!(out.stats.timed_out);
        }
    }

    #[test]
    fn huge_lower_bound_returns_level_one_patterns() {
        // With L_k > k every pattern is biased; the most general ones are
        // exactly the substantial single-term patterns.
        let (space, index) = fig1();
        let measure = BiasMeasure::GlobalLower(Bounds::constant(100));
        let res = top_down_single_k(&index, &space, 4, 5, &measure);
        assert!(res.iter().all(|p| p.len() == 1));
        let n_substantial_singletons: usize = (0..space.n_attrs() as u16)
            .map(|a| {
                (0..space.card(a) as u16)
                    .filter(|&v| index.size_in_data(&Pattern::single(a, v)) >= 4)
                    .count()
            })
            .sum();
        assert_eq!(res.len(), n_substantial_singletons);
    }

    #[test]
    fn zero_bound_returns_nothing() {
        let (space, index) = fig1();
        let measure = BiasMeasure::GlobalLower(Bounds::constant(0));
        assert!(top_down_single_k(&index, &space, 1, 5, &measure).is_empty());
    }
}
