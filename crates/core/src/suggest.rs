//! Automatic size-threshold suggestion — the paper’s §VIII names
//! “automatic suggestion for thresholds” as future work; this implements a
//! simple, documented heuristic.
//!
//! The threshold `τs` separates groups “substantial” enough to report.
//! Too small and the output drowns in tiny incidental groups; too large
//! and real minorities vanish. The heuristic proposed here: take the
//! sizes of all *single-attribute* groups (the level-1 patterns, which set
//! the scale of the group-size distribution) and return the requested
//! quantile of that distribution.

use crate::space::{AttrId, CountsProvider, PatternSpace};
use crate::Pattern;

/// Suggests `τs` as the `quantile` (in `[0, 1]`) of the level-1 group-size
/// distribution. `quantile = 0.25` means: report groups at least as large
/// as the smallest quarter of single-value groups.
///
/// # Panics
/// Panics if `quantile` is outside `[0, 1]`.
pub fn suggest_tau<I: CountsProvider>(index: &I, space: &PatternSpace, quantile: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&quantile),
        "quantile must be within [0, 1]"
    );
    let mut sizes: Vec<usize> = Vec::new();
    for a in 0..space.n_attrs() as AttrId {
        for v in space.value_codes(a) {
            let sd = index.size_in_data(&Pattern::single(a, v));
            if sd > 0 {
                sizes.push(sd);
            }
        }
    }
    if sizes.is_empty() {
        return 1;
    }
    sizes.sort_unstable();
    let pos = (quantile * (sizes.len() - 1) as f64).round() as usize;
    sizes[pos].max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::RankedIndex;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn index() -> (PatternSpace, RankedIndex) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        (space, index)
    }

    #[test]
    fn quantiles_are_monotone() {
        let (space, index) = index();
        let lo = suggest_tau(&index, &space, 0.0);
        let mid = suggest_tau(&index, &space, 0.5);
        let hi = suggest_tau(&index, &space, 1.0);
        assert!(lo <= mid && mid <= hi);
        assert!(lo >= 1);
    }

    #[test]
    fn fig1_values_are_sensible() {
        // Level-1 sizes in Fig. 1: gender 8/8, school 8/8, address 8/8,
        // failures 8/4/4 → min 4, max 8.
        let (space, index) = index();
        assert_eq!(suggest_tau(&index, &space, 0.0), 4);
        assert_eq!(suggest_tau(&index, &space, 1.0), 8);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_rejected() {
        let (space, index) = index();
        suggest_tau(&index, &space, 1.5);
    }
}
