//! Result presentation: enriching detected patterns with sizes, bounds and
//! bias gaps, and rendering the per-`k` report the paper sketches in §III
//! (“a user-friendly interface would organize the output by k value and
//! rank the groups by their overall size in the data or by the bias in
//! their representation”).

use crate::audit::{AuditOutcome, AuditTask};
use crate::bounds::BiasMeasure;
use crate::pattern::Pattern;
use crate::space::{CountsProvider, PatternSpace};
use crate::stats::DetectionOutput;

/// Which bound a reported group violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasDirection {
    /// Below the lower bound: fewer top-`k` seats than required.
    Under,
    /// Above the upper bound: more top-`k` seats than allowed.
    Over,
}

impl BiasDirection {
    /// Short display form (`under` / `over`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BiasDirection::Under => "under",
            BiasDirection::Over => "over",
        }
    }
}

/// A detected group enriched for display.
#[derive(Debug, Clone)]
pub struct BiasedGroup {
    /// The pattern describing the group.
    pub pattern: Pattern,
    /// `{Attr=value, …}` rendering.
    pub display: String,
    /// Which bound the group violates.
    pub direction: BiasDirection,
    /// Group size in the data, `s_D(p)`.
    pub size_in_data: usize,
    /// Group size in the top-`k`, `s_Rk(p)`.
    pub size_in_topk: usize,
    /// Required representation at this `k`: the minimum for
    /// [`BiasDirection::Under`], the allowed maximum for
    /// [`BiasDirection::Over`].
    pub required: f64,
    /// Bias magnitude, positive in the violating direction:
    /// `required − actual` for under-representation, `actual − required`
    /// for over-representation.
    pub bias_gap: f64,
}

/// All detected groups for one `k`, sorted by descending bias gap.
#[derive(Debug, Clone)]
pub struct KReport {
    /// The `k` this report covers.
    pub k: usize,
    /// Groups sorted by bias gap (largest first), ties by size.
    pub groups: Vec<BiasedGroup>,
}

/// Enriches a detection output into per-`k` reports.
pub fn summarize<I: CountsProvider>(
    out: &DetectionOutput,
    index: &I,
    space: &PatternSpace,
    measure: &BiasMeasure,
) -> Vec<KReport> {
    out.per_k
        .iter()
        .map(|kr| {
            let mut groups: Vec<BiasedGroup> = kr
                .patterns
                .iter()
                .map(|p| {
                    let (sd, count) = index.counts(p, kr.k);
                    let required = measure.required(sd, kr.k, index.n());
                    BiasedGroup {
                        pattern: p.clone(),
                        display: space.display(p),
                        direction: BiasDirection::Under,
                        size_in_data: sd,
                        size_in_topk: count,
                        required,
                        bias_gap: required - count as f64,
                    }
                })
                .collect();
            groups.sort_by(|a, b| {
                b.bias_gap
                    .partial_cmp(&a.bias_gap)
                    .expect("gaps are finite")
                    .then(b.size_in_data.cmp(&a.size_in_data))
                    .then(a.display.cmp(&b.display))
            });
            KReport { k: kr.k, groups }
        })
        .collect()
}

/// Enriches an [`AuditOutcome`] into per-`k` reports covering **both**
/// directions: under-represented groups first (largest deficit first),
/// then over-represented ones (largest excess first).
pub fn summarize_audit<I: CountsProvider>(
    out: &AuditOutcome,
    index: &I,
    space: &PatternSpace,
    task: &AuditTask,
) -> Vec<KReport> {
    let under_required = |sd: usize, k: usize| -> f64 {
        match task {
            AuditTask::UnderRep(measure) => measure.required(sd, k, index.n()),
            AuditTask::Combined { lower, .. } => lower.at(k) as f64,
            AuditTask::OverRep { .. } => 0.0, // no under side
        }
    };
    let upper_allowed = |k: usize| -> f64 {
        match task {
            AuditTask::OverRep { upper, .. } | AuditTask::Combined { upper, .. } => {
                upper.at(k) as f64
            }
            AuditTask::UnderRep(_) => 0.0, // no over side
        }
    };
    out.per_k
        .iter()
        .map(|kr| {
            let enrich = |p: &Pattern, direction: BiasDirection| {
                let (sd, count) = index.counts(p, kr.k);
                let required = match direction {
                    BiasDirection::Under => under_required(sd, kr.k),
                    BiasDirection::Over => upper_allowed(kr.k),
                };
                let bias_gap = match direction {
                    BiasDirection::Under => required - count as f64,
                    BiasDirection::Over => count as f64 - required,
                };
                BiasedGroup {
                    pattern: p.clone(),
                    display: space.display(p),
                    direction,
                    size_in_data: sd,
                    size_in_topk: count,
                    required,
                    bias_gap,
                }
            };
            let sort = |groups: &mut Vec<BiasedGroup>| {
                groups.sort_by(|a, b| {
                    // total_cmp: a non-finite gap sorts deterministically
                    // instead of panicking report generation.
                    b.bias_gap
                        .total_cmp(&a.bias_gap)
                        .then(b.size_in_data.cmp(&a.size_in_data))
                        .then(a.display.cmp(&b.display))
                });
            };
            let mut under: Vec<BiasedGroup> = kr
                .under
                .iter()
                .map(|p| enrich(p, BiasDirection::Under))
                .collect();
            sort(&mut under);
            let mut over: Vec<BiasedGroup> = kr
                .over
                .iter()
                .map(|p| enrich(p, BiasDirection::Over))
                .collect();
            sort(&mut over);
            under.extend(over);
            KReport {
                k: kr.k,
                groups: under,
            }
        })
        .collect()
}

/// Renders reports as an aligned text table (one block per `k`).
pub fn render_report(reports: &[KReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!("k = {}\n", r.k));
        if r.groups.is_empty() {
            out.push_str("  (no biased groups)\n");
            continue;
        }
        let width = r
            .groups
            .iter()
            .map(|g| g.display.len())
            .max()
            .unwrap_or(0)
            .max("group".len());
        out.push_str(&format!(
            "  {:width$}  {:>5}  {:>6}  {:>6}  {:>9}  {:>7}\n",
            "group", "dir", "s_D", "top-k", "required", "gap"
        ));
        for g in &r.groups {
            out.push_str(&format!(
                "  {:width$}  {:>5}  {:>6}  {:>6}  {:>9.2}  {:>7.2}\n",
                g.display,
                g.direction.as_str(),
                g.size_in_data,
                g.size_in_topk,
                g.required,
                g.bias_gap
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Bounds;
    use crate::engine::global_bounds;
    use crate::space::RankedIndex;
    use crate::stats::DetectConfig;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    fn setup() -> (PatternSpace, RankedIndex, DetectionOutput, BiasMeasure) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let cfg = DetectConfig::new(4, 4, 5);
        let bounds = Bounds::constant(2);
        let out = global_bounds(&index, &space, &cfg, &bounds);
        (space, index, out, BiasMeasure::GlobalLower(bounds))
    }

    #[test]
    fn summary_contains_sizes_and_gaps() {
        let (space, index, out, measure) = setup();
        let reports = summarize(&out, &index, &space, &measure);
        assert_eq!(reports.len(), 2);
        let k4 = &reports[0];
        assert_eq!(k4.k, 4);
        let gp = k4
            .groups
            .iter()
            .find(|g| g.display == "{School=GP}")
            .expect("GP reported at k=4");
        assert_eq!(gp.size_in_data, 8);
        assert_eq!(gp.size_in_topk, 1);
        assert_eq!(gp.required, 2.0);
        assert_eq!(gp.bias_gap, 1.0);
    }

    #[test]
    fn groups_sorted_by_gap_desc() {
        let (space, index, out, measure) = setup();
        let reports = summarize(&out, &index, &space, &measure);
        for r in &reports {
            for w in r.groups.windows(2) {
                assert!(w[0].bias_gap >= w[1].bias_gap);
            }
        }
    }

    #[test]
    fn render_is_nonempty_and_mentions_k() {
        let (space, index, out, measure) = setup();
        let text = render_report(&summarize(&out, &index, &space, &measure));
        assert!(text.contains("k = 4"));
        assert!(text.contains("{School=GP}"));
        assert!(text.contains("required"));
    }

    #[test]
    fn render_handles_empty_result() {
        let reports = vec![KReport {
            k: 3,
            groups: vec![],
        }];
        assert!(render_report(&reports).contains("no biased groups"));
    }
}

/// Renders reports as CSV
/// (`k,direction,group,size_in_data,size_in_topk,required,gap`) for
/// machine consumption — plotting scripts, spreadsheets, CI checks.
pub fn render_report_csv(reports: &[KReport]) -> String {
    let mut out = String::from("k,direction,group,size_in_data,size_in_topk,required,gap\n");
    for r in reports {
        for g in &r.groups {
            let quoted = if g.display.contains(',') || g.display.contains('"') {
                format!("\"{}\"", g.display.replace('"', "\"\""))
            } else {
                g.display.clone()
            };
            out.push_str(&format!(
                "{},{},{},{},{},{:.4},{:.4}\n",
                r.k,
                g.direction.as_str(),
                quoted,
                g.size_in_data,
                g.size_in_topk,
                g.required,
                g.bias_gap
            ));
        }
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::bounds::{BiasMeasure, Bounds};
    use crate::engine::global_bounds;
    use crate::space::{PatternSpace, RankedIndex};
    use crate::stats::DetectConfig;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_rank::Ranking;

    #[test]
    fn csv_has_header_and_quoted_groups() {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let cfg = DetectConfig::new(4, 4, 5);
        let bounds = Bounds::constant(2);
        let out = global_bounds(&index, &space, &cfg, &bounds);
        let reports = summarize(&out, &index, &space, &BiasMeasure::GlobalLower(bounds));
        let csv = render_report_csv(&reports);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "k,direction,group,size_in_data,size_in_topk,required,gap"
        );
        // Multi-term groups contain ", " so they must be quoted.
        assert!(csv.contains("\"{Gender=F, School=MS}\""));
        // Every data line has 6 comma-separated fields outside quotes.
        for line in csv.lines().skip(1) {
            let mut fields = 1;
            let mut in_quotes = false;
            for ch in line.chars() {
                match ch {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => fields += 1,
                    _ => {}
                }
            }
            assert_eq!(fields, 7, "line `{line}`");
        }
    }
}
