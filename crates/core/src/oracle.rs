//! Brute-force reference implementation used as a differential-testing
//! oracle.
//!
//! Everything here is deliberately written on a different code path from
//! the production algorithms: counting scans rows naively (no bitmaps),
//! enumeration materializes *all* substantial patterns up front, and
//! minimality is a quadratic pairwise filter. Exponential — only for small
//! test instances.

use rankfair_data::Dataset;
use rankfair_rank::Ranking;

use crate::bounds::BiasMeasure;
use crate::pattern::Pattern;
use crate::space::{AttrId, PatternSpace};
use crate::stats::KResult;

/// Counts `(s_D(p), s_Rk(p))` by scanning rows (no bitmaps).
pub fn naive_counts(
    ds: &Dataset,
    space: &PatternSpace,
    ranking: &Ranking,
    p: &Pattern,
    k: usize,
) -> (usize, usize) {
    let matches = |row: usize| p.matches(|a| ds.code(row, space.dataset_col(a)));
    let sd = (0..ds.n_rows()).filter(|&r| matches(r)).count();
    let srk = ranking
        .top_k(k)
        .iter()
        .filter(|&&r| matches(r as usize))
        .count();
    (sd, srk)
}

/// Enumerates every non-empty pattern with `s_D(p) ≥ τs`, using only the
/// anti-monotonicity of `s_D` for pruning.
pub fn enumerate_substantial(
    ds: &Dataset,
    space: &PatternSpace,
    ranking: &Ranking,
    tau_s: usize,
) -> Vec<Pattern> {
    let mut out = Vec::new();
    let m = space.n_attrs() as AttrId;
    let mut stack: Vec<Pattern> = (0..m)
        .flat_map(|a| space.value_codes(a).map(move |v| Pattern::single(a, v)))
        .collect();
    while let Some(p) = stack.pop() {
        let (sd, _) = naive_counts(ds, space, ranking, &p, 0);
        if sd < tau_s {
            continue;
        }
        let start = p.max_attr().map_or(0, |a| a + 1);
        for a in start..m {
            for v in space.value_codes(a) {
                stack.push(p.child(a, v));
            }
        }
        out.push(p);
    }
    out
}

/// Reference detection: for each `k`, all most general substantial biased
/// patterns, computed by full enumeration + quadratic minimality filter.
pub fn detect(
    ds: &Dataset,
    space: &PatternSpace,
    ranking: &Ranking,
    tau_s: usize,
    k_min: usize,
    k_max: usize,
    measure: &BiasMeasure,
) -> Vec<KResult> {
    let n = ds.n_rows();
    let substantial = enumerate_substantial(ds, space, ranking, tau_s);
    let mut per_k = Vec::with_capacity(k_max - k_min + 1);
    for k in k_min..=k_max {
        let biased: Vec<&Pattern> = substantial
            .iter()
            .filter(|p| {
                let (sd, count) = naive_counts(ds, space, ranking, p, k);
                measure.is_biased(count, sd, k, n)
            })
            .collect();
        let mut patterns: Vec<Pattern> = biased
            .iter()
            .filter(|p| !biased.iter().any(|q| q.is_proper_subset_of(p)))
            .map(|p| (*p).clone())
            .collect();
        patterns.sort_unstable();
        per_k.push(KResult { k, patterns });
    }
    per_k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Bounds;
    use crate::space::RankedIndex;
    use rankfair_data::examples::{fig1_rank_order, students_fig1};

    fn fig1() -> (Dataset, PatternSpace, Ranking) {
        let ds = students_fig1();
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(fig1_rank_order()).unwrap();
        (ds, space, ranking)
    }

    #[test]
    fn naive_counts_agree_with_bitmap_index() {
        let (ds, space, ranking) = fig1();
        let index = RankedIndex::build(&ds, &space, &ranking);
        for p in enumerate_substantial(&ds, &space, &ranking, 1) {
            for k in [0, 1, 5, 9, 16] {
                assert_eq!(
                    naive_counts(&ds, &space, &ranking, &p, k),
                    index.counts(&p, k),
                    "pattern {} k={k}",
                    space.display(&p)
                );
            }
        }
    }

    #[test]
    fn enumeration_counts_all_substantial_patterns() {
        let (ds, space, ranking) = fig1();
        // With τs = 1 every pattern with at least one matching tuple
        // qualifies; with τs = 0 all 107 non-empty patterns of the graph
        // would qualify (some with zero support are still ≥ 0).
        let all = enumerate_substantial(&ds, &space, &ranking, 0);
        assert_eq!(all.len() as u64, space.pattern_graph_size());
        let sub = enumerate_substantial(&ds, &space, &ranking, 8);
        assert!(sub
            .iter()
            .all(|p| naive_counts(&ds, &space, &ranking, p, 0).0 >= 8));
        assert!(sub.len() < all.len());
    }

    #[test]
    fn oracle_matches_example_4_6() {
        let (ds, space, ranking) = fig1();
        let out = detect(
            &ds,
            &space,
            &ranking,
            4,
            4,
            5,
            &BiasMeasure::GlobalLower(Bounds::constant(2)),
        );
        let k4: Vec<String> = out[0].patterns.iter().map(|p| space.display(p)).collect();
        assert!(k4.contains(&"{Address=U}".to_string()));
        assert!(k4.contains(&"{Failures=1}".to_string()));
        assert_eq!(out[1].patterns.len(), 9);
    }
}
