//! Small utilities: a fast, non-cryptographic hasher for the hot pattern
//! maps.
//!
//! The detection engine probes a `(parent, attribute, value) → node` map on
//! every step of its incremental walk. SipHash (std’s default) dominates
//! profile time there, so we use the FxHash mix function (the one rustc
//! uses) — ~15 lines of code instead of a dependency, per the perf-book
//! guidance on alternative hashers. HashDoS resistance is irrelevant: keys
//! are internal node ids, not attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: `hash = (hash.rotate_left(5) ^ word) * SEED` per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        let mut m: FxHashMap<(u32, u16, u16), u32> = FxHashMap::default();
        m.insert((1, 2, 3), 7);
        assert_eq!(m.get(&(1, 2, 3)), Some(&7));
        assert_eq!(m.get(&(1, 2, 4)), None);
    }

    #[test]
    fn distinct_small_keys_spread() {
        // Sanity check the mix isn't degenerate: 1000 distinct keys should
        // produce (nearly) 1000 distinct hashes.
        let mut seen = HashSet::new();
        for i in 0u64..1000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert!(seen.len() > 990);
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(b"hello world!!"); // 13 bytes: one chunk + 5-byte tail
        let mut b = FxHasher::default();
        b.write(b"hello world!!");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world!?");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn sets_work() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(3);
        assert!(s.contains(&3));
        assert!(!s.contains(&4));
    }
}
