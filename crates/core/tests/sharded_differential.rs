//! Differential sweep for the sharded index: on randomized instances,
//! an audit running over a [`ShardedIndex`] must produce per-`k` result
//! sets identical to the unsharded audit — across shard counts, every
//! task family, both engines, and [`Bounds::LinearFraction`] bounds.
//!
//! The additive-merge law (`counts(p, k)` as a sum of per-shard counts
//! over contiguous rank blocks) is checked at the unit level in
//! `core::shard`; this suite checks the law *through the engines*: the
//! search order, dominance bookkeeping and bound schedules must be
//! insensitive to how the index is partitioned. Edge cases ride along:
//! empty shards (more shards than rows), `k` falling inside the first
//! shard's slice, and shard counts that do not divide the row count.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rankfair_core::{Audit, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, OverRepScope};
use rankfair_rank::Ranking;
use rankfair_synth::{random_dataset, random_ranking, RandomSpec};

const SHARD_SWEEP: [usize; 4] = [1, 2, 3, 7];

fn audit_with_shards(
    seed: u64,
    rows: usize,
    attrs: usize,
    max_card: usize,
    shards: usize,
) -> Audit {
    let ds = random_dataset(
        seed,
        RandomSpec {
            rows,
            attrs,
            max_card,
        },
    );
    let ranking = Ranking::from_order(random_ranking(seed.wrapping_add(1), rows)).unwrap();
    Audit::builder(Arc::new(ds))
        .ranking(ranking)
        .shards(shards)
        .build()
        .unwrap()
}

/// The five task families the engines distinguish, all with a
/// `LinearFraction` bound somewhere in the mix.
fn tasks() -> Vec<AuditTask> {
    vec![
        AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::LinearFraction(0.3))),
        AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 }),
        AuditTask::OverRep {
            upper: Bounds::LinearFraction(0.5),
            scope: OverRepScope::MostSpecific,
        },
        AuditTask::OverRep {
            upper: Bounds::LinearFraction(0.5),
            scope: OverRepScope::MostGeneral,
        },
        AuditTask::Combined {
            lower: Bounds::LinearFraction(0.25),
            upper: Bounds::LinearFraction(0.6),
        },
    ]
}

#[test]
fn sharded_audits_equal_unsharded_across_tasks_engines_and_shard_counts() {
    let mut rng = StdRng::seed_from_u64(211);
    for _ in 0..10 {
        let seed = rng.random::<u64>() % 10_000;
        let rows = rng.random_range(12..60usize);
        let attrs = rng.random_range(2..5usize);
        let max_card = rng.random_range(2..4usize);
        let tau = rng.random_range(1..10usize);
        let cfg = DetectConfig::new(tau, 2.min(rows), rows.min(36));
        let baseline = audit_with_shards(seed, rows, attrs, max_card, 1);
        for &shards in &SHARD_SWEEP {
            let sharded = audit_with_shards(seed, rows, attrs, max_card, shards);
            assert_eq!(sharded.index().shard_count(), shards);
            for task in tasks() {
                for engine in [Engine::Optimized, Engine::Baseline] {
                    let want = baseline.run(&cfg, &task, engine).unwrap();
                    let got = sharded.run(&cfg, &task, engine).unwrap();
                    assert_eq!(
                        want.per_k, got.per_k,
                        "seed={seed} rows={rows} shards={shards} task={task:?} engine={engine:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn more_shards_than_rows_still_agrees() {
    // 7 shards over 5 rows: trailing shards are empty and must contribute
    // zero to every merged count.
    let cfg = DetectConfig::new(1, 1, 5);
    let baseline = audit_with_shards(77, 5, 3, 3, 1);
    let sharded = audit_with_shards(77, 5, 3, 3, 7);
    assert_eq!(sharded.index().shard_count(), 7);
    for task in tasks() {
        for engine in [Engine::Optimized, Engine::Baseline] {
            let want = baseline.run(&cfg, &task, engine).unwrap();
            let got = sharded.run(&cfg, &task, engine).unwrap();
            assert_eq!(want.per_k, got.per_k, "task={task:?} engine={engine:?}");
        }
    }
}

#[test]
fn k_inside_the_first_shard_slice_agrees() {
    // 2 shards over 40 rows: shard 0 spans ranks [0, 20), and the whole
    // audited k range [2, 9] lies strictly inside it — every other shard
    // must contribute an empty top-k prefix at every k.
    let cfg = DetectConfig::new(2, 2, 9);
    let baseline = audit_with_shards(909, 40, 3, 3, 1);
    let sharded = audit_with_shards(909, 40, 3, 3, 2);
    for task in tasks() {
        for engine in [Engine::Optimized, Engine::Baseline] {
            let want = baseline.run(&cfg, &task, engine).unwrap();
            let got = sharded.run(&cfg, &task, engine).unwrap();
            assert_eq!(want.per_k, got.per_k, "task={task:?} engine={engine:?}");
        }
    }
}

#[test]
fn streaming_path_agrees_over_sharded_index() {
    // The streaming audit (checkpointed engine state, bound-step
    // reclassification) reads counts through the same provider surface —
    // shard it and compare against the collected unsharded stream.
    let cfg = DetectConfig::new(2, 2, 20);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::LinearFraction(0.35)));
    let baseline = audit_with_shards(313, 24, 3, 3, 1);
    for &shards in &SHARD_SWEEP {
        let sharded = audit_with_shards(313, 24, 3, 3, shards);
        let want: Vec<_> = baseline.run_streaming(&cfg, &task).unwrap().collect();
        let got: Vec<_> = sharded.run_streaming(&cfg, &task).unwrap().collect();
        assert_eq!(want, got, "shards={shards}");
    }
}
