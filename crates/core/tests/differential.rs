//! Differential correctness suite: on randomized instances, the baseline
//! (`IterTD` / brute force), the optimized algorithms (`GlobalBounds`,
//! `PropBounds`, the pruned upper-bound searches) and the brute-force
//! oracle must produce identical result sets for every `k`, for **every**
//! [`AuditTask`].
//!
//! This is the test that pins the incremental engine to the paper's
//! semantics: any divergence in count maintenance, frontier resumption,
//! dominance bookkeeping or `k̃` scheduling shows up here immediately.
//!
//! Originally written against `proptest`; this container builds offline,
//! so the randomized sweeps run on the workspace's deterministic
//! generator — reproducible by seed.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rankfair_core::{
    oracle, Audit, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, KResult, OverRepScope,
    PatternSpace,
};
use rankfair_rank::Ranking;
use rankfair_synth::{random_dataset, random_ranking, RandomSpec};

fn build_audit(seed: u64, rows: usize, attrs: usize, max_card: usize) -> Audit {
    let ds = random_dataset(
        seed,
        RandomSpec {
            rows,
            attrs,
            max_card,
        },
    );
    let ranking = Ranking::from_order(random_ranking(seed.wrapping_add(1), rows)).unwrap();
    Audit::builder(Arc::new(ds))
        .ranking(ranking)
        .build()
        .unwrap()
}

fn oracle_results(audit: &Audit, cfg: &DetectConfig, measure: &BiasMeasure) -> Vec<KResult> {
    oracle::detect(
        audit.dataset(),
        audit.space(),
        audit.ranking(),
        cfg.tau_s,
        cfg.k_min,
        cfg.k_max,
        measure,
    )
}

fn under(audit: &Audit, cfg: &DetectConfig, measure: &BiasMeasure, engine: Engine) -> Vec<KResult> {
    audit
        .run(cfg, &AuditTask::UnderRep(measure.clone()), engine)
        .unwrap()
        .detection_output()
        .per_k
}

#[test]
fn global_bounds_agrees_with_baseline_and_oracle() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..48 {
        let seed = rng.random::<u64>() % 10_000;
        let rows = rng.random_range(12..70usize);
        let attrs = rng.random_range(2..5usize);
        let max_card = rng.random_range(2..4usize);
        let tau = rng.random_range(1..12usize);
        let lower = rng.random_range(1..8usize);
        let audit = build_audit(seed, rows, attrs, max_card);
        let cfg = DetectConfig::new(tau, 2.min(rows), rows.min(40));
        let measure = BiasMeasure::GlobalLower(Bounds::constant(lower));

        let base = under(&audit, &cfg, &measure, Engine::Baseline);
        let opt = under(&audit, &cfg, &measure, Engine::Optimized);
        assert_eq!(base, opt, "seed={seed} rows={rows} tau={tau} lower={lower}");
        let want = oracle_results(&audit, &cfg, &measure);
        assert_eq!(opt, want, "seed={seed} rows={rows} tau={tau} lower={lower}");
    }
}

#[test]
fn global_bounds_with_step_bounds_agrees() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..48 {
        let seed = rng.random::<u64>() % 10_000;
        let rows = rng.random_range(12..60usize);
        let attrs = rng.random_range(2..5usize);
        let tau = rng.random_range(1..10usize);
        let l1 = rng.random_range(1..4usize);
        let step = rng.random_range(1..4usize);
        let audit = build_audit(seed, rows, attrs, 3);
        let cfg = DetectConfig::new(tau, 2, rows.min(36));
        // Non-decreasing step bounds, stepping at k = 10, 20, 30.
        let bounds = Bounds::steps(vec![
            (0, l1),
            (10, l1 + step),
            (20, l1 + 2 * step),
            (30, l1 + 3 * step),
        ]);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        let base = under(&audit, &cfg, &measure, Engine::Baseline);
        let opt = under(&audit, &cfg, &measure, Engine::Optimized);
        assert_eq!(base, opt, "seed={seed}");
        let want = oracle_results(&audit, &cfg, &measure);
        assert_eq!(opt, want, "seed={seed}");
        // The streaming path uses the bound-step extension (reclassify
        // instead of rebuild) — it must be output-equivalent too.
        let streamed: Vec<KResult> = audit
            .run_streaming(&cfg, &AuditTask::UnderRep(measure.clone()))
            .unwrap()
            .map(|kr| KResult {
                k: kr.k,
                patterns: kr.under,
            })
            .collect();
        assert_eq!(streamed, want, "seed={seed}");
    }
}

#[test]
fn prop_bounds_agrees_with_baseline_and_oracle() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..48 {
        let seed = rng.random::<u64>() % 10_000;
        let rows = rng.random_range(12..70usize);
        let attrs = rng.random_range(2..5usize);
        let max_card = rng.random_range(2..4usize);
        let tau = rng.random_range(1..12usize);
        let alpha = rng.random_range(10..140usize) as f64 / 100.0;
        let audit = build_audit(seed, rows, attrs, max_card);
        let cfg = DetectConfig::new(tau, 2, rows.min(40));
        let measure = BiasMeasure::Proportional { alpha };

        let base = under(&audit, &cfg, &measure, Engine::Baseline);
        let opt = under(&audit, &cfg, &measure, Engine::Optimized);
        assert_eq!(base, opt, "seed={seed} tau={tau} alpha={alpha}");
        let want = oracle_results(&audit, &cfg, &measure);
        assert_eq!(opt, want, "seed={seed} tau={tau} alpha={alpha}");
    }
}

#[test]
fn results_are_sound_minimal_and_substantial() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..48 {
        let seed = rng.random::<u64>() % 10_000;
        let rows = rng.random_range(12..60usize);
        let attrs = rng.random_range(2..5usize);
        let tau = rng.random_range(1..10usize);
        let alpha = rng.random_range(30..120usize) as f64 / 100.0;
        let audit = build_audit(seed, rows, attrs, 3);
        let cfg = DetectConfig::new(tau, 3, rows.min(30));
        let measure = BiasMeasure::Proportional { alpha };
        let out = under(&audit, &cfg, &measure, Engine::Optimized);
        for kr in &out {
            for p in &kr.patterns {
                let (sd, count) = audit.index().counts(p, kr.k);
                assert!(sd >= tau, "reported group below τs");
                assert!(
                    measure.is_biased(count, sd, kr.k, rows),
                    "non-biased group reported"
                );
            }
            for a in &kr.patterns {
                for b in &kr.patterns {
                    assert!(a == b || !a.is_proper_subset_of(b), "non-minimal result");
                }
            }
        }
    }
}

/// Over-representation (both scopes) and the combined task: the pruned
/// optimized searches must match the brute-force baseline engine for every
/// single `k` on randomized instances.
#[test]
fn over_rep_and_combined_agree_with_baseline_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(113);
    for _ in 0..32 {
        let seed = rng.random::<u64>() % 10_000;
        let rows = rng.random_range(12..50usize);
        let attrs = rng.random_range(2..5usize);
        let tau = rng.random_range(1..8usize);
        let u = rng.random_range(0..6usize);
        let audit = build_audit(seed, rows, attrs, 3);
        let cfg = DetectConfig::new(tau, 2, rows.min(24));
        for task in [
            AuditTask::OverRep {
                upper: Bounds::constant(u),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::OverRep {
                upper: Bounds::constant(u),
                scope: OverRepScope::MostGeneral,
            },
            AuditTask::Combined {
                lower: Bounds::constant(u + 1),
                upper: Bounds::constant(u),
            },
        ] {
            let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
            let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
            assert_eq!(
                opt.per_k, base.per_k,
                "seed={seed} tau={tau} u={u} {task:?}"
            );
        }
    }
}

/// Satellite requirement: `Combined` / `OverRep` single-`k` results agree
/// between the optimized and baseline paths on the paper's Figure 1
/// dataset, across a parameter sweep.
#[test]
fn over_rep_and_combined_single_k_agree_on_students_fig1() {
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    let audit = Audit::builder(Arc::new(students_fig1()))
        .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
        .build()
        .unwrap();
    for tau in [1, 2, 4] {
        for k in [3, 5, 8, 16] {
            for u in [0, 1, 2, 4] {
                let cfg = DetectConfig::new(tau, k, k);
                for task in [
                    AuditTask::OverRep {
                        upper: Bounds::constant(u),
                        scope: OverRepScope::MostSpecific,
                    },
                    AuditTask::OverRep {
                        upper: Bounds::constant(u),
                        scope: OverRepScope::MostGeneral,
                    },
                    AuditTask::Combined {
                        lower: Bounds::constant(2),
                        upper: Bounds::constant(u),
                    },
                ] {
                    let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
                    let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
                    assert_eq!(opt.per_k, base.per_k, "tau={tau} k={k} u={u} {task:?}");
                }
            }
        }
    }
}

/// Satellite requirement: the same agreement on seeded synthetic COMPAS
/// (small subsample, restricted attribute set so the brute-force baseline
/// stays tractable).
#[test]
fn over_rep_and_combined_single_k_agree_on_synthetic_compas() {
    use rankfair_rank::{AttributeRanker, Ranker};
    let ds = rankfair_synth::compas(rankfair_synth::SynthConfig::new(200, 7));
    let ranker = AttributeRanker::by_desc("priors_count");
    let ranking = ranker.rank(&ds);
    let cats = ds.categorical_columns();
    let space = PatternSpace::from_columns(&ds, &cats).unwrap();
    let attr_names: Vec<String> = (0..space.n_attrs().min(5))
        .map(|a| space.attr_name(a as u16).to_string())
        .collect();
    let audit = Audit::builder(Arc::new(ds))
        .ranking(ranking)
        .attributes(attr_names)
        .build()
        .unwrap();
    for (tau, k, u) in [(5, 10, 2), (10, 25, 5), (20, 49, 8), (5, 49, 0)] {
        let cfg = DetectConfig::new(tau, k, k);
        for task in [
            AuditTask::OverRep {
                upper: Bounds::constant(u),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::OverRep {
                upper: Bounds::constant(u),
                scope: OverRepScope::MostGeneral,
            },
            AuditTask::Combined {
                lower: Bounds::constant(u + 2),
                upper: Bounds::constant(u),
            },
        ] {
            let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
            let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
            assert_eq!(opt.per_k, base.per_k, "tau={tau} k={k} u={u} {task:?}");
        }
    }
}

/// Satellite requirement: the **incremental** over-representation engine
/// (one build, then per-`k` subtree walks and frontier deltas) must match
/// the brute-force baseline over whole `k` ranges with *step* upper
/// bounds — the case that exercises the store-rescan path — on the
/// paper's Figure 1 data.
#[test]
fn incremental_over_rep_matches_baseline_across_step_bounds_on_fig1() {
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    let audit = Audit::builder(Arc::new(students_fig1()))
        .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
        .build()
        .unwrap();
    let bounds = [
        Bounds::constant(1),
        Bounds::steps(vec![(0, 1), (6, 2), (11, 3)]),
        // A decreasing step: outside the paper's assumption, but the
        // rescan must stay exact for it.
        Bounds::Steps(vec![(8, 1), (0, 2)]),
        // Changes at almost every k — the frontier delta's gains+losses
        // path runs on nearly every step.
        Bounds::LinearFraction(0.3),
    ];
    for tau in [1, 2, 4] {
        for upper in &bounds {
            for scope in [OverRepScope::MostSpecific, OverRepScope::MostGeneral] {
                let cfg = DetectConfig::new(tau, 2, 16);
                let task = AuditTask::OverRep {
                    upper: upper.clone(),
                    scope,
                };
                let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
                let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
                assert_eq!(opt.per_k, base.per_k, "tau={tau} {upper:?} {scope:?}");
            }
            let task = AuditTask::Combined {
                lower: Bounds::constant(2),
                upper: upper.clone(),
            };
            let cfg = DetectConfig::new(tau, 2, 16);
            let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
            let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
            assert_eq!(opt.per_k, base.per_k, "combined tau={tau} {upper:?}");
        }
    }
}

fn synthetic_audit(which: &str, rows: usize, seed: u64, rank_by: &str, n_attrs: usize) -> Audit {
    use rankfair_rank::{AttributeRanker, Ranker};
    let ds = match which {
        "compas" => rankfair_synth::compas(rankfair_synth::SynthConfig::new(rows, seed)),
        "german" => rankfair_synth::german_credit(rankfair_synth::SynthConfig::new(rows, seed)),
        other => panic!("unknown synthetic dataset {other}"),
    };
    let ranking = AttributeRanker::by_desc(rank_by).rank(&ds);
    let cats = ds.categorical_columns();
    let space = PatternSpace::from_columns(&ds, &cats).unwrap();
    let attr_names: Vec<String> = (0..space.n_attrs().min(n_attrs))
        .map(|a| space.attr_name(a as u16).to_string())
        .collect();
    Audit::builder(Arc::new(ds))
        .ranking(ranking)
        .attributes(attr_names)
        .build()
        .unwrap()
}

/// Satellite requirement: incremental OverRep ≡ baseline on seeded
/// synthetic COMPAS and German ranges with step upper bounds, and the
/// streaming path must be byte-identical to the batch path.
#[test]
fn incremental_over_rep_matches_baseline_on_synthetic_compas_and_german() {
    for (which, rank_by) in [("compas", "priors_count"), ("german", "credit_amount")] {
        let audit = synthetic_audit(which, 180, 7, rank_by, 4);
        let upper = Bounds::steps(vec![(10, 4), (25, 9), (40, 14)]);
        for tau in [5, 15] {
            let cfg = DetectConfig::new(tau, 10, 60);
            for task in [
                AuditTask::OverRep {
                    upper: upper.clone(),
                    scope: OverRepScope::MostSpecific,
                },
                AuditTask::OverRep {
                    upper: upper.clone(),
                    scope: OverRepScope::MostGeneral,
                },
                AuditTask::Combined {
                    lower: Bounds::paper_default(),
                    upper: upper.clone(),
                },
            ] {
                let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
                let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
                assert_eq!(opt.per_k, base.per_k, "{which} tau={tau} {task:?}");
                let streamed: Vec<_> = audit.run_streaming(&cfg, &task).unwrap().collect();
                assert_eq!(opt.per_k, streamed, "streaming {which} tau={tau} {task:?}");
            }
        }
    }
}

/// Satellite requirement: the incremental engine must evaluate strictly
/// fewer patterns than the per-`k` rescan it replaces (the old
/// `Engine::Optimized` path: a fresh DFS + full maximality sweep at every
/// `k`, still available as `upper::upper_most_specific`).
#[test]
fn incremental_over_rep_evaluates_fewer_nodes_than_per_k_rescan() {
    let audit = synthetic_audit("compas", 300, 11, "priors_count", 5);
    let upper = Bounds::steps(vec![(10, 4), (25, 9), (40, 14)]);
    let cfg = DetectConfig::new(10, 10, 80);
    let task = AuditTask::OverRep {
        upper: upper.clone(),
        scope: OverRepScope::MostSpecific,
    };
    let inc = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let rescan =
        rankfair_core::upper::upper_most_specific(audit.index(), audit.space(), &cfg, &upper);
    assert_eq!(inc.per_k.len(), rescan.per_k.len());
    for (a, b) in inc.per_k.iter().zip(&rescan.per_k) {
        assert_eq!(a.k, b.k);
        assert_eq!(a.over, b.patterns, "k={}", a.k);
    }
    assert!(
        inc.stats.nodes_evaluated < rescan.stats.nodes_evaluated,
        "incremental {} >= per-k rescan {}",
        inc.stats.nodes_evaluated,
        rescan.stats.nodes_evaluated
    );
}

/// The adversarial instance of Theorem 3.3: the number of most general
/// biased patterns is C(n, n/2), exponential in the attribute count. Both
/// measures of the theorem's proof are checked.
#[test]
fn worst_case_result_set_is_exponential() {
    for n in [4usize, 6, 8, 10] {
        let (ds, order) = rankfair_synth::worst_case(n);
        let ranking = Ranking::from_order(order).unwrap();
        let audit = Audit::builder(Arc::new(ds))
            .ranking(ranking)
            .build()
            .unwrap();
        let expected = {
            // C(n, n/2)
            let mut c: u64 = 1;
            for i in 0..n / 2 {
                c = c * (n - i) as u64 / (i + 1) as u64;
            }
            c as usize
        };

        // Global bounds: k = n, L = n/2 + 1.
        let cfg = DetectConfig::new(1, n, n);
        let count_half_zeros = |per_k: &[rankfair_core::AuditKResult]| {
            per_k[0]
                .under
                .iter()
                .filter(|p| p.len() == n / 2 && p.terms().iter().all(|&(_, v)| v == 0))
                .count()
        };
        let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(n / 2 + 1)));
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        assert_eq!(count_half_zeros(&out.per_k), expected, "global, n={n}");

        // Proportional: α = (n+3)/(n+4).
        let alpha = (n as f64 + 3.0) / (n as f64 + 4.0);
        let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha });
        let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
        assert_eq!(
            count_half_zeros(&out.per_k),
            expected,
            "proportional, n={n}"
        );
    }
}

/// Incremental equivalence on the realistic synthetic datasets (small
/// subsamples so the oracle stays tractable).
#[test]
fn synthetic_datasets_smoke_differential() {
    use rankfair_rank::{AttributeRanker, Ranker};

    let ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(120, 7));
    let ranker = AttributeRanker::by_desc("G3");
    let ranking = ranker.rank(&ds);
    // Restrict to the first few categorical attributes (after bucketizing
    // `age`) to keep the oracle fast.
    let probe = {
        let mut d = ds.clone();
        rankfair_data::bucketize::bucketize_in_place(
            &mut d,
            "age",
            3,
            rankfair_data::bucketize::BinStrategy::EqualWidth,
        )
        .unwrap();
        d
    };
    let cats = probe.categorical_columns();
    let attr_names: Vec<String> = cats[..5]
        .iter()
        .map(|&c| probe.column(c).name().to_string())
        .collect();
    let audit = Audit::builder(Arc::new(ds))
        .ranking(ranking)
        .bucketize("age", 3)
        .attributes(attr_names)
        .build()
        .unwrap();
    let cfg = DetectConfig::new(15, 5, 40);

    let bounds = Bounds::steps(vec![(5, 3), (20, 6), (30, 9)]);
    let g_measure = BiasMeasure::GlobalLower(bounds);
    let base = under(&audit, &cfg, &g_measure, Engine::Baseline);
    let opt = under(&audit, &cfg, &g_measure, Engine::Optimized);
    assert_eq!(base, opt);
    let want = oracle_results(&audit, &cfg, &g_measure);
    assert_eq!(opt, want);

    let p_measure = BiasMeasure::Proportional { alpha: 0.8 };
    let base = under(&audit, &cfg, &p_measure, Engine::Baseline);
    let opt = under(&audit, &cfg, &p_measure, Engine::Optimized);
    assert_eq!(base, opt);
    let want = oracle_results(&audit, &cfg, &p_measure);
    assert_eq!(opt, want);
}
