//! Differential correctness suite: on randomized instances, the baseline
//! (`IterTD`), the optimized algorithms (`GlobalBounds`, `PropBounds`) and
//! the brute-force oracle must produce identical result sets for every `k`.
//!
//! This is the test that pins the incremental engine to the paper’s
//! semantics: any divergence in count maintenance, frontier resumption,
//! dominance bookkeeping or `k̃` scheduling shows up here immediately.

use proptest::prelude::*;

use rankfair_core::{
    global_bounds, global_bounds_fast_steps, iter_td, oracle, prop_bounds, BiasMeasure, Bounds,
    DetectConfig, KResult, PatternSpace, RankedIndex,
};
use rankfair_data::Dataset;
use rankfair_rank::Ranking;
use rankfair_synth::{random_dataset, random_ranking, RandomSpec};

fn build(seed: u64, rows: usize, attrs: usize, max_card: usize) -> (Dataset, Ranking) {
    let ds = random_dataset(
        seed,
        RandomSpec {
            rows,
            attrs,
            max_card,
        },
    );
    let ranking = Ranking::from_order(random_ranking(seed.wrapping_add(1), rows)).unwrap();
    (ds, ranking)
}

fn oracle_results(
    ds: &Dataset,
    space: &PatternSpace,
    ranking: &Ranking,
    cfg: &DetectConfig,
    measure: &BiasMeasure,
) -> Vec<KResult> {
    oracle::detect(ds, space, ranking, cfg.tau_s, cfg.k_min, cfg.k_max, measure)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn global_bounds_agrees_with_baseline_and_oracle(
        seed in 0u64..10_000,
        rows in 12usize..70,
        attrs in 2usize..5,
        max_card in 2usize..4,
        tau in 1usize..12,
        lower in 1usize..8,
    ) {
        let (ds, ranking) = build(seed, rows, attrs, max_card);
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let k_min = 2.min(rows);
        let k_max = rows.min(40);
        let cfg = DetectConfig::new(tau, k_min, k_max);
        let bounds = Bounds::constant(lower);
        let measure = BiasMeasure::GlobalLower(bounds.clone());

        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = global_bounds(&index, &space, &cfg, &bounds);
        prop_assert_eq!(&base.per_k, &opt.per_k);

        let want = oracle_results(&ds, &space, &ranking, &cfg, &measure);
        prop_assert_eq!(&opt.per_k, &want);
    }

    #[test]
    fn global_bounds_with_step_bounds_agrees(
        seed in 0u64..10_000,
        rows in 12usize..60,
        attrs in 2usize..5,
        tau in 1usize..10,
        l1 in 1usize..4,
        step in 1usize..4,
    ) {
        let (ds, ranking) = build(seed, rows, attrs, 3);
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let k_max = rows.min(36);
        let cfg = DetectConfig::new(tau, 2, k_max);
        // Non-decreasing step bounds, stepping at k = 10, 20, 30.
        let bounds = Bounds::steps(vec![
            (0, l1),
            (10, l1 + step),
            (20, l1 + 2 * step),
            (30, l1 + 3 * step),
        ]);
        let measure = BiasMeasure::GlobalLower(bounds.clone());
        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = global_bounds(&index, &space, &cfg, &bounds);
        prop_assert_eq!(&base.per_k, &opt.per_k);
        let want = oracle_results(&ds, &space, &ranking, &cfg, &measure);
        prop_assert_eq!(&opt.per_k, &want);
        // The bound-step extension (reclassify instead of rebuild) must be
        // output-equivalent while doing no fresh evaluations at the steps.
        let fast = global_bounds_fast_steps(&index, &space, &cfg, &bounds);
        prop_assert_eq!(&fast.per_k, &want);
        prop_assert!(fast.stats.nodes_evaluated <= opt.stats.nodes_evaluated);
        prop_assert_eq!(fast.stats.full_searches, 1);
    }

    #[test]
    fn prop_bounds_agrees_with_baseline_and_oracle(
        seed in 0u64..10_000,
        rows in 12usize..70,
        attrs in 2usize..5,
        max_card in 2usize..4,
        tau in 1usize..12,
        alpha_pct in 10usize..140,
    ) {
        let (ds, ranking) = build(seed, rows, attrs, max_card);
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let alpha = alpha_pct as f64 / 100.0;
        let k_max = rows.min(40);
        let cfg = DetectConfig::new(tau, 2, k_max);
        let measure = BiasMeasure::Proportional { alpha };

        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = prop_bounds(&index, &space, &cfg, alpha);
        prop_assert_eq!(&base.per_k, &opt.per_k);

        let want = oracle_results(&ds, &space, &ranking, &cfg, &measure);
        prop_assert_eq!(&opt.per_k, &want);
    }

    #[test]
    fn results_are_sound_minimal_and_substantial(
        seed in 0u64..10_000,
        rows in 12usize..60,
        attrs in 2usize..5,
        tau in 1usize..10,
        alpha_pct in 30usize..120,
    ) {
        let (ds, ranking) = build(seed, rows, attrs, 3);
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let alpha = alpha_pct as f64 / 100.0;
        let cfg = DetectConfig::new(tau, 3, rows.min(30));
        let out = prop_bounds(&index, &space, &cfg, alpha);
        let measure = BiasMeasure::Proportional { alpha };
        for kr in &out.per_k {
            for p in &kr.patterns {
                let (sd, count) = index.counts(p, kr.k);
                prop_assert!(sd >= tau, "reported group below τs");
                prop_assert!(measure.is_biased(count, sd, kr.k, rows), "non-biased group reported");
            }
            for a in &kr.patterns {
                for b in &kr.patterns {
                    prop_assert!(a == b || !a.is_proper_subset_of(b), "non-minimal result");
                }
            }
        }
    }
}

/// The adversarial instance of Theorem 3.3: the number of most general
/// biased patterns is C(n, n/2), exponential in the attribute count. Both
/// measures of the theorem’s proof are checked.
#[test]
fn worst_case_result_set_is_exponential() {
    for n in [4usize, 6, 8, 10] {
        let (ds, order) = rankfair_synth::worst_case(n);
        let space = PatternSpace::from_dataset(&ds).unwrap();
        let ranking = Ranking::from_order(order).unwrap();
        let index = RankedIndex::build(&ds, &space, &ranking);
        let expected = {
            // C(n, n/2)
            let mut c: u64 = 1;
            for i in 0..n / 2 {
                c = c * (n - i) as u64 / (i + 1) as u64;
            }
            c as usize
        };

        // Global bounds: k = n, L = n/2 + 1.
        let cfg = DetectConfig::new(1, n, n);
        let out = global_bounds(&index, &space, &cfg, &Bounds::constant(n / 2 + 1));
        let res = &out.per_k[0].patterns;
        let with_half_zeros = res
            .iter()
            .filter(|p| p.len() == n / 2 && p.terms().iter().all(|&(_, v)| v == 0))
            .count();
        assert_eq!(with_half_zeros, expected, "global, n={n}");

        // Proportional: α = (n+3)/(n+4).
        let alpha = (n as f64 + 3.0) / (n as f64 + 4.0);
        let out = prop_bounds(&index, &space, &cfg, alpha);
        let res = &out.per_k[0].patterns;
        let with_half_zeros = res
            .iter()
            .filter(|p| p.len() == n / 2 && p.terms().iter().all(|&(_, v)| v == 0))
            .count();
        assert_eq!(with_half_zeros, expected, "proportional, n={n}");
    }
}

/// Incremental equivalence on the realistic synthetic datasets (small
/// subsamples so the oracle stays tractable).
#[test]
fn synthetic_datasets_smoke_differential() {
    use rankfair_data::bucketize::{bucketize_in_place, BinStrategy};
    use rankfair_rank::{AttributeRanker, Ranker};

    let mut ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(120, 7));
    let ranker = AttributeRanker::by_desc("G3");
    let ranking = ranker.rank(&ds);
    bucketize_in_place(&mut ds, "age", 3, BinStrategy::EqualWidth).unwrap();
    // Restrict to the first few categorical attributes to keep the oracle fast.
    let cats = ds.categorical_columns();
    let space = PatternSpace::from_columns(&ds, &cats[..5]).unwrap();
    let index = RankedIndex::build(&ds, &space, &ranking);
    let cfg = DetectConfig::new(15, 5, 40);

    let bounds = Bounds::steps(vec![(5, 3), (20, 6), (30, 9)]);
    let g_measure = BiasMeasure::GlobalLower(bounds.clone());
    let base = iter_td(&index, &space, &cfg, &g_measure);
    let opt = global_bounds(&index, &space, &cfg, &bounds);
    assert_eq!(base.per_k, opt.per_k);
    let want = oracle::detect(&ds, &space, &ranking, 15, 5, 40, &g_measure);
    assert_eq!(opt.per_k, want);

    let p_measure = BiasMeasure::Proportional { alpha: 0.8 };
    let base = iter_td(&index, &space, &cfg, &p_measure);
    let opt = prop_bounds(&index, &space, &cfg, 0.8);
    assert_eq!(base.per_k, opt.per_k);
    let want = oracle::detect(&ds, &space, &ranking, 15, 5, 40, &p_measure);
    assert_eq!(opt.per_k, want);
}
