//! Edge-case integration tests for the detection engine: degenerate
//! datasets, extreme parameters, and bound shapes the paper's assumptions
//! do not cover (the engine must stay correct, falling back to fresh
//! searches where the incremental reasoning does not apply).

use rankfair_core::{
    global_bounds, iter_td, oracle, prop_bounds, BiasMeasure, Bounds, DetectConfig, Pattern,
    PatternSpace, RankedIndex,
};
use rankfair_data::Dataset;
use rankfair_rank::Ranking;
use rankfair_synth::{random_dataset, random_ranking, RandomSpec};

fn build(seed: u64, rows: usize, attrs: usize) -> (Dataset, PatternSpace, Ranking, RankedIndex) {
    let ds = random_dataset(
        seed,
        RandomSpec {
            rows,
            attrs,
            max_card: 3,
        },
    );
    let space = PatternSpace::from_dataset(&ds).unwrap();
    let ranking = Ranking::from_order(random_ranking(seed + 1, rows)).unwrap();
    let index = RankedIndex::build(&ds, &space, &ranking);
    (ds, space, ranking, index)
}

#[test]
fn single_row_dataset() {
    let ds = Dataset::builder()
        .categorical_from_str("a", &["x"])
        .categorical_from_str("b", &["y"])
        .build()
        .unwrap();
    let space = PatternSpace::from_dataset(&ds).unwrap();
    let ranking = Ranking::from_order(vec![0]).unwrap();
    let index = RankedIndex::build(&ds, &space, &ranking);
    let cfg = DetectConfig::new(1, 1, 1);
    // L = 1: the single tuple satisfies every pattern, nothing is biased.
    let out = global_bounds(&index, &space, &cfg, &Bounds::constant(1));
    assert!(out.per_k[0].patterns.is_empty());
    // L = 2 can never be met: the level-1 patterns are all reported.
    let out = global_bounds(&index, &space, &cfg, &Bounds::constant(2));
    assert_eq!(out.per_k[0].patterns.len(), 2);
}

#[test]
fn tau_larger_than_dataset_returns_nothing() {
    let (_ds, space, _ranking, index) = build(3, 40, 3);
    let cfg = DetectConfig::new(41, 2, 20);
    let out = global_bounds(&index, &space, &cfg, &Bounds::constant(5));
    assert!(out.per_k.iter().all(|kr| kr.patterns.is_empty()));
    let out = prop_bounds(&index, &space, &cfg, 0.8);
    assert!(out.per_k.iter().all(|kr| kr.patterns.is_empty()));
}

#[test]
fn cardinality_one_attribute() {
    // An attribute where every tuple has the same value: its only pattern
    // covers the whole dataset, and Proposition 4.3's "at least 2 values"
    // assumption does not hold — the engine must still be exact.
    let n = 30;
    let constant = vec!["same"; n];
    let varied: Vec<String> = (0..n).map(|i| format!("v{}", i % 3)).collect();
    let ds = Dataset::builder()
        .categorical_from_str("c", &constant)
        .categorical_from_str("v", &varied)
        .build()
        .unwrap();
    let space = PatternSpace::from_dataset(&ds).unwrap();
    let ranking = Ranking::from_order(random_ranking(9, n)).unwrap();
    let index = RankedIndex::build(&ds, &space, &ranking);
    let cfg = DetectConfig::new(1, 2, n);
    for measure in [
        BiasMeasure::GlobalLower(Bounds::constant(4)),
        BiasMeasure::Proportional { alpha: 0.9 },
    ] {
        let base = iter_td(&index, &space, &cfg, &measure);
        let opt = match &measure {
            BiasMeasure::GlobalLower(b) => global_bounds(&index, &space, &cfg, b),
            BiasMeasure::Proportional { alpha } => prop_bounds(&index, &space, &cfg, *alpha),
        };
        assert_eq!(base.per_k, opt.per_k);
    }
}

#[test]
fn decreasing_bounds_still_exact() {
    // Footnote 3 assumes non-decreasing L_k; the engine falls back to a
    // fresh search on any bound change, so a decreasing specification must
    // still be exact (if unusual).
    let (ds, space, ranking, index) = build(11, 50, 4);
    let bounds = Bounds::steps(vec![(0, 6), (10, 4), (20, 2)]);
    let cfg = DetectConfig::new(2, 2, 40);
    let measure = BiasMeasure::GlobalLower(bounds.clone());
    let base = iter_td(&index, &space, &cfg, &measure);
    let opt = global_bounds(&index, &space, &cfg, &bounds);
    assert_eq!(base.per_k, opt.per_k);
    let want = oracle::detect(&ds, &space, &ranking, 2, 2, 40, &measure);
    assert_eq!(opt.per_k, want);
}

#[test]
fn full_k_range_to_dataset_size() {
    let (_ds, space, _ranking, index) = build(13, 120, 4);
    let cfg = DetectConfig::new(5, 1, 120);
    let measure = BiasMeasure::Proportional { alpha: 0.85 };
    let base = iter_td(&index, &space, &cfg, &measure);
    let opt = prop_bounds(&index, &space, &cfg, 0.85);
    assert_eq!(base.per_k, opt.per_k);
    // At k = n every pattern's count equals its size: nothing is biased
    // for α ≤ 1.
    assert!(opt.per_k.last().unwrap().patterns.is_empty());
}

#[test]
fn alpha_above_one_flags_even_proportional_groups() {
    let (_ds, space, _ranking, index) = build(17, 60, 3);
    let cfg = DetectConfig::new(2, 5, 55);
    let measure = BiasMeasure::Proportional { alpha: 1.5 };
    let base = iter_td(&index, &space, &cfg, &measure);
    let opt = prop_bounds(&index, &space, &cfg, 1.5);
    assert_eq!(base.per_k, opt.per_k);
    // With α = 1.5 at k = n the requirement 1.5·s_D > s_D can never be
    // met, so every substantial level-1 pattern (or a subset refinement)
    // is biased — the result set must be non-empty.
    assert!(!opt.per_k.last().unwrap().patterns.is_empty());
}

#[test]
fn zero_deadline_times_out_gracefully() {
    let (_ds, space, _ranking, index) = build(19, 200, 4);
    let cfg = DetectConfig::new(1, 2, 150).with_deadline(std::time::Duration::ZERO);
    let out = global_bounds(&index, &space, &cfg, &Bounds::constant(3));
    // Either it finished instantly (tiny search) or it truncated; both are
    // acceptable, and no panic occurred.
    if out.stats.timed_out {
        assert!(out.per_k.len() < 149);
    }
}

#[test]
fn kmin_equals_kmax() {
    let (ds, space, ranking, index) = build(23, 45, 4);
    let cfg = DetectConfig::new(3, 7, 7);
    let measure = BiasMeasure::GlobalLower(Bounds::constant(2));
    let opt = global_bounds(&index, &space, &cfg, &Bounds::constant(2));
    assert_eq!(opt.per_k.len(), 1);
    let want = oracle::detect(&ds, &space, &ranking, 3, 7, 7, &measure);
    assert_eq!(opt.per_k, want);
}

#[test]
fn duplicate_rows_and_heavy_skew() {
    // All rows identical except one attribute: exercises extreme counts.
    let n = 64;
    let a: Vec<&str> = (0..n).map(|i| if i == 0 { "rare" } else { "common" }).collect();
    let b = vec!["only"; n];
    let ds = Dataset::builder()
        .categorical_from_str("a", &a)
        .categorical_from_str("b", &b)
        .build()
        .unwrap();
    let space = PatternSpace::from_dataset(&ds).unwrap();
    // Rank the rare row last.
    let mut order: Vec<u32> = (1..n as u32).collect();
    order.push(0);
    let ranking = Ranking::from_order(order).unwrap();
    let index = RankedIndex::build(&ds, &space, &ranking);
    let cfg = DetectConfig::new(1, 2, n);
    let measure = BiasMeasure::GlobalLower(Bounds::constant(1));
    let base = iter_td(&index, &space, &cfg, &measure);
    let opt = global_bounds(&index, &space, &cfg, &Bounds::constant(1));
    assert_eq!(base.per_k, opt.per_k);
    // {a=rare} has count 0 until the final k, so it is reported for every
    // k < n and disappears at k = n.
    let rare = Pattern::single(0, space.pattern(&[("a", "rare")]).unwrap().terms()[0].1);
    assert!(opt.per_k[0].patterns.contains(&rare));
    assert!(!opt.per_k.last().unwrap().patterns.contains(&rare));
}

#[test]
fn stats_monotonicity_between_algorithms() {
    // On a moderate instance, the optimized engines must examine strictly
    // fewer patterns than the baseline while agreeing on results.
    let (_ds, space, _ranking, index) = build(29, 150, 5);
    let cfg = DetectConfig::new(8, 10, 120);
    let bounds = Bounds::steps(vec![(10, 3), (50, 6), (90, 9)]);
    let g = BiasMeasure::GlobalLower(bounds.clone());
    let base = iter_td(&index, &space, &cfg, &g);
    let opt = global_bounds(&index, &space, &cfg, &bounds);
    assert_eq!(base.per_k, opt.per_k);
    assert!(opt.stats.patterns_examined() < base.stats.patterns_examined());
    assert_eq!(opt.stats.full_searches, 3); // initial + steps at 50 and 90

    let p = BiasMeasure::Proportional { alpha: 0.7 };
    let base = iter_td(&index, &space, &cfg, &p);
    let opt = prop_bounds(&index, &space, &cfg, 0.7);
    assert_eq!(base.per_k, opt.per_k);
    assert!(opt.stats.patterns_examined() < base.stats.patterns_examined());
    assert_eq!(opt.stats.full_searches, 1); // PropBounds never rebuilds
}
