//! Edge-case integration tests for the detection engine: degenerate
//! datasets, extreme parameters, and bound shapes the paper's assumptions
//! do not cover (the engine must stay correct, falling back to fresh
//! searches where the incremental reasoning does not apply).

use std::sync::Arc;

use rankfair_core::{
    oracle, Audit, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, KResult, Pattern,
};
use rankfair_rank::Ranking;
use rankfair_synth::{random_dataset, random_ranking, RandomSpec};

fn build(seed: u64, rows: usize, attrs: usize) -> Audit {
    let ds = random_dataset(
        seed,
        RandomSpec {
            rows,
            attrs,
            max_card: 3,
        },
    );
    let ranking = Ranking::from_order(random_ranking(seed + 1, rows)).unwrap();
    Audit::builder(Arc::new(ds))
        .ranking(ranking)
        .build()
        .unwrap()
}

fn under(audit: &Audit, cfg: &DetectConfig, measure: &BiasMeasure, engine: Engine) -> Vec<KResult> {
    audit
        .run(cfg, &AuditTask::UnderRep(measure.clone()), engine)
        .unwrap()
        .detection_output()
        .per_k
}

#[test]
fn single_row_dataset() {
    let ds = rankfair_data::Dataset::builder()
        .categorical_from_str("a", &["x"])
        .categorical_from_str("b", &["y"])
        .build()
        .unwrap();
    let audit = Audit::builder(Arc::new(ds))
        .ranking(Ranking::from_order(vec![0]).unwrap())
        .build()
        .unwrap();
    let cfg = DetectConfig::new(1, 1, 1);
    // L = 1: the single tuple satisfies every pattern, nothing is biased.
    let m = BiasMeasure::GlobalLower(Bounds::constant(1));
    let out = under(&audit, &cfg, &m, Engine::Optimized);
    assert!(out[0].patterns.is_empty());
    // L = 2 can never be met: the level-1 patterns are all reported.
    let m = BiasMeasure::GlobalLower(Bounds::constant(2));
    let out = under(&audit, &cfg, &m, Engine::Optimized);
    assert_eq!(out[0].patterns.len(), 2);
}

#[test]
fn tau_larger_than_dataset_returns_nothing() {
    let audit = build(3, 40, 3);
    let cfg = DetectConfig::new(41, 2, 20);
    let out = under(
        &audit,
        &cfg,
        &BiasMeasure::GlobalLower(Bounds::constant(5)),
        Engine::Optimized,
    );
    assert!(out.iter().all(|kr| kr.patterns.is_empty()));
    let out = under(
        &audit,
        &cfg,
        &BiasMeasure::Proportional { alpha: 0.8 },
        Engine::Optimized,
    );
    assert!(out.iter().all(|kr| kr.patterns.is_empty()));
}

#[test]
fn cardinality_one_attribute() {
    // An attribute where every tuple has the same value: its only pattern
    // covers the whole dataset, and Proposition 4.3's "at least 2 values"
    // assumption does not hold — the engine must still be exact.
    let n = 30;
    let constant = vec!["same"; n];
    let varied: Vec<String> = (0..n).map(|i| format!("v{}", i % 3)).collect();
    let ds = rankfair_data::Dataset::builder()
        .categorical_from_str("c", &constant)
        .categorical_from_str("v", &varied)
        .build()
        .unwrap();
    let audit = Audit::builder(Arc::new(ds))
        .ranking(Ranking::from_order(random_ranking(9, n)).unwrap())
        .build()
        .unwrap();
    let cfg = DetectConfig::new(1, 2, n);
    for measure in [
        BiasMeasure::GlobalLower(Bounds::constant(4)),
        BiasMeasure::Proportional { alpha: 0.9 },
    ] {
        let base = under(&audit, &cfg, &measure, Engine::Baseline);
        let opt = under(&audit, &cfg, &measure, Engine::Optimized);
        assert_eq!(base, opt);
    }
}

#[test]
fn decreasing_bounds_still_exact() {
    // Footnote 3 assumes non-decreasing L_k; the engine falls back to a
    // fresh search on any bound change, so a decreasing specification must
    // still be exact (if unusual).
    let audit = build(11, 50, 4);
    let bounds = Bounds::steps(vec![(0, 6), (10, 4), (20, 2)]);
    let cfg = DetectConfig::new(2, 2, 40);
    let measure = BiasMeasure::GlobalLower(bounds);
    let base = under(&audit, &cfg, &measure, Engine::Baseline);
    let opt = under(&audit, &cfg, &measure, Engine::Optimized);
    assert_eq!(base, opt);
    let want = oracle::detect(
        audit.dataset(),
        audit.space(),
        audit.ranking(),
        2,
        2,
        40,
        &measure,
    );
    assert_eq!(opt, want);
}

#[test]
fn full_k_range_to_dataset_size() {
    let audit = build(13, 120, 4);
    let cfg = DetectConfig::new(5, 1, 120);
    let measure = BiasMeasure::Proportional { alpha: 0.85 };
    let base = under(&audit, &cfg, &measure, Engine::Baseline);
    let opt = under(&audit, &cfg, &measure, Engine::Optimized);
    assert_eq!(base, opt);
    // At k = n every pattern's count equals its size: nothing is biased
    // for α ≤ 1.
    assert!(opt.last().unwrap().patterns.is_empty());
}

#[test]
fn alpha_above_one_flags_even_proportional_groups() {
    let audit = build(17, 60, 3);
    let cfg = DetectConfig::new(2, 5, 55);
    let measure = BiasMeasure::Proportional { alpha: 1.5 };
    let base = under(&audit, &cfg, &measure, Engine::Baseline);
    let opt = under(&audit, &cfg, &measure, Engine::Optimized);
    assert_eq!(base, opt);
    // With α = 1.5 at k = n the requirement 1.5·s_D > s_D can never be
    // met, so every substantial level-1 pattern (or a subset refinement)
    // is biased — the result set must be non-empty.
    assert!(!opt.last().unwrap().patterns.is_empty());
}

#[test]
fn zero_deadline_times_out_gracefully() {
    let audit = build(19, 200, 4);
    let cfg = DetectConfig::new(1, 2, 150).with_deadline(std::time::Duration::ZERO);
    let out = audit
        .run(
            &cfg,
            &AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(3))),
            Engine::Optimized,
        )
        .unwrap();
    // Either it finished instantly (tiny search) or it truncated; both are
    // acceptable, and no panic occurred.
    if out.stats.timed_out {
        assert!(out.per_k.len() < 149);
    }
}

#[test]
fn kmin_equals_kmax() {
    let audit = build(23, 45, 4);
    let cfg = DetectConfig::new(3, 7, 7);
    let measure = BiasMeasure::GlobalLower(Bounds::constant(2));
    let opt = under(&audit, &cfg, &measure, Engine::Optimized);
    assert_eq!(opt.len(), 1);
    let want = oracle::detect(
        audit.dataset(),
        audit.space(),
        audit.ranking(),
        3,
        7,
        7,
        &measure,
    );
    assert_eq!(opt, want);
}

#[test]
fn duplicate_rows_and_heavy_skew() {
    // All rows identical except one attribute: exercises extreme counts.
    let n = 64;
    let a: Vec<&str> = (0..n)
        .map(|i| if i == 0 { "rare" } else { "common" })
        .collect();
    let b = vec!["only"; n];
    let ds = rankfair_data::Dataset::builder()
        .categorical_from_str("a", &a)
        .categorical_from_str("b", &b)
        .build()
        .unwrap();
    // Rank the rare row last.
    let mut order: Vec<u32> = (1..n as u32).collect();
    order.push(0);
    let audit = Audit::builder(Arc::new(ds))
        .ranking(Ranking::from_order(order).unwrap())
        .build()
        .unwrap();
    let cfg = DetectConfig::new(1, 2, n);
    let measure = BiasMeasure::GlobalLower(Bounds::constant(1));
    let base = under(&audit, &cfg, &measure, Engine::Baseline);
    let opt = under(&audit, &cfg, &measure, Engine::Optimized);
    assert_eq!(base, opt);
    // {a=rare} has count 0 until the final k, so it is reported for every
    // k < n and disappears at k = n.
    let rare = Pattern::single(
        0,
        audit.space().pattern(&[("a", "rare")]).unwrap().terms()[0].1,
    );
    assert!(opt[0].patterns.contains(&rare));
    assert!(!opt.last().unwrap().patterns.contains(&rare));
}

#[test]
fn stats_monotonicity_between_algorithms() {
    // On a moderate instance, the optimized engines must examine strictly
    // fewer patterns than the baseline while agreeing on results.
    let audit = build(29, 150, 5);
    let cfg = DetectConfig::new(8, 10, 120);
    let bounds = Bounds::steps(vec![(10, 3), (50, 6), (90, 9)]);
    let g = AuditTask::UnderRep(BiasMeasure::GlobalLower(bounds));
    let base = audit.run(&cfg, &g, Engine::Baseline).unwrap();
    let opt = audit.run(&cfg, &g, Engine::Optimized).unwrap();
    assert_eq!(base.per_k, opt.per_k);
    assert!(opt.stats.patterns_examined() < base.stats.patterns_examined());
    assert_eq!(opt.stats.full_searches, 3); // initial + steps at 50 and 90

    let p = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.7 });
    let base = audit.run(&cfg, &p, Engine::Baseline).unwrap();
    let opt = audit.run(&cfg, &p, Engine::Optimized).unwrap();
    assert_eq!(base.per_k, opt.per_k);
    assert!(opt.stats.patterns_examined() < base.stats.patterns_examined());
    assert_eq!(opt.stats.full_searches, 1); // PropBounds never rebuilds
}

/// Upper-bound edge cases through the audit API: impossible bounds and
/// bound-zero behavior.
#[test]
fn over_rep_extremes() {
    let audit = build(31, 40, 3);
    let n = 40;
    // U ≥ k can never be exceeded: nothing is over-represented.
    let cfg = DetectConfig::new(1, 5, 10);
    let task = AuditTask::OverRep {
        upper: Bounds::constant(n),
        scope: rankfair_core::OverRepScope::MostSpecific,
    };
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    assert!(out.per_k.iter().all(|kr| kr.over.is_empty()));
    // U = 0 at k = n: every non-empty substantial pattern qualifies.
    let cfg = DetectConfig::new(1, n, n);
    let task = AuditTask::OverRep {
        upper: Bounds::constant(0),
        scope: rankfair_core::OverRepScope::MostGeneral,
    };
    let out = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    // Most general qualifying patterns are exactly the substantial
    // level-1 patterns (every level-1 pattern with a match qualifies).
    assert!(out.per_k[0].over.iter().all(|p| p.len() == 1));
    assert!(!out.per_k[0].over.is_empty());
}
