//! Property-based laws for the `Pattern` type: the subset relation is a
//! partial order compatible with matching and with the search-tree
//! parent/child structure. The dominance bookkeeping of the detection
//! engine is built entirely on these laws.
//!
//! Originally written against `proptest`; this container builds offline,
//! so the strategies are replaced by seeded exhaustive-ish sampling with
//! the workspace's deterministic generator — same laws, same coverage
//! scale, reproducible failures by seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rankfair_core::Pattern;

/// A random pattern over `attrs` attributes with cardinality ≤ `card`,
/// each attribute independently present with probability 1/2.
fn random_pattern(rng: &mut StdRng, attrs: u16, card: u16) -> Pattern {
    let terms: Vec<(u16, u16)> = (0..attrs)
        .filter_map(|a| {
            if rng.random::<bool>() {
                Some((a, rng.random_range(0..card)))
            } else {
                None
            }
        })
        .collect();
    Pattern::from_terms(terms).expect("attributes are distinct by construction")
}

/// A random tuple over the same space.
fn random_tuple(rng: &mut StdRng, attrs: u16, card: u16) -> Vec<u16> {
    (0..attrs).map(|_| rng.random_range(0..card)).collect()
}

const CASES: usize = 512;

#[test]
fn subset_is_reflexive_and_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let p = random_pattern(&mut rng, 5, 3);
        assert!(p.is_subset_of(&p));
        assert!(!p.is_proper_subset_of(&p));
    }
}

/// Drops each term of `p` independently with probability 1/2, producing a
/// guaranteed subset.
fn thin(rng: &mut StdRng, p: &Pattern) -> Pattern {
    let terms: Vec<(u16, u16)> = p
        .terms()
        .iter()
        .copied()
        .filter(|_| rng.random::<bool>())
        .collect();
    Pattern::from_terms(terms).expect("thinning keeps attributes distinct")
}

#[test]
fn subset_is_transitive() {
    // Independent random triples essentially never chain, so construct
    // them: c ⊇ b ⊇ a by thinning.
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let c = random_pattern(&mut rng, 5, 3);
        let b = thin(&mut rng, &c);
        let a = thin(&mut rng, &b);
        assert!(a.is_subset_of(&b) && b.is_subset_of(&c));
        assert!(a.is_subset_of(&c));
    }
}

#[test]
fn antisymmetry() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..CASES * 4 {
        let a = random_pattern(&mut rng, 5, 3);
        let b = random_pattern(&mut rng, 5, 3);
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            assert_eq!(a, b);
        }
    }
}

/// `a ⊆ b` ⟺ every tuple matching `b` matches `a` — checked over all
/// 3⁵ tuples of the small space (semantic characterization of the
/// syntactic subset test).
#[test]
fn subset_agrees_with_semantic_entailment() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    for _ in 0..CASES {
        let a = random_pattern(&mut rng, 5, 3);
        let b = random_pattern(&mut rng, 5, 3);
        let mut entailed = true;
        for code in 0..3u32.pow(5) {
            let tuple: Vec<u16> = (0..5).map(|i| ((code / 3u32.pow(i)) % 3) as u16).collect();
            let matches_b = b.matches(|attr| tuple[usize::from(attr)]);
            let matches_a = a.matches(|attr| tuple[usize::from(attr)]);
            if matches_b && !matches_a {
                entailed = false;
                break;
            }
        }
        assert_eq!(a.is_subset_of(&b), entailed, "{a:?} vs {b:?}");
    }
}

#[test]
fn matching_is_monotone_in_generality() {
    let mut rng = StdRng::seed_from_u64(0xE44);
    for _ in 0..CASES * 4 {
        let a = random_pattern(&mut rng, 5, 3);
        let b = random_pattern(&mut rng, 5, 3);
        let t = random_tuple(&mut rng, 5, 3);
        if a.is_subset_of(&b) && b.matches(|attr| t[usize::from(attr)]) {
            assert!(a.matches(|attr| t[usize::from(attr)]));
        }
    }
}

#[test]
fn tree_parent_is_proper_subset() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    for _ in 0..CASES {
        let p = random_pattern(&mut rng, 6, 3);
        if let Some(parent) = p.tree_parent() {
            if !p.is_empty() {
                assert!(parent.is_proper_subset_of(&p));
                assert_eq!(parent.len() + 1, p.len());
            }
        }
    }
}

#[test]
fn child_then_parent_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x1234);
    for _ in 0..CASES {
        let p = random_pattern(&mut rng, 4, 3);
        let value = rng.random_range(0..3u16);
        // Extend with an attribute index beyond the sampled range so the
        // Definition 4.1 precondition (attr > max_attr) holds.
        let child = p.child(10, value);
        assert_eq!(child.tree_parent().unwrap(), p.clone());
        assert!(p.is_subset_of(&child));
        assert_eq!(child.value_of(10), Some(value));
    }
}

/// Canonical (derive) ordering is a total order consistent with
/// equality — required for deterministic snapshots.
#[test]
fn ordering_total_and_consistent() {
    use std::cmp::Ordering;
    let mut rng = StdRng::seed_from_u64(0x5678);
    for _ in 0..CASES * 2 {
        let a = random_pattern(&mut rng, 5, 3);
        let b = random_pattern(&mut rng, 5, 3);
        match a.cmp(&b) {
            Ordering::Equal => assert_eq!(&a, &b),
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }
}
