//! Property-based laws for the `Pattern` type: the subset relation is a
//! partial order compatible with matching and with the search-tree
//! parent/child structure. The dominance bookkeeping of the detection
//! engine is built entirely on these laws.

use proptest::prelude::*;
use rankfair_core::Pattern;

/// Strategy: a pattern over `attrs` attributes with cardinality ≤ `card`,
/// each attribute independently present.
fn pattern_strategy(attrs: u16, card: u16) -> impl Strategy<Value = Pattern> {
    proptest::collection::vec(proptest::option::of(0..card), attrs as usize).prop_map(|vals| {
        let terms: Vec<(u16, u16)> = vals
            .into_iter()
            .enumerate()
            .filter_map(|(a, v)| v.map(|v| (a as u16, v)))
            .collect();
        Pattern::from_terms(terms).expect("attributes are distinct by construction")
    })
}

/// A random tuple over the same space.
fn tuple_strategy(attrs: u16, card: u16) -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(0..card, attrs as usize)
}

proptest! {
    #[test]
    fn subset_is_reflexive_and_antisymmetric(p in pattern_strategy(5, 3)) {
        prop_assert!(p.is_subset_of(&p));
        prop_assert!(!p.is_proper_subset_of(&p));
    }

    #[test]
    fn subset_is_transitive(
        a in pattern_strategy(5, 3),
        b in pattern_strategy(5, 3),
        c in pattern_strategy(5, 3),
    ) {
        if a.is_subset_of(&b) && b.is_subset_of(&c) {
            prop_assert!(a.is_subset_of(&c));
        }
    }

    #[test]
    fn antisymmetry(a in pattern_strategy(5, 3), b in pattern_strategy(5, 3)) {
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// `a ⊆ b` ⟺ every tuple matching `b` matches `a` — checked over all
    /// 3⁵ tuples of the small space (semantic characterization of the
    /// syntactic subset test).
    #[test]
    fn subset_agrees_with_semantic_entailment(
        a in pattern_strategy(5, 3),
        b in pattern_strategy(5, 3),
    ) {
        let mut entailed = true;
        // Enumerate all tuples of the 3^5 space.
        for code in 0..3u32.pow(5) {
            let tuple: Vec<u16> = (0..5)
                .map(|i| ((code / 3u32.pow(i)) % 3) as u16)
                .collect();
            let matches_b = b.matches(|attr| tuple[usize::from(attr)]);
            let matches_a = a.matches(|attr| tuple[usize::from(attr)]);
            if matches_b && !matches_a {
                entailed = false;
                break;
            }
        }
        prop_assert_eq!(a.is_subset_of(&b), entailed);
    }

    #[test]
    fn matching_is_monotone_in_generality(
        a in pattern_strategy(5, 3),
        b in pattern_strategy(5, 3),
        t in tuple_strategy(5, 3),
    ) {
        if a.is_subset_of(&b) && b.matches(|attr| t[usize::from(attr)]) {
            prop_assert!(a.matches(|attr| t[usize::from(attr)]));
        }
    }

    #[test]
    fn tree_parent_is_proper_subset(p in pattern_strategy(6, 3)) {
        if let Some(parent) = p.tree_parent() {
            if !p.is_empty() {
                prop_assert!(parent.is_proper_subset_of(&p));
                prop_assert_eq!(parent.len() + 1, p.len());
            }
        }
    }

    #[test]
    fn child_then_parent_roundtrips(
        p in pattern_strategy(4, 3),
        value in 0u16..3,
    ) {
        // Extend with an attribute index beyond the strategy's range so the
        // Definition 4.1 precondition (attr > max_attr) holds.
        let child = p.child(10, value);
        prop_assert_eq!(child.tree_parent().unwrap(), p.clone());
        prop_assert!(p.is_subset_of(&child));
        prop_assert_eq!(child.value_of(10), Some(value));
    }

    /// Canonical (derive) ordering is a total order consistent with
    /// equality — required for deterministic snapshots.
    #[test]
    fn ordering_total_and_consistent(
        a in pattern_strategy(5, 3),
        b in pattern_strategy(5, 3),
    ) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }
}
