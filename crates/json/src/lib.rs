//! Minimal, dependency-free JSON: one value type, a serializer and a
//! strict parser.
//!
//! crates.io is unreachable in this build environment, so — like the
//! in-workspace `rand` shim — this crate provides just enough of the JSON
//! data model for the wire protocol of `rankfair_service`: [`Value`]
//! (null, bool, number, string, array, object), [`Value::render`] to a
//! compact string, and [`parse`] with typed, position-carrying errors.
//!
//! Design choices, all in service of a deterministic wire format:
//!
//! * Objects preserve **insertion order** (a `Vec` of pairs, not a hash
//!   map), so serializing the same value twice yields identical bytes and
//!   golden-file tests can diff responses directly.
//! * Numbers are `f64`, as in JSON itself. Integral values within the
//!   exactly-representable range print without a fractional part
//!   (`3`, not `3.0`); everything else uses Rust's shortest round-trip
//!   formatting, so `parse(render(v)) == v` for every finite number.
//! * Non-finite numbers cannot be parsed (JSON has no syntax for them)
//!   and serialize as `null`, so a NaN can never silently enter the wire.
//! * [`parse`] rejects trailing garbage: the whole input must be exactly
//!   one JSON value (the JSONL framing splits lines before parsing).
//!
//! ```
//! use rankfair_json::{parse, Value};
//! let v = Value::object([
//!     ("name", Value::from("audit")),
//!     ("ks", Value::array(vec![Value::from(4u64), Value::from(5u64)])),
//! ]);
//! let text = v.render();
//! assert_eq!(text, r#"{"name":"audit","ks":[4,5]}"#);
//! assert_eq!(parse(&text).unwrap(), v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. JSON numbers are doubles; non-finite values serialize as
    /// `null` and can never be produced by the parser.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Pairs keep insertion order so rendering is
    /// deterministic; [`Value::get`] does a linear scan (wire objects are
    /// small).
    Obj(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Conversion to a JSON [`Value`] — implemented by the report and error
/// types of `rankfair_core` and the wire types of `rankfair_service`.
pub trait ToJson {
    /// The JSON encoding of `self`.
    fn to_json(&self) -> Value;
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }

    /// Member lookup on an object (first pair wins); `None` for other
    /// variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `usize`, if this is a non-negative
    /// integral number that fits.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes compactly (no whitespace), deterministically: object
    /// pairs in insertion order, shortest round-trip number formatting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // 2^53: integral doubles below it are exact, so print them as
        // integers (`3`, not `3.0`) — what every wire consumer expects.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 is Rust's shortest representation that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses `text` as exactly one JSON value.
///
/// Strict on the failure modes that matter for a wire format: truncated
/// input, trailing garbage after the value, bad escapes, lone surrogates,
/// and the non-JSON number spellings (`NaN`, `Infinity`, leading `+`,
/// bare `.5`) are all errors, never silent coercions.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(word.as_bytes()))
        {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            // Strict like the rest of the parser: a duplicate key would
            // silently drop one of the values (`get` returns the first
            // pair), turning e.g. a repeated wire-request member into a
            // quiet behavior change instead of a loud error.
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str so the decode cannot fail, but the failure
                    // stays in-band rather than trusting that at a
                    // distance.
                    let c = self
                        .bytes
                        .get(self.pos..)
                        .and_then(|rest| std::str::from_utf8(rest).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the `\u` is consumed),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        if (0xD800..=0xDBFF).contains(&hi) {
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return Err(self.err("high surrogate not followed by \\u escape"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.err("high surrogate not followed by low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a' + 10),
                Some(c @ b'A'..=b'F') => u32::from(c - b'A' + 10),
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit followed by digits
        // (JSON forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The span was matched byte-by-byte against ASCII digit classes,
        // so the decode cannot fail; the failure stays in-band regardless.
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|span| std::str::from_utf8(span).ok())
            .ok_or_else(|| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        // Overflowing literals (1e999) parse to infinity; a wire format
        // must not let a non-finite number in through the front door.
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::from(3usize).render(), "3");
        assert_eq!(Value::from(-7i64).render(), "-7");
        assert_eq!(Value::from(0.5).render(), "0.5");
        assert_eq!(Value::from("a\"b\\c\n").render(), r#""a\"b\\c\n""#);
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a": [1, 2.5, {"b": null}], "c": "x", "d": true} "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert!(v.get("a").unwrap().as_arr().unwrap()[2]
            .get("b")
            .unwrap()
            .is_null());
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "quote \" backslash \\ slash /",
            "tab\tnewline\ncr\rbackspace\u{08}formfeed\u{0C}",
            "unicode: ü λ — 🦀",
            "control \u{01}\u{1f}",
        ] {
            let v = Value::from(s);
            assert_eq!(parse(&v.render()).unwrap(), v, "{s:?}");
        }
        // Escaped forms parse to the same characters.
        assert_eq!(
            parse(r#""\u00fc \u03bb \ud83e\udd80""#).unwrap(),
            Value::from("ü λ 🦀")
        );
    }

    #[test]
    fn numbers_round_trip() {
        for n in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            3.25,
            1e-12,
            6.02e23,
            9007199254740991.0, // 2^53 − 1: still integral-exact
            9007199254740992.0, // 2^53: printed via shortest-repr path
            f64::MIN_POSITIVE,
            f64::MAX,
            0.1 + 0.2, // classic non-representable sum
        ] {
            let v = Value::Num(n);
            let parsed = parse(&v.render()).unwrap();
            assert_eq!(parsed.as_f64(), Some(n), "{n}");
        }
        assert_eq!(parse("1e2").unwrap().as_f64(), Some(100.0));
        assert_eq!(parse("-0.5E-1").unwrap().as_f64(), Some(-0.05));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",                              // empty
            "   ",                           // whitespace only
            "{",                             // truncated object
            "[1, 2",                         // truncated array
            "\"abc",                         // unterminated string
            "{\"a\": }",                     // missing value
            "{\"a\" 1}",                     // missing colon
            "{\"a\": 1, \"a\": 2}",          // duplicate key (first-wins would be silent)
            "{\"a\": {\"b\": 1, \"b\": 1}}", // duplicate key, nested
            "[1,]",                          // trailing comma
            "{} {}",                         // trailing garbage
            "1 2",                           // trailing garbage
            "nul",                           // truncated literal
            "tru e",                         // broken literal
            "\"\\x\"",                       // bad escape
            "\"\\u12g4\"",                   // bad hex
            "\"\\ud800\"",                   // lone high surrogate
            "\"\\udc00\"",                   // lone low surrogate
            "\"\\ud800\\u0041\"",            // high surrogate + non-surrogate
            "NaN",                           // non-finite spellings
            "Infinity",
            "-Infinity",
            "+1",                 // leading plus
            ".5",                 // bare fraction
            "1.",                 // digitless fraction
            "1e",                 // digitless exponent
            "01",                 // leading zero
            "--1",                // double sign
            "1e999999",           // overflows to infinity
            "\u{1}",              // control char at top level
            "\"raw \u{02} ctl\"", // unescaped control char in string
        ] {
            let r = parse(bad);
            assert!(r.is_err(), "accepted {bad:?}: {r:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
        let e = parse("{}g").unwrap_err();
        assert_eq!(e.offset, 2);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::object([("z", Value::from(1usize)), ("a", Value::from(2usize))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        // The parser rejects duplicate keys (strictness: a first-wins
        // lookup would silently drop the second value); directly
        // constructed values still look up first-wins.
        assert!(parse(r#"{"k":1,"k":2}"#).is_err());
        let d = Value::object([("k", Value::from(1usize)), ("k", Value::from(2usize))]);
        assert_eq!(d.get("k").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn usize_accessor_is_strict() {
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(parse("0").unwrap().as_usize(), Some(0));
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("1.5").unwrap().as_usize(), None);
        assert_eq!(parse("1e12").unwrap().as_usize(), None); // > u32::MAX
        assert_eq!(Value::from("3").as_usize(), None);
    }
}
