//! Property-based tests for the data substrate: bitmap algebra,
//! bucketization laws, and CSV round-trips on arbitrary content.
//!
//! Originally written against `proptest`; this container builds offline,
//! so the strategies are replaced by seeded randomized sweeps with the
//! workspace's deterministic generator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rankfair_data::bucketize::{bin_edges, bin_index, bucketize_values, BinStrategy};
use rankfair_data::csv::{read_csv_str, write_csv_string, CsvOptions};
use rankfair_data::{intersect_counts, Bitmap, Column, Dataset};

/// Fused intersection counts agree with the definitionally-correct
/// per-bit evaluation for any pair of bit sets and any prefix.
#[test]
fn intersect_counts_matches_naive() {
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..256 {
        let n = rng.random_range(1..300usize);
        let bits_a: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let bits_b: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
        let mut a = Bitmap::new(n);
        let mut b = Bitmap::new(n);
        for i in 0..n {
            if bits_a[i] {
                a.set(i);
            }
            if bits_b[i] {
                b.set(i);
            }
        }
        let k_frac: f64 = rng.random::<f64>() * 1.2;
        let k = ((n as f64) * k_frac) as usize;
        let (full, prefix) = intersect_counts(&[&a, &b], k, n);
        let naive_full = (0..n).filter(|&i| bits_a[i] && bits_b[i]).count();
        let naive_prefix = (0..k.min(n)).filter(|&i| bits_a[i] && bits_b[i]).count();
        assert_eq!(full, naive_full);
        assert_eq!(prefix, naive_prefix);
        // Prefix counts are monotone in k and bounded by the full count.
        assert!(prefix <= full);
    }
}

/// Bucketization assigns every value to a bin whose edges contain it
/// (up to clamping), codes are monotone in the value, and every label
/// parses back as a range.
#[test]
fn bucketize_is_total_and_monotone() {
    let mut rng = StdRng::seed_from_u64(43);
    for case in 0..128 {
        let len = rng.random_range(2..200usize);
        let values: Vec<f64> = (0..len)
            .map(|_| (rng.random::<f64>() - 0.5) * 2e6)
            .collect();
        let bins = rng.random_range(1..8usize);
        let strategy = if case % 2 == 0 {
            BinStrategy::Quantile
        } else {
            BinStrategy::EqualWidth
        };
        let edges = bin_edges(&values, bins, strategy).unwrap();
        assert!(edges.len() >= 2);
        assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        let col = bucketize_values("v", &values, bins, strategy).unwrap();
        let codes = col.codes().unwrap();
        assert_eq!(codes.len(), values.len());
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    assert!(codes[i] <= codes[j]);
                }
            }
        }
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(usize::from(codes[i]), bin_index(v, &edges));
        }
    }
}

/// CSV round-trips arbitrary categorical content, including separators,
/// quotes and newlines inside fields.
#[test]
fn csv_roundtrip_arbitrary_strings() {
    let mut rng = StdRng::seed_from_u64(47);
    for _ in 0..128 {
        let rows = rng.random_range(1..40usize);
        let strings: Vec<String> = (0..rows)
            .map(|_| {
                let len = rng.random_range(0..12usize);
                let s: String = (0..len)
                    .map(|_| {
                        // Printable ASCII, including separator, quote, space.
                        char::from(rng.random_range(0x20..0x7fu8))
                    })
                    .collect();
                if s.is_empty() {
                    "∅".to_string()
                } else {
                    s
                }
            })
            .collect();
        let ds =
            Dataset::from_columns(vec![Column::categorical("payload", &strings).unwrap()]).unwrap();
        let text = write_csv_string(&ds, ',');
        let opts = CsvOptions {
            force_categorical: vec!["payload".into()],
            ..CsvOptions::default()
        };
        let back = read_csv_str(&text, &opts).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        for r in 0..ds.n_rows() {
            assert_eq!(back.column(0).display(r), ds.column(0).display(r));
        }
    }
}

/// Dictionary encoding is a bijection between occurring labels and
/// codes: decoding every row reproduces the input.
#[test]
fn categorical_encoding_roundtrips() {
    let mut rng = StdRng::seed_from_u64(53);
    for _ in 0..128 {
        let rows = rng.random_range(1..100usize);
        let strings: Vec<String> = (0..rows)
            .map(|_| format!("val{}", rng.random_range(0..6u8)))
            .collect();
        let col = Column::categorical("c", &strings).unwrap();
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(col.label_of(col.code(i)).unwrap(), s.as_str());
        }
        let card = col.cardinality().unwrap();
        let distinct: std::collections::BTreeSet<&String> = strings.iter().collect();
        assert_eq!(card, distinct.len());
    }
}
