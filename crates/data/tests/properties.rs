//! Property-based tests for the data substrate: bitmap algebra,
//! bucketization laws, and CSV round-trips on arbitrary content.

use proptest::prelude::*;

use rankfair_data::bucketize::{bin_edges, bin_index, bucketize_values, BinStrategy};
use rankfair_data::csv::{read_csv_str, write_csv_string, CsvOptions};
use rankfair_data::{intersect_counts, Bitmap, Column, Dataset};

proptest! {
    /// Fused intersection counts agree with the definitionally-correct
    /// per-bit evaluation for any pair of bit sets and any prefix.
    #[test]
    fn intersect_counts_matches_naive(
        bits_a in proptest::collection::vec(any::<bool>(), 1..300),
        bits_b_seed in any::<u64>(),
        k_frac in 0.0f64..1.2,
    ) {
        let n = bits_a.len();
        // Derive b deterministically from the seed so the sizes match.
        let bits_b: Vec<bool> = (0..n)
            .map(|i| (bits_b_seed.wrapping_mul(i as u64 + 1)).count_ones() % 2 == 0)
            .collect();
        let mut a = Bitmap::new(n);
        let mut b = Bitmap::new(n);
        for i in 0..n {
            if bits_a[i] {
                a.set(i);
            }
            if bits_b[i] {
                b.set(i);
            }
        }
        let k = ((n as f64) * k_frac) as usize;
        let (full, prefix) = intersect_counts(&[&a, &b], k, n);
        let naive_full = (0..n).filter(|&i| bits_a[i] && bits_b[i]).count();
        let naive_prefix = (0..k.min(n)).filter(|&i| bits_a[i] && bits_b[i]).count();
        prop_assert_eq!(full, naive_full);
        prop_assert_eq!(prefix, naive_prefix);
        // Prefix counts are monotone in k and bounded by the full count.
        prop_assert!(prefix <= full);
    }

    /// Bucketization assigns every value to a bin whose edges contain it
    /// (up to clamping), codes are monotone in the value, and every label
    /// parses back as a range.
    #[test]
    fn bucketize_is_total_and_monotone(
        values in proptest::collection::vec(-1e6f64..1e6, 2..200),
        bins in 1usize..8,
        quantile in any::<bool>(),
    ) {
        let strategy = if quantile {
            BinStrategy::Quantile
        } else {
            BinStrategy::EqualWidth
        };
        let edges = bin_edges(&values, bins, strategy).unwrap();
        prop_assert!(edges.len() >= 2);
        prop_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        let col = bucketize_values("v", &values, bins, strategy).unwrap();
        let codes = col.codes().unwrap();
        prop_assert_eq!(codes.len(), values.len());
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(codes[i] <= codes[j]);
                }
            }
        }
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(usize::from(codes[i]), bin_index(v, &edges));
        }
    }

    /// CSV round-trips arbitrary categorical content, including separators,
    /// quotes and newlines inside fields.
    #[test]
    fn csv_roundtrip_arbitrary_strings(
        cells in proptest::collection::vec("[ -~]{0,12}", 1..40),
    ) {
        // Build a one-column dataset; force categorical so numeric-looking
        // strings keep their exact text.
        let strings: Vec<String> = cells
            .iter()
            .map(|s| if s.is_empty() { "∅".to_string() } else { s.clone() })
            .collect();
        let ds = Dataset::from_columns(vec![
            Column::categorical("payload", &strings).unwrap(),
        ])
        .unwrap();
        let text = write_csv_string(&ds, ',');
        let opts = CsvOptions {
            force_categorical: vec!["payload".into()],
            ..CsvOptions::default()
        };
        let back = read_csv_str(&text, &opts).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        for r in 0..ds.n_rows() {
            prop_assert_eq!(back.column(0).display(r), ds.column(0).display(r));
        }
    }

    /// Dictionary encoding is a bijection between occurring labels and
    /// codes: decoding every row reproduces the input.
    #[test]
    fn categorical_encoding_roundtrips(
        values in proptest::collection::vec(0u8..6, 1..100),
    ) {
        let strings: Vec<String> = values.iter().map(|v| format!("val{v}")).collect();
        let col = Column::categorical("c", &strings).unwrap();
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(col.label_of(col.code(i)).unwrap(), s.as_str());
        }
        let card = col.cardinality().unwrap();
        let distinct: std::collections::BTreeSet<&String> = strings.iter().collect();
        prop_assert_eq!(card, distinct.len());
    }
}
