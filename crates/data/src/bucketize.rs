//! Binning of continuous attributes into categorical ranges.
//!
//! The paper assumes group-defining attributes are categorical and renders
//! continuous ones categorical by bucketizing them into ranges (§II-A); its
//! experiments bucketize “equally into 3–4 bins, based on their domain and
//! values” (§VI-A). Two strategies are provided:
//!
//! * [`BinStrategy::EqualWidth`] — splits `[min, max]` into equal-width
//!   intervals (the paper’s choice);
//! * [`BinStrategy::Quantile`] — splits at empirical quantiles so bins have
//!   roughly equal population, useful for heavily skewed attributes.
//!
//! Bin labels are human-readable half-open ranges such as `[15.0,17.5)`;
//! the last bin is closed. Labels are ordered low→high, so dictionary codes
//! are monotone in the underlying value — tests rely on this.

use crate::{Column, DataError, Dataset, ValueCode};

/// How to place bin boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Equal-width bins over `[min, max]`.
    EqualWidth,
    /// Equal-population bins at empirical quantiles.
    Quantile,
}

/// Computes bin edges for `values` (length `bins + 1`, strictly increasing
/// where possible).
pub fn bin_edges(
    values: &[f64],
    bins: usize,
    strategy: BinStrategy,
) -> Result<Vec<f64>, DataError> {
    if bins == 0 {
        return Err(DataError::Invalid("bins must be ≥ 1".into()));
    }
    if values.is_empty() {
        return Err(DataError::Invalid(
            "cannot bucketize an empty column".into(),
        ));
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(DataError::Invalid("cannot bucketize NaN values".into()));
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut edges = Vec::with_capacity(bins + 1);
    match strategy {
        BinStrategy::EqualWidth => {
            let width = (max - min) / bins as f64;
            for i in 0..=bins {
                edges.push(min + width * i as f64);
            }
        }
        BinStrategy::Quantile => {
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));
            for i in 0..=bins {
                let q = i as f64 / bins as f64;
                let pos = q * (sorted.len() - 1) as f64;
                edges.push(sorted[pos.round() as usize]);
            }
        }
    }
    // Degenerate columns (constant values, duplicate quantiles) collapse
    // into fewer effective bins; dedup keeps bin assignment well-defined.
    edges.dedup_by(|a, b| a == b);
    if edges.len() == 1 {
        edges.push(edges[0]);
    }
    Ok(edges)
}

/// Assigns `v` to a bin given `edges` (half-open, last bin closed).
pub fn bin_index(v: f64, edges: &[f64]) -> usize {
    let n_bins = edges.len() - 1;
    if v >= edges[n_bins] {
        return n_bins - 1;
    }
    match edges[1..n_bins].iter().position(|&e| v < e) {
        Some(i) => i,
        None => n_bins - 1,
    }
}

fn format_edge(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Human-readable label for bin `i` of `edges`.
pub fn bin_label(edges: &[f64], i: usize) -> String {
    let last = edges.len() - 2;
    if i == last {
        format!("[{},{}]", format_edge(edges[i]), format_edge(edges[i + 1]))
    } else {
        format!("[{},{})", format_edge(edges[i]), format_edge(edges[i + 1]))
    }
}

/// Builds a categorical column by binning `values`.
pub fn bucketize_values(
    name: &str,
    values: &[f64],
    bins: usize,
    strategy: BinStrategy,
) -> Result<Column, DataError> {
    let edges = bin_edges(values, bins, strategy)?;
    let n_bins = edges.len() - 1;
    let labels: Vec<String> = (0..n_bins).map(|i| bin_label(&edges, i)).collect();
    let codes: Vec<ValueCode> = values
        .iter()
        .map(|&v| bin_index(v, &edges) as ValueCode)
        .collect();
    Ok(Column::categorical_encoded(name, codes, labels))
}

/// Replaces the numeric column `col` of `ds` with its bucketized
/// categorical version (same name).
pub fn bucketize_in_place(
    ds: &mut Dataset,
    col: &str,
    bins: usize,
    strategy: BinStrategy,
) -> Result<(), DataError> {
    let idx = ds
        .column_index(col)
        .ok_or_else(|| DataError::UnknownColumn(col.to_string()))?;
    let values = ds.column(idx).values().ok_or(DataError::KindMismatch {
        column: col.to_string(),
        expected: "numeric",
    })?;
    let new_col = bucketize_values(col, values, bins, strategy)?;
    ds.replace_column(idx, new_col)
}

/// Appends a bucketized categorical copy of numeric column `col` under
/// `new_name`, keeping the raw column (so rankers can still use it).
pub fn bucketize_keep_raw(
    ds: &mut Dataset,
    col: &str,
    new_name: &str,
    bins: usize,
    strategy: BinStrategy,
) -> Result<(), DataError> {
    let idx = ds
        .column_index(col)
        .ok_or_else(|| DataError::UnknownColumn(col.to_string()))?;
    let values = ds.column(idx).values().ok_or(DataError::KindMismatch {
        column: col.to_string(),
        expected: "numeric",
    })?;
    let new_col = bucketize_values(new_name, values, bins, strategy)?;
    ds.push_column(new_col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_edges() {
        let e = bin_edges(&[0.0, 10.0, 5.0], 2, BinStrategy::EqualWidth).unwrap();
        assert_eq!(e, vec![0.0, 5.0, 10.0]);
    }

    #[test]
    fn equal_width_assignment_half_open() {
        let e = vec![0.0, 5.0, 10.0];
        assert_eq!(bin_index(0.0, &e), 0);
        assert_eq!(bin_index(4.9, &e), 0);
        assert_eq!(bin_index(5.0, &e), 1);
        assert_eq!(bin_index(10.0, &e), 1); // last bin closed
        assert_eq!(bin_index(12.0, &e), 1); // clamped above
        assert_eq!(bin_index(-1.0, &e), 0); // clamped below
    }

    #[test]
    fn quantile_bins_balance_population() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let col = bucketize_values("v", &values, 4, BinStrategy::Quantile).unwrap();
        let codes = col.codes().unwrap();
        let mut counts = [0usize; 4];
        for &c in codes {
            counts[usize::from(c)] += 1;
        }
        for &c in &counts {
            assert!((20..=30).contains(&c), "unbalanced bins: {counts:?}");
        }
    }

    #[test]
    fn labels_are_ranges() {
        let e = vec![0.0, 5.0, 10.0];
        assert_eq!(bin_label(&e, 0), "[0,5)");
        assert_eq!(bin_label(&e, 1), "[5,10]");
    }

    #[test]
    fn constant_column_collapses_to_one_bin() {
        let col = bucketize_values("v", &[3.0, 3.0, 3.0], 4, BinStrategy::EqualWidth).unwrap();
        assert_eq!(col.cardinality(), Some(1));
        assert_eq!(col.codes().unwrap(), &[0, 0, 0]);
    }

    #[test]
    fn zero_bins_rejected() {
        assert!(bin_edges(&[1.0], 0, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn nan_rejected() {
        assert!(bin_edges(&[1.0, f64::NAN], 2, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn in_place_replaces_column() {
        let mut ds = Dataset::builder()
            .numeric("age", vec![15.0, 16.0, 17.0, 18.0, 19.0, 22.0])
            .build()
            .unwrap();
        bucketize_in_place(&mut ds, "age", 3, BinStrategy::EqualWidth).unwrap();
        let col = ds.column_by_name("age").unwrap();
        assert!(col.is_categorical());
        assert!(col.cardinality().unwrap() <= 3);
    }

    #[test]
    fn keep_raw_appends_column() {
        let mut ds = Dataset::builder()
            .numeric("age", vec![15.0, 19.0, 22.0])
            .build()
            .unwrap();
        bucketize_keep_raw(&mut ds, "age", "age_bin", 3, BinStrategy::EqualWidth).unwrap();
        assert!(ds.column_by_name("age").unwrap().is_numeric());
        assert!(ds.column_by_name("age_bin").unwrap().is_categorical());
    }

    #[test]
    fn in_place_on_categorical_fails() {
        let mut ds = Dataset::builder()
            .categorical_from_str("c", &["a", "b"])
            .build()
            .unwrap();
        assert!(bucketize_in_place(&mut ds, "c", 2, BinStrategy::EqualWidth).is_err());
        assert!(bucketize_in_place(&mut ds, "nope", 2, BinStrategy::EqualWidth).is_err());
    }

    #[test]
    fn codes_monotone_in_value() {
        let values = vec![9.0, 1.0, 5.0, 7.0, 3.0, 0.0, 10.0];
        let col = bucketize_values("v", &values, 3, BinStrategy::EqualWidth).unwrap();
        let codes = col.codes().unwrap();
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    assert!(codes[i] <= codes[j]);
                }
            }
        }
    }
}
