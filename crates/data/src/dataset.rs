use crate::{Column, ColumnData, DataError, ValueCode};

/// One cell of a row being appended to a [`Dataset`] — a label for
/// categorical columns, a number for numeric ones.
#[derive(Debug, Clone, PartialEq)]
pub enum RowValue {
    /// A categorical value, resolved against (and possibly extending) the
    /// column's dictionary.
    Label(String),
    /// A numeric value.
    Number(f64),
}

/// An immutable, column-oriented relational table.
///
/// Categorical columns carry the group-defining attributes of the paper’s
/// §II data model; numeric columns carry ranking scores and regression
/// features. Rows are addressed by position (`0..n_rows`); the ranking
/// layer assigns rank positions on top of these row ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// Starts building a dataset column by column.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder {
            columns: Vec::new(),
        }
    }

    /// Constructs a dataset from pre-built columns.
    pub fn from_columns(columns: Vec<Column>) -> Result<Self, DataError> {
        let n_rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != n_rows {
                return Err(DataError::LengthMismatch {
                    column: c.name().to_string(),
                    got: c.len(),
                    expected: n_rows,
                });
            }
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name() == c.name()) {
                return Err(DataError::DuplicateColumn(c.name().to_string()));
            }
        }
        Ok(Dataset { columns, n_rows })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Position of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Positions of all categorical columns, in declaration order.
    ///
    /// This is the default attribute set over which patterns are defined;
    /// the paper’s Definition 4.1 search-tree ordering follows this order.
    pub fn categorical_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.columns[i].is_categorical())
            .collect()
    }

    /// Positions of all numeric columns, in declaration order.
    pub fn numeric_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.columns[i].is_numeric())
            .collect()
    }

    /// Dictionary code at (`row`, `col`); panics if `col` is numeric.
    pub fn code(&self, row: usize, col: usize) -> ValueCode {
        self.columns[col].code(row)
    }

    /// Numeric value at (`row`, `col`); panics if `col` is categorical.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.columns[col].value(row)
    }

    /// Returns a new dataset restricted to the first `k` columns *among
    /// `cols`*, keeping every row.
    ///
    /// Used by the scalability experiments that vary the number of
    /// attributes (Figures 4–5 of the paper).
    pub fn select_columns(&self, cols: &[usize]) -> Dataset {
        let columns = cols.iter().map(|&i| self.columns[i].clone()).collect();
        Dataset {
            columns,
            n_rows: self.n_rows,
        }
    }

    /// Returns a new dataset containing only the given rows (in the given
    /// order).
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|c| match c.data() {
                ColumnData::Categorical { codes, labels } => Column::categorical_encoded(
                    c.name(),
                    rows.iter().map(|&r| codes[r]).collect(),
                    labels.clone(),
                ),
                ColumnData::Numeric { values } => {
                    Column::numeric(c.name(), rows.iter().map(|&r| values[r]).collect())
                }
            })
            .collect();
        Dataset {
            columns,
            n_rows: rows.len(),
        }
    }

    /// Replaces the column at `idx` (same length required).
    pub fn replace_column(&mut self, idx: usize, column: Column) -> Result<(), DataError> {
        if column.len() != self.n_rows {
            return Err(DataError::LengthMismatch {
                column: column.name().to_string(),
                got: column.len(),
                expected: self.n_rows,
            });
        }
        self.columns[idx] = column;
        Ok(())
    }

    /// Appends a column (same length required, unique name required).
    pub fn push_column(&mut self, column: Column) -> Result<(), DataError> {
        if self.columns.iter().any(|c| c.name() == column.name()) {
            return Err(DataError::DuplicateColumn(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.n_rows {
            return Err(DataError::LengthMismatch {
                column: column.name().to_string(),
                got: column.len(),
                expected: self.n_rows,
            });
        }
        if self.columns.is_empty() {
            self.n_rows = column.len();
        }
        self.columns.push(column);
        Ok(())
    }

    /// Overwrites the numeric value at (`row`, `col`) — the dataset half
    /// of a live score update.
    pub fn set_number(&mut self, row: usize, col: usize, value: f64) -> Result<(), DataError> {
        self.columns[col].set_number(row, value)
    }

    /// Appends one row, given a cell per column in declaration order.
    ///
    /// Categorical cells must be [`RowValue::Label`]s (new labels extend
    /// the column's dictionary); numeric cells must be
    /// [`RowValue::Number`]s. On error nothing is modified.
    ///
    /// This is the data half of the live-monitor workload: tuples arriving
    /// in a stream are appended here, then inserted into the evolving
    /// ranking.
    pub fn push_row(&mut self, cells: &[RowValue]) -> Result<(), DataError> {
        if cells.len() != self.columns.len() {
            return Err(DataError::Invalid(format!(
                "row has {} cells but the dataset has {} columns",
                cells.len(),
                self.columns.len()
            )));
        }
        // Validate every cell's kind first so a failure mid-row cannot
        // leave columns with differing lengths.
        for (c, cell) in self.columns.iter().zip(cells) {
            match (cell, c.is_categorical()) {
                (RowValue::Label(l), true) => {
                    // `>=` matches `Column::push_label`'s cap, which
                    // reserves ValueCode::MAX as the rank-index delta
                    // placeholder.
                    if c.code_of(l).is_none() && c.cardinality() >= Some(usize::from(u16::MAX)) {
                        return Err(DataError::DictionaryOverflow(c.name().to_string()));
                    }
                }
                (RowValue::Number(_), false) => {}
                (RowValue::Label(_), false) => {
                    return Err(DataError::KindMismatch {
                        column: c.name().to_string(),
                        expected: "categorical",
                    })
                }
                (RowValue::Number(_), true) => {
                    return Err(DataError::KindMismatch {
                        column: c.name().to_string(),
                        expected: "numeric",
                    })
                }
            }
        }
        for (c, cell) in self.columns.iter_mut().zip(cells) {
            match cell {
                RowValue::Label(l) => {
                    c.push_label(l)?;
                }
                RowValue::Number(v) => c.push_number(*v)?,
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Renders row `row` as `name=value` pairs — handy in examples and CLI
    /// output.
    pub fn display_row(&self, row: usize) -> String {
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(c.name());
            out.push('=');
            out.push_str(&c.display(row));
        }
        out
    }
}

/// Incremental builder returned by [`Dataset::builder`].
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    columns: Vec<Column>,
}

impl DatasetBuilder {
    /// Adds a categorical column, dictionary-encoding `values`.
    pub fn categorical_from_str<S: AsRef<str>>(mut self, name: &str, values: &[S]) -> Self {
        // Overflow is deferred to `build` to keep the builder chainable.
        match Column::categorical(name, values) {
            Some(c) => self.columns.push(c),
            None => self
                .columns
                .push(Column::categorical_encoded(name, Vec::new(), Vec::new())),
        }
        self
    }

    /// Adds a pre-encoded categorical column.
    pub fn categorical_encoded(
        mut self,
        name: &str,
        codes: Vec<ValueCode>,
        labels: Vec<String>,
    ) -> Self {
        self.columns
            .push(Column::categorical_encoded(name, codes, labels));
        self
    }

    /// Adds a numeric column.
    pub fn numeric(mut self, name: &str, values: Vec<f64>) -> Self {
        self.columns.push(Column::numeric(name, values));
        self
    }

    /// Finalizes the dataset, validating lengths and name uniqueness.
    pub fn build(self) -> Result<Dataset, DataError> {
        Dataset::from_columns(self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::builder()
            .categorical_from_str("a", &["x", "y", "x", "z"])
            .categorical_from_str("b", &["1", "1", "2", "2"])
            .numeric("score", vec![0.5, 0.25, 1.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_shape() {
        let ds = sample();
        assert_eq!(ds.n_rows(), 4);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.categorical_columns(), vec![0, 1]);
        assert_eq!(ds.numeric_columns(), vec![2]);
        assert_eq!(ds.column_index("b"), Some(1));
        assert_eq!(ds.column_index("nope"), None);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = Dataset::builder()
            .categorical_from_str("a", &["x"])
            .numeric("s", vec![1.0, 2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Dataset::builder()
            .categorical_from_str("a", &["x"])
            .numeric("a", vec![1.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, DataError::DuplicateColumn(_)));
    }

    #[test]
    fn select_columns_projects() {
        let ds = sample();
        let proj = ds.select_columns(&[1, 2]);
        assert_eq!(proj.n_cols(), 2);
        assert_eq!(proj.column(0).name(), "b");
        assert_eq!(proj.n_rows(), 4);
    }

    #[test]
    fn select_rows_reorders_and_subsets() {
        let ds = sample();
        let sub = ds.select_rows(&[3, 0]);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.column(0).display(0), "z");
        assert_eq!(sub.column(2).value(1), 0.5);
    }

    #[test]
    fn push_and_replace_column() {
        let mut ds = sample();
        ds.push_column(Column::numeric("extra", vec![1.0; 4]))
            .unwrap();
        assert_eq!(ds.n_cols(), 4);
        assert!(ds
            .push_column(Column::numeric("extra", vec![1.0; 4]))
            .is_err());
        assert!(ds.push_column(Column::numeric("short", vec![1.0])).is_err());
        ds.replace_column(0, Column::categorical("a2", &["q"; 4]).unwrap())
            .unwrap();
        assert_eq!(ds.column(0).name(), "a2");
        assert!(ds
            .replace_column(0, Column::categorical("a3", &["q"]).unwrap())
            .is_err());
    }

    #[test]
    fn display_row_formats_all_columns() {
        let ds = sample();
        assert_eq!(ds.display_row(0), "a=x, b=1, score=0.5");
    }

    #[test]
    fn push_row_appends_and_validates() {
        let mut ds = sample();
        ds.push_row(&[
            RowValue::Label("y".into()),
            RowValue::Label("3".into()), // new label: dictionary extends
            RowValue::Number(0.75),
        ])
        .unwrap();
        assert_eq!(ds.n_rows(), 5);
        assert_eq!(ds.column(0).display(4), "y");
        assert_eq!(ds.column(1).display(4), "3");
        assert_eq!(ds.column(1).cardinality(), Some(3));
        assert_eq!(ds.column(2).value(4), 0.75);
        // Wrong arity and wrong kinds are rejected without mutating.
        assert!(ds.push_row(&[RowValue::Number(1.0)]).is_err());
        assert!(ds
            .push_row(&[
                RowValue::Number(1.0), // categorical column
                RowValue::Label("1".into()),
                RowValue::Number(0.0),
            ])
            .is_err());
        assert!(ds
            .push_row(&[
                RowValue::Label("x".into()),
                RowValue::Label("1".into()),
                RowValue::Label("oops".into()), // numeric column
            ])
            .is_err());
        assert_eq!(ds.n_rows(), 5);
        for c in ds.columns() {
            assert_eq!(c.len(), 5);
        }
    }
}
