//! Minimal, dependency-free CSV reader and writer.
//!
//! Supports the RFC-4180 essentials the UCI / ProPublica files need: quoted
//! fields, embedded separators and quotes, CR/LF line endings, and a
//! configurable separator (the Student Performance file is
//! semicolon-separated). Columns where every non-empty cell parses as `f64`
//! are inferred numeric unless pinned otherwise via [`CsvOptions`].

use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::{Column, DataError, Dataset};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Whether the first record is a header (default `true`).
    pub has_header: bool,
    /// Column names to force categorical even if numeric-looking
    /// (e.g. zip codes, school ids).
    pub force_categorical: Vec<String>,
    /// Column names to force numeric; non-parsing cells become an error.
    pub force_numeric: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            force_categorical: Vec::new(),
            force_numeric: Vec::new(),
        }
    }
}

/// Parses CSV text into records of string fields.
pub fn parse_records(text: &str, separator: char) -> Result<Vec<Vec<String>>, DataError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        // Quote mid-field: keep it literal, as most parsers do.
                        field.push('"');
                    }
                }
                '\r' => {
                    // Swallow; `\n` terminates the record.
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c if c == separator => record.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

fn all_numeric(cells: &[&str]) -> bool {
    let mut saw = false;
    for c in cells {
        if c.is_empty() {
            continue;
        }
        if c.trim().parse::<f64>().is_err() {
            return false;
        }
        saw = true;
    }
    saw
}

/// Builds a [`Dataset`] from CSV text.
pub fn read_csv_str(text: &str, opts: &CsvOptions) -> Result<Dataset, DataError> {
    let records = parse_records(text, opts.separator)?;
    if records.is_empty() {
        return Err(DataError::Csv("empty input".into()));
    }
    let n_cols = records[0].len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != n_cols {
            return Err(DataError::Csv(format!(
                "record {i} has {} fields, expected {n_cols}",
                r.len()
            )));
        }
    }
    let (header, body): (Vec<String>, &[Vec<String>]) = if opts.has_header {
        (records[0].clone(), &records[1..])
    } else {
        (
            (0..n_cols).map(|i| format!("col{i}")).collect(),
            &records[..],
        )
    };
    let mut columns = Vec::with_capacity(n_cols);
    for (ci, name) in header.iter().enumerate() {
        let cells: Vec<&str> = body.iter().map(|r| r[ci].as_str()).collect();
        let forced_cat = opts.force_categorical.iter().any(|n| n == name);
        let forced_num = opts.force_numeric.iter().any(|n| n == name);
        let numeric = forced_num || (!forced_cat && all_numeric(&cells));
        if numeric {
            let mut values = Vec::with_capacity(cells.len());
            for c in &cells {
                let v = if c.is_empty() {
                    f64::NAN
                } else {
                    c.trim().parse::<f64>().map_err(|_| {
                        DataError::Csv(format!("column `{name}`: cannot parse `{c}` as number"))
                    })?
                };
                values.push(v);
            }
            columns.push(Column::numeric(name.clone(), values));
        } else {
            columns.push(
                Column::categorical(name.clone(), &cells)
                    .ok_or_else(|| DataError::DictionaryOverflow(name.clone()))?,
            );
        }
    }
    Dataset::from_columns(columns)
}

/// Reads a CSV file into a [`Dataset`].
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Dataset, DataError> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    read_csv_str(&text, opts)
}

fn quote_field(s: &str, separator: char) -> String {
    if s.contains(separator) || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes `ds` to CSV text.
pub fn write_csv_string(ds: &Dataset, separator: char) -> String {
    let mut out = String::new();
    for (i, c) in ds.columns().iter().enumerate() {
        if i > 0 {
            out.push(separator);
        }
        out.push_str(&quote_field(c.name(), separator));
    }
    out.push('\n');
    for row in 0..ds.n_rows() {
        for (i, c) in ds.columns().iter().enumerate() {
            if i > 0 {
                out.push(separator);
            }
            out.push_str(&quote_field(&c.display(row), separator));
        }
        out.push('\n');
    }
    out
}

/// Writes `ds` to a CSV file (buffered).
pub fn write_csv(ds: &Dataset, path: impl AsRef<Path>, separator: char) -> Result<(), DataError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(write_csv_string(ds, separator).as_bytes())?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnData;

    #[test]
    fn parses_basic_csv_with_header() {
        let ds = read_csv_str("a,b,c\nx,1,2.5\ny,2,3.5\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert!(ds.column_by_name("a").unwrap().is_categorical());
        assert!(ds.column_by_name("b").unwrap().is_numeric());
        assert_eq!(ds.value(1, 2), 3.5);
    }

    #[test]
    fn quoted_fields_and_embedded_separators() {
        let ds = read_csv_str(
            "name,score\n\"Doe, Jane\",1\n\"say \"\"hi\"\"\",2\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let c = ds.column_by_name("name").unwrap();
        assert_eq!(c.label_of(0), Some("Doe, Jane"));
        assert_eq!(c.label_of(1), Some("say \"hi\""));
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let ds = read_csv_str("a,b\r\n1,x\r\n2,y", &CsvOptions::default()).unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.value(1, 0), 2.0);
    }

    #[test]
    fn semicolon_separator() {
        let opts = CsvOptions {
            separator: ';',
            ..CsvOptions::default()
        };
        let ds = read_csv_str("a;b\nGP;1\nMS;2\n", &opts).unwrap();
        assert_eq!(ds.column_by_name("a").unwrap().cardinality(), Some(2));
    }

    #[test]
    fn no_header_generates_names() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = read_csv_str("1,x\n2,y\n", &opts).unwrap();
        assert_eq!(ds.column(0).name(), "col0");
        assert_eq!(ds.column(1).name(), "col1");
    }

    #[test]
    fn force_categorical_overrides_inference() {
        let opts = CsvOptions {
            force_categorical: vec!["zip".into()],
            ..CsvOptions::default()
        };
        let ds = read_csv_str("zip\n48109\n48104\n", &opts).unwrap();
        match ds.column(0).data() {
            ColumnData::Categorical { labels, .. } => assert_eq!(labels.len(), 2),
            _ => panic!("expected categorical"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(read_csv_str("a,b\n1\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(read_csv_str("a\n\"oops\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv_str("", &CsvOptions::default()).is_err());
    }

    #[test]
    fn roundtrip() {
        let ds = Dataset::builder()
            .categorical_from_str("g", &["F", "M", "F"])
            .numeric("s", vec![1.0, 2.0, 3.5])
            .build()
            .unwrap();
        let text = write_csv_string(&ds, ',');
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(back.n_rows(), 3);
        assert_eq!(back.column_by_name("g").unwrap().label_of(1), Some("M"));
        assert_eq!(back.value(2, 1), 3.5);
    }

    #[test]
    fn roundtrip_with_quoting() {
        let ds = Dataset::builder()
            .categorical_from_str("g", &["a,b", "c\"d"])
            .build()
            .unwrap();
        let text = write_csv_string(&ds, ',');
        let back = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(back.column(0).label_of(0), Some("a,b"));
        assert_eq!(back.column(0).label_of(1), Some("c\"d"));
    }

    #[test]
    fn file_roundtrip() {
        let ds = Dataset::builder()
            .categorical_from_str("g", &["x", "y"])
            .build()
            .unwrap();
        let dir = std::env::temp_dir().join("rankfair_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&ds, &path, ',').unwrap();
        let back = read_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(back.n_rows(), 2);
    }
}
