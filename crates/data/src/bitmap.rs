/// A fixed-length packed bitset over row positions.
///
/// The detection engine stores one bitmap per (attribute, value) pair with
/// rows laid out in **rank order**. The size of a pattern in the whole
/// dataset (`s_D`) is then the popcount of the AND of its term bitmaps, and
/// its size in the top-k (`s_Rk`) is the popcount of the same AND restricted
/// to the first `k` bits — both computed by [`intersect_counts`] in a single
/// fused pass, with no intermediate bitmap materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    blocks: Vec<u64>,
    len: usize,
}

const BITS: usize = 64;

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` positions.
    pub fn new(len: usize) -> Self {
        Bitmap {
            blocks: vec![0; len.div_ceil(BITS)],
            len,
        }
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / BITS] |= 1u64 << (i % BITS);
    }

    /// Clears bit `i` (no-op if it was already clear).
    ///
    /// Used by the live-monitor path: when a ranking edit changes which
    /// tuple occupies a rank position, the position's old (attribute,
    /// value) bit is cleared and the new one set, instead of rebuilding
    /// the whole index.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / BITS] &= !(1u64 << (i % BITS));
    }

    /// Grows the bitmap by one position, appended clear. Used when a new
    /// tuple is inserted into a live ranking.
    pub fn push_zero(&mut self) {
        if self.len.is_multiple_of(BITS) {
            self.blocks.push(0);
        }
        self.len += 1;
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / BITS] >> (i % BITS) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Number of set bits among the first `k` positions.
    pub fn count_prefix(&self, k: usize) -> usize {
        let k = k.min(self.len);
        let full = k / BITS;
        let mut total: usize = self.blocks[..full]
            .iter()
            .map(|b| b.count_ones() as usize)
            .sum();
        let rem = k % BITS;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            total += (self.blocks[full] & mask).count_ones() as usize;
        }
        total
    }

    /// Raw blocks (used by the fused intersection below and by tests).
    fn blocks(&self) -> &[u64] {
        &self.blocks
    }
}

/// Computes `(|AND maps|, |AND maps ∩ [0, k)|)` in one pass.
///
/// With an empty `maps` slice the AND is the universe: returns
/// `(len, min(k, len))` where `len` is taken as `universe_len`.
pub fn intersect_counts(maps: &[&Bitmap], k: usize, universe_len: usize) -> (usize, usize) {
    intersect_counts_iter(maps.iter().copied(), k, universe_len)
}

/// Iterator form of [`intersect_counts`]: the same fused full/prefix
/// popcount without requiring the caller to materialize a `&[&Bitmap]`
/// slice — the detection hot path maps pattern terms to bitmaps lazily, so
/// a pattern evaluation performs **zero heap allocations**.
///
/// The iterator is re-walked once per 64-bit block, so it must be `Clone`
/// and cheap to advance (a slice iterator plus a map closure is).
pub fn intersect_counts_iter<'a, I>(maps: I, k: usize, universe_len: usize) -> (usize, usize)
where
    I: Iterator<Item = &'a Bitmap> + Clone,
{
    let mut probe = maps.clone();
    let Some(first) = probe.next() else {
        return (universe_len, k.min(universe_len));
    };
    let len = first.len;
    debug_assert!(maps.clone().all(|m| m.len == len));
    let k = k.min(len);
    let n_blocks = first.blocks.len();
    let k_full = k / BITS;
    let k_rem = k % BITS;
    let mut full = 0usize;
    let mut prefix = 0usize;
    for b in 0..n_blocks {
        // First map copied, remaining ANDed in: avoids a !0 sentinel and
        // lets LLVM unroll the common 1–3 term case.
        let mut acc = first.blocks[b];
        for m in maps.clone().skip(1) {
            acc &= m.blocks()[b];
        }
        let ones = acc.count_ones() as usize;
        full += ones;
        if b < k_full {
            prefix += ones;
        } else if b == k_full && k_rem > 0 {
            prefix += (acc & ((1u64 << k_rem) - 1)).count_ones() as usize;
        }
    }
    (full, prefix)
}

/// Computes `|AND maps ∩ [0, k)|` alone — the prefix half of
/// [`intersect_counts_iter`] — walking **only** the blocks that overlap
/// the first `k` positions instead of the whole universe.
///
/// This is the engine's prefix-only recount: when a stored node is
/// re-activated its `s_D` is already known, so only the top-`k` term of
/// the pair is needed, and for `k ≪ n` the truncated scan touches a
/// `k/n` fraction of the blocks the fused pass would.
///
/// With an empty `maps` iterator the AND is the universe: returns
/// `min(k, universe_len)`.
pub fn intersect_prefix_iter<'a, I>(maps: I, k: usize, universe_len: usize) -> usize
where
    I: Iterator<Item = &'a Bitmap> + Clone,
{
    let mut probe = maps.clone();
    let Some(first) = probe.next() else {
        return k.min(universe_len);
    };
    let len = first.len;
    debug_assert!(maps.clone().all(|m| m.len == len));
    let k = k.min(len);
    let k_full = k / BITS;
    let k_rem = k % BITS;
    let mut prefix = 0usize;
    for b in 0..k_full {
        let mut acc = first.blocks[b];
        for m in maps.clone().skip(1) {
            acc &= m.blocks()[b];
        }
        prefix += acc.count_ones() as usize;
    }
    if k_rem > 0 {
        let mut acc = first.blocks[k_full];
        for m in maps.clone().skip(1) {
            acc &= m.blocks()[k_full];
        }
        prefix += (acc & ((1u64 << k_rem) - 1)).count_ones() as usize;
    }
    prefix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_bits(bits: &[u8]) -> Bitmap {
        let mut m = Bitmap::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b == 1 {
                m.set(i);
            }
        }
        m
    }

    #[test]
    fn set_get_count() {
        let mut m = Bitmap::new(130);
        assert_eq!(m.count_ones(), 0);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(129);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(129));
        assert!(!m.get(1));
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn prefix_counts() {
        let m = from_bits(&[1, 0, 1, 1, 0, 1]);
        assert_eq!(m.count_prefix(0), 0);
        assert_eq!(m.count_prefix(1), 1);
        assert_eq!(m.count_prefix(3), 2);
        assert_eq!(m.count_prefix(4), 3);
        assert_eq!(m.count_prefix(6), 4);
        assert_eq!(m.count_prefix(100), 4); // clamped
    }

    #[test]
    fn prefix_across_block_boundary() {
        let mut m = Bitmap::new(200);
        for i in 0..200 {
            if i % 3 == 0 {
                m.set(i);
            }
        }
        for k in [0, 1, 63, 64, 65, 127, 128, 129, 199, 200] {
            let expect = (0..k).filter(|i| i % 3 == 0).count();
            assert_eq!(m.count_prefix(k), expect, "k={k}");
        }
    }

    #[test]
    fn intersect_empty_is_universe() {
        assert_eq!(intersect_counts(&[], 3, 10), (10, 3));
        assert_eq!(intersect_counts(&[], 30, 10), (10, 10));
    }

    #[test]
    fn intersect_two_maps() {
        let a = from_bits(&[1, 1, 0, 1, 1, 0, 1]);
        let b = from_bits(&[1, 0, 0, 1, 0, 0, 1]);
        let (full, pre) = intersect_counts(&[&a, &b], 4, 7);
        assert_eq!(full, 3); // positions 0, 3, 6
        assert_eq!(pre, 2); // positions 0, 3
    }

    #[test]
    fn intersect_matches_naive_on_random_maps() {
        // Deterministic xorshift so the test needs no rng dependency.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 517;
        for _case in 0..20 {
            let sets: Vec<Vec<bool>> = (0..3)
                .map(|_| (0..n).map(|_| next() % 3 == 0).collect())
                .collect();
            let maps: Vec<Bitmap> = sets
                .iter()
                .map(|s| {
                    let mut m = Bitmap::new(n);
                    for (i, &b) in s.iter().enumerate() {
                        if b {
                            m.set(i);
                        }
                    }
                    m
                })
                .collect();
            let refs: Vec<&Bitmap> = maps.iter().collect();
            let k = (next() % (n as u64 + 1)) as usize;
            let naive_full = (0..n).filter(|&i| sets.iter().all(|s| s[i])).count();
            let naive_pre = (0..k).filter(|&i| sets.iter().all(|s| s[i])).count();
            assert_eq!(intersect_counts(&refs, k, n), (naive_full, naive_pre));
        }
    }

    #[test]
    fn prefix_iter_matches_fused_pair() {
        let a = from_bits(&[1, 1, 0, 1, 1, 0, 1]);
        let b = from_bits(&[1, 0, 0, 1, 0, 0, 1]);
        for k in 0..=7 {
            let (_, pre) = intersect_counts(&[&a, &b], k, 7);
            assert_eq!(intersect_prefix_iter([&a, &b].into_iter(), k, 7), pre);
        }
        // Empty maps: the universe, clamped.
        assert_eq!(intersect_prefix_iter(std::iter::empty(), 3, 10), 3);
        assert_eq!(intersect_prefix_iter(std::iter::empty(), 30, 10), 10);
        // Multi-block universes, k on and around block boundaries.
        let mut big_a = Bitmap::new(300);
        let mut big_b = Bitmap::new(300);
        for i in 0..300 {
            if i % 3 == 0 {
                big_a.set(i);
            }
            if i % 2 == 0 {
                big_b.set(i);
            }
        }
        for k in [0, 1, 63, 64, 65, 128, 200, 299, 300, 999] {
            let (_, pre) = intersect_counts(&[&big_a, &big_b], k, 300);
            assert_eq!(
                intersect_prefix_iter([&big_a, &big_b].into_iter(), k, 300),
                pre,
                "k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(5).set(5);
    }

    #[test]
    fn clear_and_push_zero() {
        let mut m = Bitmap::new(65);
        m.set(0);
        m.set(64);
        m.clear(64);
        m.clear(3); // already clear: no-op
        assert!(m.get(0) && !m.get(64) && !m.get(3));
        assert_eq!(m.count_ones(), 1);
        // Growing appends clear bits and extends blocks on the boundary.
        for _ in 0..64 {
            m.push_zero();
        }
        assert_eq!(m.len(), 129);
        assert!(!m.get(128));
        m.set(128);
        assert_eq!(m.count_prefix(129), 2);
        assert_eq!(m.count_prefix(128), 1);
    }
}
