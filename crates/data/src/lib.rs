//! Columnar dataset substrate for the `rankfair` workspace.
//!
//! The detection problem of *“Detection of Groups with Biased Representation
//! in Ranking”* (ICDE 2023) is defined over a single relational table whose
//! group-defining attributes are categorical (§II of the paper). This crate
//! provides that table:
//!
//! * [`Dataset`] — an immutable, column-oriented table mixing
//!   [`ColumnData::Categorical`] columns (dictionary-encoded `u16` codes)
//!   used for pattern definitions, and [`ColumnData::Numeric`] columns used
//!   by rankers and the explanation module.
//! * [`bucketize`] — equal-width and quantile binning that renders
//!   continuous attributes categorical, exactly as the paper’s experiments
//!   do (“continuous attributes, e.g. age, were bucketized equally into 3–4
//!   bins”).
//! * [`csv`] — a dependency-free CSV reader/writer with type inference so
//!   the real COMPAS / Student / German Credit files can be loaded verbatim
//!   when available.
//! * [`Bitmap`] — packed bitsets with fused *full + prefix* intersection
//!   popcounts. When rows are laid out in rank order, the size of a pattern
//!   in the whole data (`s_D`) and in the top-k (`s_Rk`) fall out of a single
//!   pass over the AND of the per-term bitmaps.
//! * [`examples`] — the paper’s Figure 1 running example, used verbatim by
//!   unit tests across the workspace.
//!
//! # Quick example
//!
//! ```
//! use rankfair_data::{Dataset, ColumnData};
//!
//! let ds = Dataset::builder()
//!     .categorical_from_str("color", &["red", "blue", "red"])
//!     .numeric("score", vec![1.0, 2.0, 3.0])
//!     .build()
//!     .unwrap();
//! assert_eq!(ds.n_rows(), 3);
//! let col = ds.column_by_name("color").unwrap();
//! match col.data() {
//!     ColumnData::Categorical { codes, labels } => {
//!         assert_eq!(labels, &["red".to_string(), "blue".to_string()]);
//!         assert_eq!(codes, &[0, 1, 0]);
//!     }
//!     _ => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
pub mod bucketize;
mod column;
pub mod csv;
mod dataset;
mod error;
pub mod examples;

pub use bitmap::{intersect_counts, intersect_counts_iter, intersect_prefix_iter, Bitmap};
pub use column::{Column, ColumnData};
pub use dataset::{Dataset, DatasetBuilder, RowValue};
pub use error::DataError;

/// Row identifier within a [`Dataset`].
///
/// `u32` is ample for the workloads in the paper (≤ ~10⁷ rows) and keeps the
/// hot search structures compact, following the perf-book guidance on using
/// narrow index types.
pub type TupleId = u32;

/// Dictionary code of a categorical value within its column.
pub type ValueCode = u16;
