use std::fmt;

/// Errors produced while constructing or transforming a [`crate::Dataset`].
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// Columns passed to the builder have differing lengths.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length of the offending column.
        got: usize,
        /// Length established by the first column.
        expected: usize,
    },
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A column name was not found in the dataset.
    UnknownColumn(String),
    /// An operation expected a column of a different kind
    /// (e.g. bucketizing a categorical column).
    KindMismatch {
        /// Name of the offending column.
        column: String,
        /// What the operation required, e.g. `"numeric"`.
        expected: &'static str,
    },
    /// A categorical column exceeded the `u16` dictionary space.
    DictionaryOverflow(String),
    /// Invalid argument (empty dataset, zero bins, …).
    Invalid(String),
    /// CSV syntax or I/O problem.
    Csv(String),
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::LengthMismatch {
                column,
                got,
                expected,
            } => write!(
                f,
                "column `{column}` has {got} rows but the dataset has {expected}"
            ),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column name `{name}`"),
            DataError::UnknownColumn(name) => write!(f, "no column named `{name}`"),
            DataError::KindMismatch { column, expected } => {
                write!(f, "column `{column}` is not {expected}")
            }
            DataError::DictionaryOverflow(name) => write!(
                f,
                "column `{name}` has more than {} distinct values",
                u16::MAX
            ),
            DataError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
            DataError::Csv(msg) => write!(f, "csv error: {msg}"),
            DataError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}
