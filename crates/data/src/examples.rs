//! The paper’s running example (Figure 1): sixteen students from two
//! Portuguese schools, ranked by grade with past failures as tie-breaker.
//!
//! Tests across the workspace check the worked examples of the paper
//! (Examples 2.3, 2.4, 2.5, 4.6, 4.7 and 4.9) against this exact table.

use crate::Dataset;

/// Builds the Figure 1 dataset.
///
/// Columns: `Gender`, `School`, `Address`, `Failures` (categorical) and
/// `Grade` (numeric, 0–20). Row `i` is tuple `i+1` of the figure.
pub fn students_fig1() -> Dataset {
    let gender = [
        "F", "M", "M", "M", "M", "F", "F", "M", "F", "F", "M", "F", "F", "M", "F", "M",
    ];
    let school = [
        "MS", "MS", "GP", "GP", "MS", "MS", "GP", "GP", "MS", "MS", "MS", "GP", "GP", "MS", "GP",
        "GP",
    ];
    let address = [
        "R", "R", "U", "U", "R", "U", "R", "R", "R", "R", "R", "U", "U", "U", "U", "U",
    ];
    let failures = [
        "1", "1", "1", "2", "0", "1", "1", "1", "0", "2", "2", "0", "2", "1", "1", "0",
    ];
    let grade = [
        11.0, 15.0, 8.0, 4.0, 19.0, 4.0, 7.0, 6.0, 14.0, 7.0, 13.0, 20.0, 12.0, 13.0, 5.0, 9.0,
    ];
    Dataset::builder()
        .categorical_from_str("Gender", &gender)
        .categorical_from_str("School", &school)
        .categorical_from_str("Address", &address)
        .categorical_from_str("Failures", &failures)
        .numeric("Grade", grade.to_vec())
        .build()
        .expect("static table is well-formed")
}

/// The ranking of Figure 1 as row indices in rank order (position 0 = rank
/// 1). Matches the figure’s `Rank` column: grade descending, ties broken by
/// fewer past failures.
pub fn fig1_rank_order() -> Vec<u32> {
    // tuple#:   12  5  2  9  14  11  13  1  16  3   7  10   8  15   6   4
    vec![11, 4, 1, 8, 13, 10, 12, 0, 15, 2, 6, 9, 7, 14, 5, 3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure() {
        let ds = students_fig1();
        assert_eq!(ds.n_rows(), 16);
        assert_eq!(ds.n_cols(), 5);
        assert_eq!(ds.categorical_columns(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn example_2_3_pattern_school_gp_has_size_8() {
        let ds = students_fig1();
        let school = ds.column_by_name("School").unwrap();
        let gp = school.code_of("GP").unwrap();
        let count = (0..16).filter(|&r| school.code(r) == gp).count();
        assert_eq!(count, 8);
    }

    #[test]
    fn rank_order_is_a_permutation_consistent_with_grades() {
        let ds = students_fig1();
        let order = fig1_rank_order();
        let mut seen = [false; 16];
        for &r in &order {
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        let grade = ds.column_by_name("Grade").unwrap();
        let fail = ds.column_by_name("Failures").unwrap();
        for w in order.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            let (ga, gb) = (grade.value(a), grade.value(b));
            assert!(
                ga > gb
                    || (ga == gb
                        && fail.label_of(fail.code(a)).unwrap()
                            <= fail.label_of(fail.code(b)).unwrap()),
                "rank order violates grade/failures sort at rows {a},{b}"
            );
        }
    }

    #[test]
    fn example_2_3_top5_school_gp_count_is_1() {
        let ds = students_fig1();
        let order = fig1_rank_order();
        let school = ds.column_by_name("School").unwrap();
        let gp = school.code_of("GP").unwrap();
        let count = order[..5]
            .iter()
            .filter(|&&r| school.code(r as usize) == gp)
            .count();
        assert_eq!(count, 1);
    }
}
