use crate::ValueCode;

/// The payload of a [`Column`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Dictionary-encoded categorical values.
    ///
    /// `codes[row]` indexes into `labels`; labels are stored in order of
    /// first appearance so encoding is deterministic for a given input
    /// order.
    Categorical {
        /// Per-row dictionary codes.
        codes: Vec<ValueCode>,
        /// Dictionary: distinct values in order of first appearance.
        labels: Vec<String>,
    },
    /// Continuous values (scores, grades, amounts, …).
    Numeric {
        /// Per-row values.
        values: Vec<f64>,
    },
}

/// A named column of a [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Creates a categorical column by dictionary-encoding `values`.
    ///
    /// Returns `None` if the number of distinct values exceeds the `u16`
    /// dictionary space.
    pub fn categorical<S: AsRef<str>>(name: impl Into<String>, values: &[S]) -> Option<Self> {
        let mut labels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        // Linear label scan: columns in this domain have tiny cardinality
        // (2–60 distinct values), so a hash map would cost more than it
        // saves.
        for v in values {
            let v = v.as_ref();
            let code = match labels.iter().position(|l| l == v) {
                Some(i) => i,
                None => {
                    // `>=` reserves ValueCode::MAX: the rank-index delta
                    // path uses it as a can't-be-real placeholder code.
                    if labels.len() >= usize::from(u16::MAX) {
                        return None;
                    }
                    labels.push(v.to_string());
                    labels.len() - 1
                }
            };
            codes.push(code as ValueCode);
        }
        Some(Column {
            name: name.into(),
            data: ColumnData::Categorical { codes, labels },
        })
    }

    /// Creates a categorical column from pre-encoded codes and a dictionary.
    ///
    /// Callers (e.g. the synthetic generators) guarantee
    /// `codes[i] < labels.len()`; this is checked with a debug assertion.
    pub fn categorical_encoded(
        name: impl Into<String>,
        codes: Vec<ValueCode>,
        labels: Vec<String>,
    ) -> Self {
        debug_assert!(codes.iter().all(|&c| usize::from(c) < labels.len()));
        Column {
            name: name.into(),
            data: ColumnData::Categorical { codes, labels },
        }
    }

    /// Creates a numeric column.
    pub fn numeric(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column {
            name: name.into(),
            data: ColumnData::Numeric { values },
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Categorical { codes, .. } => codes.len(),
            ColumnData::Numeric { values } => values.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a categorical column.
    pub fn is_categorical(&self) -> bool {
        matches!(self.data, ColumnData::Categorical { .. })
    }

    /// Whether this is a numeric column.
    pub fn is_numeric(&self) -> bool {
        matches!(self.data, ColumnData::Numeric { .. })
    }

    /// Cardinality of the dictionary (categorical) or `None` (numeric).
    pub fn cardinality(&self) -> Option<usize> {
        match &self.data {
            ColumnData::Categorical { labels, .. } => Some(labels.len()),
            ColumnData::Numeric { .. } => None,
        }
    }

    /// Dictionary code for `label`, if this column is categorical and the
    /// label occurs.
    pub fn code_of(&self, label: &str) -> Option<ValueCode> {
        match &self.data {
            ColumnData::Categorical { labels, .. } => labels
                .iter()
                .position(|l| l == label)
                .map(|i| i as ValueCode),
            ColumnData::Numeric { .. } => None,
        }
    }

    /// Label for `code`, if this column is categorical and the code is in
    /// range.
    pub fn label_of(&self, code: ValueCode) -> Option<&str> {
        match &self.data {
            ColumnData::Categorical { labels, .. } => {
                labels.get(usize::from(code)).map(String::as_str)
            }
            ColumnData::Numeric { .. } => None,
        }
    }

    /// Dictionary code at `row` (categorical columns only).
    ///
    /// # Panics
    /// Panics if the column is numeric or `row` is out of bounds.
    pub fn code(&self, row: usize) -> ValueCode {
        match &self.data {
            ColumnData::Categorical { codes, .. } => codes[row],
            // lint:allow(panic-reachability) -- documented contract: pattern spaces only hold categorical (or bucketized) columns, so serving paths never call code() on a numeric column
            ColumnData::Numeric { .. } => panic!("column `{}` is not categorical", self.name),
        }
    }

    /// Value at `row` (numeric columns only).
    ///
    /// # Panics
    /// Panics if the column is categorical or `row` is out of bounds.
    pub fn value(&self, row: usize) -> f64 {
        match &self.data {
            ColumnData::Numeric { values } => values[row],
            ColumnData::Categorical { .. } => panic!("column `{}` is not numeric", self.name),
        }
    }

    /// Appends a row to a categorical column by label, extending the
    /// dictionary if the label is new. Returns the code the row received.
    ///
    /// Errors with [`crate::DataError::KindMismatch`] on numeric columns
    /// and [`crate::DataError::DictionaryOverflow`] when a new label would
    /// exceed the `u16` dictionary space.
    pub fn push_label(&mut self, label: &str) -> Result<ValueCode, crate::DataError> {
        match &mut self.data {
            ColumnData::Categorical { codes, labels } => {
                let code = match labels.iter().position(|l| l == label) {
                    Some(i) => i as ValueCode,
                    None => {
                        // `>=` reserves ValueCode::MAX (the rank-index
                        // delta placeholder) — a real code must never
                        // collide with it.
                        if labels.len() >= usize::from(u16::MAX) {
                            return Err(crate::DataError::DictionaryOverflow(self.name.clone()));
                        }
                        labels.push(label.to_string());
                        (labels.len() - 1) as ValueCode
                    }
                };
                codes.push(code);
                Ok(code)
            }
            ColumnData::Numeric { .. } => Err(crate::DataError::KindMismatch {
                column: self.name.clone(),
                expected: "categorical",
            }),
        }
    }

    /// Appends a row to a numeric column.
    ///
    /// Errors with [`crate::DataError::KindMismatch`] on categorical
    /// columns.
    pub fn push_number(&mut self, value: f64) -> Result<(), crate::DataError> {
        match &mut self.data {
            ColumnData::Numeric { values } => {
                values.push(value);
                Ok(())
            }
            ColumnData::Categorical { .. } => Err(crate::DataError::KindMismatch {
                column: self.name.clone(),
                expected: "numeric",
            }),
        }
    }

    /// Overwrites the numeric value at `row` (live score updates).
    ///
    /// Errors with [`crate::DataError::KindMismatch`] on categorical
    /// columns and [`crate::DataError::Invalid`] on an out-of-range row.
    pub fn set_number(&mut self, row: usize, value: f64) -> Result<(), crate::DataError> {
        match &mut self.data {
            ColumnData::Numeric { values } => match values.get_mut(row) {
                Some(v) => {
                    *v = value;
                    Ok(())
                }
                None => Err(crate::DataError::Invalid(format!(
                    "row {row} out of range for column `{}`",
                    self.name
                ))),
            },
            ColumnData::Categorical { .. } => Err(crate::DataError::KindMismatch {
                column: self.name.clone(),
                expected: "numeric",
            }),
        }
    }

    /// The codes slice of a categorical column, if any.
    pub fn codes(&self) -> Option<&[ValueCode]> {
        match &self.data {
            ColumnData::Categorical { codes, .. } => Some(codes),
            ColumnData::Numeric { .. } => None,
        }
    }

    /// The values slice of a numeric column, if any.
    pub fn values(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Numeric { values } => Some(values),
            ColumnData::Categorical { .. } => None,
        }
    }

    /// Renders the cell at `row` as text (label for categorical, value for
    /// numeric).
    pub fn display(&self, row: usize) -> String {
        match &self.data {
            ColumnData::Categorical { codes, labels } => labels[usize::from(codes[row])].clone(),
            ColumnData::Numeric { values } => {
                let v = values[row];
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", v as i64)
                } else {
                    format!("{v}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_encoding_is_first_appearance_order() {
        let c = Column::categorical("x", &["b", "a", "b", "c", "a"]).unwrap();
        assert_eq!(c.cardinality(), Some(3));
        assert_eq!(c.code_of("b"), Some(0));
        assert_eq!(c.code_of("a"), Some(1));
        assert_eq!(c.code_of("c"), Some(2));
        assert_eq!(c.codes().unwrap(), &[0, 1, 0, 2, 1]);
        assert_eq!(c.label_of(2), Some("c"));
        assert_eq!(c.label_of(3), None);
        assert_eq!(c.code_of("zzz"), None);
    }

    #[test]
    fn numeric_column_accessors() {
        let c = Column::numeric("score", vec![1.5, 2.0]);
        assert!(c.is_numeric());
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), 2.0);
        assert_eq!(c.cardinality(), None);
        assert_eq!(c.display(0), "1.5");
        assert_eq!(c.display(1), "2");
    }

    #[test]
    #[should_panic(expected = "not categorical")]
    fn code_on_numeric_panics() {
        Column::numeric("score", vec![1.0]).code(0);
    }

    #[test]
    #[should_panic(expected = "not numeric")]
    fn value_on_categorical_panics() {
        Column::categorical("c", &["x"]).unwrap().value(0);
    }

    #[test]
    fn display_categorical() {
        let c = Column::categorical("c", &["lo", "hi"]).unwrap();
        assert_eq!(c.display(1), "hi");
    }
}
