//! The JSONL line server: read requests line by line, answer them on a
//! worker pool, write responses in request order.
//!
//! This is what `rankfair serve` runs against stdin/stdout, turning the
//! library into a long-lived scriptable process:
//!
//! ```text
//! $ rankfair serve --workers 4 < requests.jsonl > responses.jsonl
//! ```
//!
//! Ordering contract: responses appear in **request order** regardless of
//! worker count (a reorder buffer on the writer side). Mutations
//! (`register`, `register_monitor`, `update`) serialize **per resource**
//! through the ordering lanes of the shared session core (see
//! `crate::session`): a request sees exactly the dataset/monitor state at
//! the point its line appeared in the stream relative to other requests
//! *on that resource* — a `register` is a registry-entry barrier for its
//! own name, a monitor `update` is ordered against that monitor's
//! snapshots and its dataset's audits — while requests on unrelated
//! resources proceed in parallel. The same core drives the socket
//! front-end ([`crate::net`]), where the parallelism actually pays off
//! across connections.
//!
//! An `{"op": "shutdown"}` line answers, stops reading, and drains.
//!
//! Determinism: at `workers = 1` a session is fully deterministic apart
//! from wall-clock fields, and with [`ServeOptions::strip_timing`] those
//! are zeroed too — which is how the golden-file CI check diffs a whole
//! session byte-for-byte. At higher worker counts the report/stats
//! payloads are still deterministic, but *which* of several concurrently
//! racing cold requests for one cache key pays the build (the `cache.hit`
//! flag) is scheduling-dependent by nature — single-flight guarantees
//! exactly one build, not which request runs it.

use std::io::{BufRead, Write};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};

use crate::session::{Executor, Gate, LineOutcome, Session};
use crate::AuditService;

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads answering audit requests (min 1).
    pub workers: usize,
    /// Zero out `wall_ms` and `stats.elapsed_ms` so responses are
    /// byte-deterministic.
    pub strip_timing: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            strip_timing: false,
        }
    }
}

/// What a [`serve`] session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines answered (empty lines are skipped).
    pub requests: usize,
    /// How many of them answered `"ok": false`.
    pub errors: usize,
}

/// How many responses may be past dispatch but unwritten in a stdio
/// session — generous, since stdout cannot "never read" the way a
/// network peer can; it still bounds the reorder buffer on huge inputs.
fn pipeline_window(workers: usize) -> usize {
    (workers * 4).max(64)
}

/// Reads JSONL requests from `input` until EOF, answers them against
/// `service` on a pool of [`ServeOptions::workers`] threads, and writes
/// one JSONL response per request to `output`, in request order.
///
/// Individual request failures are answered in-band (`"ok": false`) and
/// never abort the session; the only `Err` here is an I/O failure on the
/// streams themselves.
pub fn serve<R: BufRead, W: Write + Send>(
    service: &AuditService,
    input: R,
    output: W,
    opts: &ServeOptions,
) -> std::io::Result<ServeSummary> {
    let workers = opts.workers.max(1);
    // Declared before the scope so worker threads can borrow it.
    let exec = Executor::new(workers, opts.strip_timing);
    let gate = Arc::new(Gate::new(pipeline_window(workers)));
    let dead = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        exec.start_workers(scope, service);
        let (res_tx, res_rx) = mpsc::channel();
        let writer = scope.spawn({
            let gate = Arc::clone(&gate);
            let dead = Arc::clone(&dead);
            move || crate::session::write_responses(output, &res_rx, &gate, &dead)
        });
        let mut session =
            Session::new(&exec, service, res_tx, Arc::clone(&dead), Arc::clone(&gate));
        let mut read_error = None;
        for line in input.lines() {
            // Responses stopped being deliverable (output I/O error):
            // reading further input would silently discard it. Stop now;
            // the writer's error is surfaced below.
            if session.dead() {
                break;
            }
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            if session.dispatch_line(&line) == LineOutcome::Shutdown {
                break;
            }
        }
        // Drop the session (and with it this session's response sender):
        // once the in-flight jobs complete, the writer's receive loop
        // ends. Closing the executor lets the workers exit so the scope
        // can join.
        drop(session);
        exec.close();
        let summary = writer.join().expect("writer thread")?; // lint:allow(panic-path) -- join only errs if the writer thread panicked; re-raising on the serve thread beats silently losing the session summary
        match read_error {
            Some(e) => Err(e),
            None => Ok(summary),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::students_fig1;
    use std::io::Cursor;

    fn fig1_service() -> AuditService {
        let service = AuditService::new();
        service.register_dataset("fig1", Arc::new(students_fig1()));
        service
    }

    fn session(input: &str, workers: usize) -> (Vec<String>, ServeSummary) {
        let service = fig1_service();
        let mut out = Vec::new();
        let summary = serve(
            &service,
            Cursor::new(input.to_string()),
            &mut out,
            &ServeOptions {
                workers,
                strip_timing: true,
            },
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), summary)
    }

    fn audit_line(id: usize) -> String {
        format!(
            concat!(
                r#"{{"id": {}, "dataset": "fig1", "ranking": {{"rank_by": "Grade"}}, "#,
                r#""task": {{"type": "under", "measure": {{"type": "global", "lower": 2}}}}, "#,
                r#""config": {{"tau": 4, "kmin": 4, "kmax": 5}}}}"#
            ),
            id
        )
    }

    /// Re-renders a response line with the `cache` member removed — the
    /// one field that is legitimately scheduling-dependent when several
    /// cold requests race for the same key (single-flight guarantees one
    /// build, not *which* request runs it).
    fn strip_cache(line: &str) -> String {
        match rankfair_json::parse(line).expect("response is JSON") {
            rankfair_json::Value::Obj(pairs) => {
                rankfair_json::Value::Obj(pairs.into_iter().filter(|(k, _)| k != "cache").collect())
                    .render()
            }
            v => v.render(),
        }
    }

    #[test]
    fn answers_in_request_order_at_any_worker_count() {
        let input: String = (0..12).map(|i| audit_line(i) + "\n").collect::<String>() + "\n\n"; // trailing empty lines are skipped
        let (serial, s1) = session(&input, 1);
        for workers in [2, 4, 8] {
            let (parallel, sn) = session(&input, workers);
            // Payloads (reports, stats) are deterministic at any worker
            // count; only the cache-hit attribution may race.
            let a: Vec<String> = serial.iter().map(|l| strip_cache(l)).collect();
            let b: Vec<String> = parallel.iter().map(|l| strip_cache(l)).collect();
            assert_eq!(a, b, "workers={workers}");
            assert_eq!(s1, sn);
            // Single-flight: exactly one of the twelve shared-key
            // requests paid the build, whichever thread won.
            let misses = parallel
                .iter()
                .filter(|l| l.contains(r#""cache":{"hit":false"#))
                .count();
            assert_eq!(misses, 1, "workers={workers}");
        }
        assert_eq!(s1.requests, 12);
        assert_eq!(s1.errors, 0);
        for (i, line) in serial.iter().enumerate() {
            assert!(
                line.starts_with(&format!(r#"{{"id":{i},"ok":true"#)),
                "{line}"
            );
        }
        // Serial session: the first request builds, the rest hit.
        assert!(serial[0].contains(r#""cache":{"hit":false"#));
        for line in &serial[1..] {
            assert!(line.contains(r#""cache":{"hit":true"#), "{line}");
        }
    }

    #[test]
    fn register_is_a_barrier_for_in_flight_requests() {
        // Line order: audit against 60-row `d` with kmax 70 (must fail:
        // k_max exceeds the 60 ranked tuples) → re-register `d` with 100
        // rows → same audit again (must now succeed). Without the
        // dataset-lane ordering the first audit could race past the
        // re-registration and nondeterministically succeed.
        let dir = std::env::temp_dir().join("rankfair_serve_barrier");
        std::fs::create_dir_all(&dir).unwrap();
        let (small, large) = (dir.join("small.csv"), dir.join("large.csv"));
        for (path, rows) in [(&small, 60), (&large, 100)] {
            let ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(rows, 5));
            rankfair_data::csv::write_csv(&ds, path, ',').unwrap();
        }
        let audit = |id: usize| {
            format!(
                concat!(
                    r#"{{"id": {}, "dataset": "d", "ranking": {{"rank_by": "G3"}}, "#,
                    r#""task": {{"type": "over", "upper": 5}}, "#,
                    r#""config": {{"tau": 10, "kmin": 5, "kmax": 70}}, "#,
                    r#""attributes": ["school", "sex"]}}"#
                ),
                id
            )
        };
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            format_args!(
                r#"{{"id": 0, "op": "register", "name": "d", "csv": {:?}}}"#,
                small.to_str().unwrap()
            ),
            audit(1),
            format_args!(
                r#"{{"id": 2, "op": "register", "name": "d", "csv": {:?}}}"#,
                large.to_str().unwrap()
            ),
            audit(3),
        );
        for workers in [1, 4] {
            let (lines, summary) = session(&input, workers);
            assert_eq!(summary.requests, 4, "workers={workers}");
            assert_eq!(summary.errors, 1, "workers={workers}");
            assert!(lines[0].contains(r#""rows":60"#), "{}", lines[0]);
            assert!(
                lines[1].contains(r#""kind":"invalid_k_range""#),
                "workers={workers}: {}",
                lines[1]
            );
            assert!(lines[2].contains(r#""rows":100"#), "{}", lines[2]);
            assert!(
                lines[3].contains(r#""ok":true"#),
                "workers={workers}: {}",
                lines[3]
            );
        }
    }

    #[test]
    fn mixed_ops_and_errors_stay_in_band() {
        let dir = std::env::temp_dir().join("rankfair_serve_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("students.csv");
        let ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(60, 5));
        rankfair_data::csv::write_csv(&ds, &path, ',').unwrap();
        let input = format!(
            concat!(
                r#"{{"id": 0, "op": "register", "name": "students", "csv": {path:?}}}"#,
                "\n",
                r#"{{"id": 1, "dataset": "students", "ranking": {{"rank_by": "G3"}}, "#,
                r#""task": {{"type": "over", "upper": 3}}, "#,
                r#""config": {{"tau": 10, "kmin": 5, "kmax": 8}}, "#,
                r#""attributes": ["school", "sex", "address"]}}"#,
                "\n",
                r#"{{"id": 2, "dataset": "missing", "ranking": {{"rank_by": "G3"}}, "#,
                r#""task": {{"type": "over", "upper": 3}}, "config": {{"tau": 10, "kmin": 5, "kmax": 8}}}}"#,
                "\n",
                "not json at all\n",
                r#"{{"id": 4, "op": "datasets"}}"#,
                "\n",
            ),
            path = path.to_str().unwrap()
        );
        let (lines, summary) = session(&input, 4);
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.errors, 2);
        assert!(lines[0].contains(r#""op":"register""#) && lines[0].contains(r#""rows":60"#));
        assert!(lines[1].contains(r#""ok":true"#) && lines[1].contains(r#""per_k""#));
        assert!(lines[2].contains(r#""kind":"unknown_dataset""#));
        assert!(lines[3].contains(r#""kind":"bad_request""#));
        // The datasets listing sees the stream's own registration plus the
        // preloaded fig1.
        assert!(lines[4].contains(r#""op":"datasets""#));
        assert!(lines[4].contains(r#""name":"fig1""#));
        assert!(lines[4].contains(r#""name":"students""#));
        // Every line parses as JSON.
        for line in &lines {
            rankfair_json::parse(line).unwrap();
        }
    }

    #[test]
    fn monitor_session_is_deterministic_at_any_worker_count() {
        let register = concat!(
            r#"{"id": 0, "op": "register_monitor", "name": "m", "dataset": "fig1", "#,
            r#""rank_by": "Grade", "task": {"type": "combined", "lower": 2, "upper": 3}, "#,
            r#""config": {"tau": 2, "kmin": 2, "kmax": 16}}"#
        );
        let update = concat!(
            r#"{"id": 1, "op": "update", "monitor": "m", "edits": ["#,
            r#"{"edit": "score", "row": 8, "score": 19.75}, "#,
            r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "#,
            r#""Address": "U", "Failures": "0", "Grade": 13.25}}]}"#
        );
        let input = [
            register,
            // Snapshots before and after the update must bracket it in
            // stream order (the monitor's lane orders them).
            r#"{"id": 1, "op": "snapshot", "monitor": "m"}"#,
            update,
            r#"{"id": 3, "op": "snapshot", "monitor": "m"}"#,
            // Audits against the dataset now see the evolved snapshot.
            r#"{"id": 4, "dataset": "fig1", "ranking": {"rank_by": "Grade"}, "task": {"type": "under", "measure": {"type": "global", "lower": 2}}, "config": {"tau": 4, "kmin": 4, "kmax": 5}}"#,
            // Error paths stay in-band.
            r#"{"id": 5, "op": "snapshot", "monitor": "nope"}"#,
            r#"{"id": 6, "op": "update", "monitor": "m", "edits": [{"edit": "score", "row": 999, "score": 1}]}"#,
            r#"{"id": 7, "op": "update", "monitor": "m", "edits": [{"edit": "warp"}]}"#,
        ]
        .join("\n");
        let (serial, summary) = session(&input, 1);
        assert_eq!(summary.requests, 8);
        assert_eq!(summary.errors, 3);
        assert!(
            serial[0].contains(r#""op":"register_monitor""#) && serial[0].contains(r#""rows":16"#)
        );
        assert!(serial[2].contains(r#""op":"update""#) && serial[2].contains(r#""rows":17"#));
        assert!(serial[2].contains(r#""recomputed""#));
        assert!(serial[3].contains(r#""rows":17"#));
        // The pre-update snapshot must show the pre-update row count.
        assert!(serial[1].contains(r#""rows":16"#), "{}", serial[1]);
        assert!(serial[5].contains(r#""kind":"unknown_monitor""#));
        assert!(serial[6].contains(r#""kind":"unknown_row""#));
        assert!(serial[7].contains(r#""kind":"bad_request""#));
        for line in &serial {
            rankfair_json::parse(line).unwrap();
        }
        // Monitor mutations hold the monitor's and dataset's lanes:
        // payloads are identical at any worker count, cache attribution
        // aside.
        for workers in [2, 4, 8] {
            let (parallel, sn) = session(&input, workers);
            let a: Vec<String> = serial.iter().map(|l| strip_cache(l)).collect();
            let b: Vec<String> = parallel.iter().map(|l| strip_cache(l)).collect();
            assert_eq!(a, b, "workers={workers}");
            assert_eq!(summary, sn);
        }
    }

    #[test]
    fn strip_timing_makes_serial_sessions_byte_identical() {
        let input = audit_line(1) + "\n" + &audit_line(1);
        let (a, _) = session(&input, 1);
        let (b, _) = session(&input, 1);
        assert_eq!(a, b);
        assert!(a[0].contains(r#""wall_ms":0"#));
        assert!(a[0].contains(r#""elapsed_ms":0"#));
        // Parallel sessions: payloads identical, cache attribution aside.
        let (c, _) = session(&input, 2);
        assert_eq!(
            a.iter().map(|l| strip_cache(l)).collect::<Vec<_>>(),
            c.iter().map(|l| strip_cache(l)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn shutdown_op_answers_then_stops_reading() {
        let input = format!(
            "{}\n{}\n{}\n",
            audit_line(0),
            r#"{"id": 1, "op": "shutdown"}"#,
            audit_line(2), // never read: the shutdown line ends the session
        );
        for workers in [1, 4] {
            let (lines, summary) = session(&input, workers);
            assert_eq!(summary.requests, 2, "workers={workers}");
            assert_eq!(summary.errors, 0, "workers={workers}");
            assert!(lines[0].contains(r#""id":0"#), "{}", lines[0]);
            assert_eq!(lines[1], r#"{"id":1,"ok":true,"op":"shutdown"}"#);
        }
    }
}
