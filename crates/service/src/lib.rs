//! The serving layer: long-lived datasets, cached audits, typed
//! request/response queries.
//!
//! The paper frames detection as a *query* a decision-maker issues against
//! a ranked dataset — "which groups are under- or over-represented in the
//! top-`k`?" — and real deployments answer many such queries against the
//! same datasets, not one process invocation per question. [`AuditService`]
//! is the piece PR 1 built the owned, `Send + Sync` [`Audit`] for:
//!
//! * a **dataset registry**: named datasets, registered in-memory or
//!   loaded from CSV, shared behind `Arc` across every audit built on
//!   them ([`AuditService::register_dataset`] /
//!   [`AuditService::register_csv`]);
//! * an **audit cache**: built [`Audit`] instances (pattern space + ranked
//!   bitmap index) keyed by [`AuditKey`] — dataset, attribute selection,
//!   bucketization, ranking spec — behind an `RwLock`, so repeated queries
//!   skip space/index construction entirely and concurrent callers share
//!   one immutable index ([`CacheInfo::hit`] reports which path a
//!   response took);
//! * a **typed query interface**: [`AuditRequest`] → [`AuditResponse`]
//!   ([`AuditService::handle`]), taking `&self` and safe to call from any
//!   number of threads;
//! * a **JSONL wire protocol** ([`wire`]) and a worker-pool line server
//!   ([`serve::serve`]) that make the whole thing scriptable as a
//!   long-lived process (`rankfair serve`).
//!
//! ```
//! use std::sync::Arc;
//! use rankfair_core::{AuditTask, BiasMeasure, Bounds, DetectConfig, Engine};
//! use rankfair_service::{AuditRequest, AuditService, RankingSpec};
//!
//! let service = AuditService::new();
//! service.register_dataset("fig1", Arc::new(rankfair_data::examples::students_fig1()));
//! let request = AuditRequest {
//!     dataset: "fig1".into(),
//!     attributes: None,
//!     bucketize: Vec::new(),
//!     ranking: RankingSpec::Order(rankfair_data::examples::fig1_rank_order()),
//!     task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
//!     config: DetectConfig::new(4, 4, 5),
//!     engine: Engine::Optimized,
//! };
//! let cold = service.handle(&request).unwrap();
//! assert!(!cold.cache.hit);
//! let warm = service.handle(&request).unwrap();
//! assert!(warm.cache.hit); // same key: index construction skipped
//! assert_eq!(cold.reports.len(), warm.reports.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use rankfair_core::{
    Audit, AuditError, AuditOutcome, AuditTask, CheckpointStats, DeltaReport, DetectConfig, Engine,
    KReport, MonitorAudit, MonitorError, PatternSpace, RankingEdit,
};
use rankfair_data::csv::{read_csv, CsvOptions};
use rankfair_data::Dataset;
use rankfair_rank::{AttributeRanker, Ranker, Ranking, SortKey};

pub mod net;
pub mod serve;
mod session;
pub mod wire;

/// How a request wants the dataset ranked. Part of the cache key: two
/// requests with the same dataset, attributes, bucketization and ranking
/// spec share one cached [`Audit`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RankingSpec {
    /// Rank by one column of the (raw, un-bucketized) dataset.
    ByColumn {
        /// The column to sort on.
        column: String,
        /// Ascending instead of the default descending.
        ascending: bool,
    },
    /// A precomputed ranking: tuple ids, best first.
    Order(Vec<u32>),
}

impl RankingSpec {
    fn describe(&self) -> String {
        match self {
            RankingSpec::ByColumn { column, ascending } => {
                format!("by:{column}:{}", if *ascending { "asc" } else { "desc" })
            }
            RankingSpec::Order(ids) => {
                // The display key must distinguish different orderings of
                // the same length — clients correlate responses by it.
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                ids.hash(&mut h);
                format!("order:{}ids:{:016x}", ids.len(), h.finish())
            }
        }
    }
}

/// One typed query against a registered dataset.
#[derive(Debug, Clone)]
pub struct AuditRequest {
    /// Name of a registered dataset.
    pub dataset: String,
    /// Pattern attributes (default: every categorical column).
    pub attributes: Option<Vec<String>>,
    /// `(column, bins)` bucketization applied before detection.
    pub bucketize: Vec<(String, usize)>,
    /// How to rank the dataset.
    pub ranking: RankingSpec,
    /// What to detect.
    pub task: AuditTask,
    /// τs, the `k` range, and the optional deadline.
    pub config: DetectConfig,
    /// Optimized or baseline engine.
    pub engine: Engine,
}

impl AuditRequest {
    /// The cache key this request maps to — everything that determines the
    /// built [`Audit`], and nothing that doesn't (task, config and engine
    /// only affect the *run*, so they deliberately stay out).
    ///
    /// The shard count is a property of the *registered dataset*, not the
    /// request, so it is keyed as `1` here; [`AuditService::handle`]
    /// substitutes the registry's value before touching the cache.
    pub fn cache_key(&self) -> AuditKey {
        AuditKey {
            dataset: self.dataset.clone(),
            attributes: self.attributes.clone(),
            bucketize: self.bucketize.clone(),
            ranking: self.ranking.clone(),
            shards: 1,
        }
    }
}

/// The audit-cache key: (dataset id, attribute selection, bucketization,
/// ranking spec, shard count).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AuditKey {
    /// Registered dataset name.
    pub dataset: String,
    /// Attribute restriction, if any.
    pub attributes: Option<Vec<String>>,
    /// Bucketization steps, in application order.
    pub bucketize: Vec<(String, usize)>,
    /// Ranking specification.
    pub ranking: RankingSpec,
    /// Shard count the audit's index was built with. Part of the key so
    /// re-registering a dataset with a different shard spec can never
    /// serve an audit whose index layout no longer matches.
    pub shards: usize,
}

impl fmt::Display for AuditKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}|rank={}", self.dataset, self.ranking.describe())?;
        if let Some(attrs) = &self.attributes {
            write!(f, "|attrs={}", attrs.join(","))?;
        }
        if !self.bucketize.is_empty() {
            let spec: Vec<String> = self
                .bucketize
                .iter()
                .map(|(c, b)| format!("{c}:{b}"))
                .collect();
            write!(f, "|bucketize={}", spec.join(","))?;
        }
        if self.shards > 1 {
            write!(f, "|shards={}", self.shards)?;
        }
        Ok(())
    }
}

/// How a response was produced: from a freshly built audit or from the
/// cache. (Deliberately no global cache-size snapshot here — under
/// concurrency that would capture racy state of *other* requests; use
/// [`AuditService::cache_len`] for diagnostics.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheInfo {
    /// `true` iff the audit (pattern space + ranked index) came from the
    /// cache and no construction work was done for this request.
    pub hit: bool,
    /// Display form of the [`AuditKey`] the request mapped to.
    pub key: String,
}

/// The answer to an [`AuditRequest`].
#[derive(Debug, Clone)]
pub struct AuditResponse {
    /// The dataset queried.
    pub dataset: String,
    /// Raw per-`k` outcome (pattern-level, what `Audit::run` returned).
    pub outcome: AuditOutcome,
    /// Enriched per-`k` reports, both directions, sorted by bias gap.
    pub reports: Vec<KReport>,
    /// Wall-clock time spent handling the request, milliseconds.
    pub wall_ms: f64,
    /// Whether the audit came from the cache.
    pub cache: CacheInfo,
    /// The audit that answered (shared with the cache); gives access to
    /// the pattern space for serialization and follow-up queries.
    pub audit: Arc<Audit>,
}

/// Typed error of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request names a dataset that was never registered.
    UnknownDataset(String),
    /// The request names a monitor that was never registered.
    UnknownMonitor(String),
    /// A dataset registration failed (CSV read/parse error).
    Csv(String),
    /// The request is malformed at the wire or semantic level (bad JSON
    /// shape, unknown ranking column, invalid `k` range spec, …).
    BadRequest(String),
    /// Audit construction or execution failed.
    Audit(AuditError),
    /// Monitor construction or an edit batch failed.
    Monitor(MonitorError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => {
                write!(f, "unknown dataset `{name}` (register it first)")
            }
            ServiceError::UnknownMonitor(name) => {
                write!(f, "unknown monitor `{name}` (register_monitor it first)")
            }
            ServiceError::Csv(e) => write!(f, "loading dataset: {e}"),
            ServiceError::BadRequest(e) => write!(f, "bad request: {e}"),
            ServiceError::Audit(e) => write!(f, "audit: {e}"),
            ServiceError::Monitor(e) => write!(f, "monitor: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<AuditError> for ServiceError {
    fn from(e: AuditError) -> Self {
        ServiceError::Audit(e)
    }
}

impl From<MonitorError> for ServiceError {
    fn from(e: MonitorError) -> Self {
        ServiceError::Monitor(e)
    }
}

/// How to build a [`MonitorAudit`] over a registered dataset.
///
/// Monitors rank by a numeric column of the dataset (the updatable
/// ranking layer needs scores it can edit); bucketization is deliberately
/// unsupported — bin edges fixed at build time would silently misplace
/// later insertions.
#[derive(Debug, Clone)]
pub struct MonitorSpec {
    /// Registered dataset the monitor snapshots at registration time.
    pub dataset: String,
    /// Numeric column supplying the scores.
    pub rank_by: String,
    /// Rank ascending instead of the default descending.
    pub ascending: bool,
    /// Pattern attributes (default: every categorical column).
    pub attributes: Option<Vec<String>>,
    /// What to detect after every edit batch.
    pub task: AuditTask,
    /// τs and the `k` range audited on every update.
    pub config: DetectConfig,
    /// Optimized or baseline engine.
    pub engine: Engine,
    /// Checkpoint cadence `C` for the optimized engines' persistent
    /// state (positive; ignored by baseline monitors, which keep none).
    /// The wire layer defaults it to
    /// [`MonitorAudit::DEFAULT_CHECKPOINT_CADENCE`] and echoes the
    /// effective value as `checkpoints.cadence` in `snapshot`.
    pub checkpoint_every: usize,
}

/// A point-in-time view of a monitor, rendered for the wire.
#[derive(Debug, Clone)]
pub struct MonitorView {
    /// The dataset name the monitor was registered over.
    pub dataset: String,
    /// Rows currently ranked (edits included).
    pub rows: usize,
    /// Enriched per-`k` reports of the current result sets.
    pub reports: Vec<KReport>,
    /// The monitor's pattern space (needed to render patterns).
    pub space: PatternSpace,
    /// Persistent-engine-state stats (live checkpoints, seek/build
    /// counters); `None` for baseline-engine monitors, which keep no
    /// incremental state.
    pub checkpoints: Option<CheckpointStats>,
}

/// What a monitor update did, plus everything needed to render it.
#[derive(Debug, Clone)]
pub struct MonitorUpdate {
    /// The dataset name the monitor tracks.
    pub dataset: String,
    /// Rows ranked after the batch.
    pub rows: usize,
    /// The typed diff the batch produced.
    pub delta: DeltaReport,
    /// The monitor's pattern space (needed to render the delta).
    pub space: PatternSpace,
}

struct DatasetEntry {
    dataset: Arc<Dataset>,
    source: String,
    /// Shard count for audits built on this dataset: `1` means one
    /// monolithic [`rankfair_core::RankedIndex`]; `> 1` partitions the
    /// rows across shard-local indexes merged additively at query time
    /// (see [`rankfair_core::ShardedIndex`]).
    shards: usize,
}

/// A single-flight cache slot: the first request for a key creates the
/// cell and builds into it; concurrent requests for the same key block on
/// `get_or_init` and share the one build instead of duplicating it.
type AuditCell = Arc<OnceLock<Result<Arc<Audit>, ServiceError>>>;

/// A thread-safe audit server: dataset registry + audit cache + typed
/// query handling. All methods take `&self`; share one instance behind an
/// `Arc` (or plain reference with scoped threads) across workers.
pub struct AuditService {
    datasets: RwLock<HashMap<String, DatasetEntry>>,
    audits: RwLock<HashMap<AuditKey, AuditCell>>,
    monitors: RwLock<HashMap<String, Arc<Mutex<MonitorEntry>>>>,
    max_audits: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct MonitorEntry {
    monitor: MonitorAudit,
    dataset: String,
}

impl Default for AuditService {
    fn default() -> Self {
        AuditService {
            datasets: RwLock::default(),
            audits: RwLock::default(),
            monitors: RwLock::default(),
            max_audits: Self::DEFAULT_MAX_AUDITS,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

// Compile-time half of the concurrency contract: the service must remain
// shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AuditService>();
};

impl AuditService {
    /// Default bound on cached audits ([`AuditService::max_cached_audits`]).
    pub const DEFAULT_MAX_AUDITS: usize = 64;

    /// An empty service: no datasets, no cached audits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the audit cache at `max` entries (min 1). A long-lived server
    /// receiving many distinct keys (varying attribute subsets,
    /// bucketizations, rankings) must not grow without bound; when full,
    /// an arbitrary existing entry is dropped to make room — coarse, but
    /// the cache is an optimization, never a correctness requirement.
    pub fn max_cached_audits(mut self, max: usize) -> Self {
        self.max_audits = max.max(1);
        self
    }

    /// Registers (or replaces) an in-memory dataset under `name`.
    /// Replacing a dataset invalidates the cached audits built on it.
    pub fn register_dataset(&self, name: &str, dataset: Arc<Dataset>) {
        self.register_dataset_sharded(name, dataset, 1);
    }

    /// Registers (or replaces) an in-memory dataset under `name`, with
    /// audits built on it partitioning rows across `shards` shard-local
    /// indexes ([`rankfair_core::ShardedIndex`]) whose pattern counts
    /// merge additively at query time. `shards <= 1` means the ordinary
    /// monolithic index. Replacing a dataset — including re-registering
    /// it with a different shard count — invalidates its cached audits.
    pub fn register_dataset_sharded(&self, name: &str, dataset: Arc<Dataset>, shards: usize) {
        let mut datasets = self.datasets.write().expect("registry lock");
        datasets.insert(
            name.to_string(),
            DatasetEntry {
                dataset,
                source: "memory".to_string(),
                shards: shards.max(1),
            },
        );
        drop(datasets);
        self.evict_dataset(name);
    }

    /// Loads a CSV and registers it under `name`. Returns `(rows, cols)`.
    pub fn register_csv(
        &self,
        name: &str,
        path: &str,
        separator: char,
    ) -> Result<(usize, usize), ServiceError> {
        self.register_csv_sharded(name, path, separator, 1)
    }

    /// Loads a CSV and registers it under `name` with a shard spec (see
    /// [`AuditService::register_dataset_sharded`]). Returns `(rows, cols)`.
    pub fn register_csv_sharded(
        &self,
        name: &str,
        path: &str,
        separator: char,
        shards: usize,
    ) -> Result<(usize, usize), ServiceError> {
        let opts = CsvOptions {
            separator,
            ..CsvOptions::default()
        };
        let ds = read_csv(path, &opts).map_err(|e| ServiceError::Csv(format!("{path}: {e}")))?;
        let shape = (ds.n_rows(), ds.n_cols());
        let mut datasets = self.datasets.write().expect("registry lock");
        datasets.insert(
            name.to_string(),
            DatasetEntry {
                dataset: Arc::new(ds),
                source: path.to_string(),
                shards: shards.max(1),
            },
        );
        drop(datasets);
        self.evict_dataset(name);
        Ok(shape)
    }

    /// The shard count audits on `name` are built with (`1` when the
    /// dataset was registered without a shard spec).
    pub fn dataset_shards(&self, name: &str) -> Result<usize, ServiceError> {
        let datasets = self.datasets.read().expect("registry lock");
        datasets
            .get(name)
            .map(|e| e.shards)
            .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))
    }

    /// `(name, source, rows, cols, shards)` of every registered dataset,
    /// sorted by name.
    pub fn datasets(&self) -> Vec<(String, String, usize, usize, usize)> {
        let datasets = self.datasets.read().expect("registry lock");
        let mut out: Vec<_> = datasets
            .iter()
            .map(|(name, e)| {
                (
                    name.clone(),
                    e.source.clone(),
                    e.dataset.n_rows(),
                    e.dataset.n_cols(),
                    e.shards,
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Number of cached audits.
    pub fn cache_len(&self) -> usize {
        self.audits.read().expect("cache lock").len()
    }

    /// `(hits, misses)` counters since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached audit (datasets stay registered). The next
    /// request per key pays construction again — the benchmark uses this
    /// to measure the cold path.
    pub fn clear_cache(&self) {
        self.audits.write().expect("cache lock").clear();
    }

    fn evict_dataset(&self, name: &str) {
        self.audits
            .write()
            .expect("cache lock")
            .retain(|k, _| k.dataset != name);
    }

    /// Registers (or replaces) a live monitor over the current snapshot
    /// of a registered dataset, returning the initial audit state.
    ///
    /// The monitor owns a **private evolving copy** of the dataset:
    /// subsequent [`AuditService::monitor_update`] calls mutate the copy
    /// and republish it under the dataset's name, so plain `audit`
    /// requests issued after an update see the post-edit data (and never
    /// a stale cached audit). Re-registering the dataset itself does
    /// *not* retroactively change an existing monitor.
    pub fn register_monitor(
        &self,
        name: &str,
        spec: &MonitorSpec,
    ) -> Result<MonitorView, ServiceError> {
        let dataset = {
            let datasets = self.datasets.read().expect("registry lock");
            let entry = datasets
                .get(&spec.dataset)
                .ok_or_else(|| ServiceError::UnknownDataset(spec.dataset.clone()))?;
            Arc::clone(&entry.dataset)
        };
        let mut builder = MonitorAudit::builder((*dataset).clone(), &spec.rank_by)
            .ascending(spec.ascending)
            .checkpoint_every(spec.checkpoint_every);
        if let Some(attrs) = &spec.attributes {
            builder = builder.attributes(attrs.iter().cloned());
        }
        let monitor = builder.build(spec.config.clone(), spec.task.clone(), spec.engine)?;
        let view = MonitorView {
            dataset: spec.dataset.clone(),
            rows: monitor.n_rows(),
            reports: monitor.reports(),
            space: monitor.space().clone(),
            checkpoints: monitor.checkpoint_stats(),
        };
        self.monitors.write().expect("monitor lock").insert(
            name.to_string(),
            Arc::new(Mutex::new(MonitorEntry {
                monitor,
                dataset: spec.dataset.clone(),
            })),
        );
        Ok(view)
    }

    fn monitor_entry(&self, name: &str) -> Result<Arc<Mutex<MonitorEntry>>, ServiceError> {
        self.monitors
            .read()
            .expect("monitor lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownMonitor(name.to_string()))
    }

    /// Applies one edit batch to a monitor: delta re-audit, then the
    /// cache interplay — the monitor's new dataset snapshot replaces the
    /// registry entry for its dataset name, which **evicts every cached
    /// audit** built on the pre-edit data.
    pub fn monitor_update(
        &self,
        name: &str,
        edits: &[RankingEdit],
    ) -> Result<MonitorUpdate, ServiceError> {
        let entry = self.monitor_entry(name)?;
        let mut entry = entry.lock().expect("monitor entry lock");
        let delta = entry.monitor.apply(edits)?;
        let update = MonitorUpdate {
            dataset: entry.dataset.clone(),
            rows: entry.monitor.n_rows(),
            delta,
            space: entry.monitor.space().clone(),
        };
        // Republish the evolved dataset under its name and drop the now
        // stale cached audits for it. Lock order: monitor entry first,
        // registry second — no other path takes them in reverse.
        let snapshot = Arc::new(entry.monitor.dataset().clone());
        let mut datasets = self.datasets.write().expect("registry lock");
        // The shard spec belongs to the dataset *name*, so a monitor
        // republishing its evolved snapshot keeps it.
        let shards = datasets.get(&update.dataset).map_or(1, |e| e.shards);
        datasets.insert(
            update.dataset.clone(),
            DatasetEntry {
                dataset: snapshot,
                source: format!("monitor:{name}"),
                shards,
            },
        );
        drop(datasets);
        self.evict_dataset(&update.dataset);
        Ok(update)
    }

    /// Runs `f` against a monitor's current dataset — the wire layer uses
    /// this to resolve edit cells against the evolving column set without
    /// cloning the dataset.
    pub fn with_monitor_dataset<T>(
        &self,
        name: &str,
        f: impl FnOnce(&Dataset) -> T,
    ) -> Result<T, ServiceError> {
        let entry = self.monitor_entry(name)?;
        let entry = entry.lock().expect("monitor entry lock");
        Ok(f(entry.monitor.dataset()))
    }

    /// The current state of a monitor (rows, per-`k` reports).
    pub fn monitor_snapshot(&self, name: &str) -> Result<MonitorView, ServiceError> {
        let entry = self.monitor_entry(name)?;
        let entry = entry.lock().expect("monitor entry lock");
        Ok(MonitorView {
            dataset: entry.dataset.clone(),
            rows: entry.monitor.n_rows(),
            reports: entry.monitor.reports(),
            space: entry.monitor.space().clone(),
            checkpoints: entry.monitor.checkpoint_stats(),
        })
    }

    /// The dataset a monitor was registered over, or `None` for an
    /// unknown monitor — the server uses this to claim the right dataset
    /// ordering lane for an `update` without locking the monitor itself.
    pub fn monitor_dataset(&self, name: &str) -> Option<String> {
        let monitors = self.monitors.read().expect("monitor lock");
        let entry = monitors.get(name)?;
        let entry = entry.lock().expect("monitor entry lock");
        Some(entry.dataset.clone())
    }

    /// `(name, dataset, rows)` of every registered monitor, sorted by
    /// name.
    pub fn monitors(&self) -> Vec<(String, String, usize)> {
        let monitors = self.monitors.read().expect("monitor lock");
        let mut out: Vec<_> = monitors
            .iter()
            .map(|(name, e)| {
                let e = e.lock().expect("monitor entry lock");
                (name.clone(), e.dataset.clone(), e.monitor.n_rows())
            })
            .collect();
        out.sort();
        out
    }

    /// Answers one request: resolve (or build and cache) the audit for the
    /// request's [`AuditKey`], run the task, enrich the reports.
    ///
    /// The cache is **single-flight**: of any number of concurrent cold
    /// requests for one key, exactly one builds the audit (pattern space +
    /// ranked index); the others block on that build and share the result,
    /// reporting a cache hit — so the hit flag deterministically means
    /// "this request did not pay construction".
    pub fn handle(&self, request: &AuditRequest) -> Result<AuditResponse, ServiceError> {
        let start = Instant::now();
        let mut key = request.cache_key();
        // The shard spec lives with the registered dataset, not the
        // request; fold it into the key so audits built under different
        // shard counts never alias. An unknown dataset keeps shards = 1 —
        // the build below reports the typed error.
        if let Ok(shards) = self.dataset_shards(&request.dataset) {
            key.shards = shards;
        }
        let (audit, hit) = self.audit_for(&key, request)?;
        let outcome = audit.run(&request.config, &request.task, request.engine)?;
        let reports = audit.report(&outcome, &request.task);
        Ok(AuditResponse {
            dataset: request.dataset.clone(),
            outcome,
            reports,
            wall_ms: start.elapsed().as_secs_f64() * 1000.0,
            cache: CacheInfo {
                hit,
                key: key.to_string(),
            },
            audit,
        })
    }

    fn audit_for(
        &self,
        key: &AuditKey,
        request: &AuditRequest,
    ) -> Result<(Arc<Audit>, bool), ServiceError> {
        // Fast path: the cell already exists (built or in flight). The
        // read guard must be dropped before the write lock below — an
        // `if let` on the guard would keep it alive into the else branch
        // and self-deadlock.
        let existing = self.audits.read().expect("cache lock").get(key).cloned();
        let (cell, hit) = match existing {
            Some(cell) => (cell, true),
            None => {
                let mut cache = self.audits.write().expect("cache lock");
                // Double-check: another thread may have inserted between
                // the read unlock and the write lock.
                match cache.get(key) {
                    Some(cell) => (Arc::clone(cell), true),
                    None => {
                        // Bounded cache: drop an arbitrary *settled* entry
                        // when full (in-flight builds are left alone so
                        // their waiters resolve normally).
                        if cache.len() >= self.max_audits {
                            if let Some(evict) = cache
                                .iter()
                                .find(|(_, c)| c.get().is_some())
                                .map(|(k, _)| k.clone())
                            {
                                cache.remove(&evict);
                            }
                        }
                        let cell = AuditCell::default();
                        cache.insert(key.clone(), Arc::clone(&cell));
                        (cell, false)
                    }
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // No locks held here: the build (or the wait for a concurrent
        // build of the same key) never serializes unrelated requests.
        match cell.get_or_init(|| self.build_audit(request)) {
            Ok(audit) => Ok((Arc::clone(audit), hit)),
            Err(e) => {
                // Failed builds must not stick: a later request may
                // succeed (e.g. the dataset gets registered in between).
                // Only remove the cell if it is still *this* failed one.
                let mut cache = self.audits.write().expect("cache lock");
                if cache.get(key).is_some_and(|c| Arc::ptr_eq(c, &cell)) {
                    cache.remove(key);
                }
                Err(e.clone())
            }
        }
    }

    fn build_audit(&self, request: &AuditRequest) -> Result<Arc<Audit>, ServiceError> {
        let (dataset, shards) = {
            let datasets = self.datasets.read().expect("registry lock");
            let entry = datasets
                .get(&request.dataset)
                .ok_or_else(|| ServiceError::UnknownDataset(request.dataset.clone()))?;
            (Arc::clone(&entry.dataset), entry.shards)
        };
        let ranking = self.resolve_ranking(&dataset, &request.ranking)?;
        let mut builder = Audit::builder(Arc::clone(&dataset))
            .ranking(ranking)
            .shards(shards);
        for (column, bins) in &request.bucketize {
            builder = builder.bucketize(column, *bins);
        }
        if let Some(attrs) = &request.attributes {
            builder = builder.attributes(attrs.iter().cloned());
        }
        Ok(Arc::new(builder.build()?))
    }

    fn resolve_ranking(
        &self,
        dataset: &Arc<Dataset>,
        spec: &RankingSpec,
    ) -> Result<Ranking, ServiceError> {
        match spec {
            RankingSpec::ByColumn { column, ascending } => {
                if dataset.column_index(column).is_none() {
                    return Err(ServiceError::BadRequest(format!(
                        "ranking column `{column}` does not exist"
                    )));
                }
                let key = if *ascending {
                    SortKey::asc(column)
                } else {
                    SortKey::desc(column)
                };
                Ok(AttributeRanker::new(vec![key]).rank(dataset))
            }
            RankingSpec::Order(ids) => Ranking::from_order(ids.clone())
                .map_err(|e| ServiceError::BadRequest(format!("ranking order: {}", e.0))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_core::{BiasMeasure, Bounds, OverRepScope};
    use rankfair_data::examples::{fig1_rank_order, students_fig1};
    use rankfair_json::ToJson;

    fn fig1_service() -> AuditService {
        let service = AuditService::new();
        service.register_dataset("fig1", Arc::new(students_fig1()));
        service
    }

    fn request(task: AuditTask, cfg: DetectConfig) -> AuditRequest {
        AuditRequest {
            dataset: "fig1".into(),
            attributes: None,
            bucketize: Vec::new(),
            ranking: RankingSpec::Order(fig1_rank_order()),
            task,
            config: cfg,
            engine: Engine::Optimized,
        }
    }

    fn mixed_workload() -> Vec<AuditRequest> {
        vec![
            request(
                AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
                DetectConfig::new(4, 4, 5),
            ),
            request(
                AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 }),
                DetectConfig::new(2, 3, 16),
            ),
            request(
                AuditTask::OverRep {
                    upper: Bounds::constant(2),
                    scope: OverRepScope::MostSpecific,
                },
                DetectConfig::new(2, 3, 16),
            ),
            request(
                AuditTask::Combined {
                    lower: Bounds::constant(2),
                    upper: Bounds::constant(3),
                },
                DetectConfig::new(2, 3, 16),
            ),
        ]
    }

    #[test]
    fn repeated_request_hits_cache() {
        let service = fig1_service();
        let req = &mixed_workload()[0];
        let cold = service.handle(req).unwrap();
        assert!(!cold.cache.hit);
        assert_eq!(service.cache_len(), 1);
        let warm = service.handle(req).unwrap();
        assert!(warm.cache.hit);
        assert_eq!(service.cache_len(), 1);
        assert_eq!(service.cache_stats(), (1, 1));
        // Same audit instance answers both (index construction skipped).
        assert!(Arc::ptr_eq(&cold.audit, &warm.audit));
        assert_eq!(cold.outcome.per_k, warm.outcome.per_k);
    }

    #[test]
    fn distinct_keys_get_distinct_audits() {
        let service = fig1_service();
        let base = &mixed_workload()[0];
        service.handle(base).unwrap();
        let mut restricted = base.clone();
        restricted.attributes = Some(vec!["School".into(), "Gender".into()]);
        let r = service.handle(&restricted).unwrap();
        assert!(!r.cache.hit);
        assert_eq!(service.cache_len(), 2);
        // Task/config/engine do NOT key the cache: a different task on the
        // same dataset+ranking reuses the audit.
        let mut other_task = base.clone();
        other_task.task = AuditTask::OverRep {
            upper: Bounds::constant(2),
            scope: OverRepScope::MostGeneral,
        };
        assert!(service.handle(&other_task).unwrap().cache.hit);
        assert_eq!(service.cache_len(), 2);
    }

    #[test]
    fn concurrent_mixed_workload_matches_serial_audit_byte_for_byte() {
        let service = fig1_service();
        let workload = mixed_workload();
        // Serial ground truth: a plain Audit::run per request, serialized
        // through the same JSON encoding the wire uses.
        let audit = Audit::builder(Arc::new(students_fig1()))
            .ranking(Ranking::from_order(fig1_rank_order()).unwrap())
            .build()
            .unwrap();
        let expected: Vec<String> = workload
            .iter()
            .map(|r| {
                let out = audit.run(&r.config, &r.task, r.engine).unwrap();
                rankfair_core::json::reports_json(&audit.report(&out, &r.task), audit.space())
                    .render()
            })
            .collect();
        // N threads hammer the one service with the mixed workload.
        std::thread::scope(|s| {
            for t in 0..8 {
                let (service, workload, expected) = (&service, &workload, &expected);
                s.spawn(move || {
                    for round in 0..4 {
                        let i = (t + round) % workload.len();
                        let resp = service.handle(&workload[i]).unwrap();
                        let got =
                            rankfair_core::json::reports_json(&resp.reports, resp.audit.space())
                                .render();
                        assert_eq!(got, expected[i], "request {i} in thread {t}");
                    }
                });
            }
        });
        // All requests share one cache key → exactly one entry, and at
        // least one request was answered from the cache.
        assert_eq!(service.cache_len(), 1);
        let (hits, misses) = service.cache_stats();
        assert!(hits >= 1, "no cache hits across 32 requests");
        assert!(misses >= 1);
        // A final repeated request reports the hit in-band.
        assert!(service.handle(&workload[0]).unwrap().cache.hit);
    }

    #[test]
    fn unknown_dataset_and_bad_ranking_are_typed_errors() {
        let service = fig1_service();
        let mut req = mixed_workload()[0].clone();
        req.dataset = "nope".into();
        assert_eq!(
            service.handle(&req).unwrap_err(),
            ServiceError::UnknownDataset("nope".into())
        );
        let mut req = mixed_workload()[0].clone();
        req.ranking = RankingSpec::ByColumn {
            column: "Nope".into(),
            ascending: false,
        };
        assert!(matches!(
            service.handle(&req).unwrap_err(),
            ServiceError::BadRequest(_)
        ));
        let mut req = mixed_workload()[0].clone();
        req.config = DetectConfig::new(4, 4, 400);
        assert!(matches!(
            service.handle(&req).unwrap_err(),
            ServiceError::Audit(AuditError::InvalidKRange { .. })
        ));
        // Errors have JSON encodings for the wire.
        let v = wire::error_json(&ServiceError::UnknownDataset("nope".into()));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("unknown_dataset"));
        let v = wire::error_json(&ServiceError::Audit(AuditError::MissingRanking));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("missing_ranking"));
        let _ = ServiceError::Csv("x".into()).to_json();
    }

    #[test]
    fn ranking_by_column_matches_precomputed_order() {
        // fig1's paper order is Grade descending (failures tie-break).
        // Ranking by Grade alone must produce identical top-k *counts* for
        // the groups at k where no tie straddles the boundary; here we just
        // assert the by-column path runs and caches independently.
        let service = fig1_service();
        let mut req = mixed_workload()[0].clone();
        req.ranking = RankingSpec::ByColumn {
            column: "Grade".into(),
            ascending: false,
        };
        let r1 = service.handle(&req).unwrap();
        assert!(!r1.cache.hit);
        let r2 = service.handle(&req).unwrap();
        assert!(r2.cache.hit);
        assert_eq!(r1.outcome.per_k, r2.outcome.per_k);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn replacing_a_dataset_evicts_its_audits() {
        let service = fig1_service();
        service.register_dataset("other", Arc::new(students_fig1()));
        let req = mixed_workload()[0].clone();
        let mut other = req.clone();
        other.dataset = "other".into();
        service.handle(&req).unwrap();
        service.handle(&other).unwrap();
        assert_eq!(service.cache_len(), 2);
        // Re-registering fig1 drops only fig1's cached audit.
        service.register_dataset("fig1", Arc::new(students_fig1()));
        assert_eq!(service.cache_len(), 1);
        assert!(!service.handle(&req).unwrap().cache.hit);
        assert!(service.handle(&other).unwrap().cache.hit);
        // clear_cache drops everything.
        service.clear_cache();
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn cache_is_bounded_with_arbitrary_eviction() {
        let service = fig1_service().max_cached_audits(2);
        let base = &mixed_workload()[0];
        let with_attrs = |attrs: &[&str]| {
            let mut r = base.clone();
            r.attributes = Some(attrs.iter().map(|s| s.to_string()).collect());
            r
        };
        // Three distinct keys through a 2-entry cache: never grows past 2.
        service.handle(base).unwrap();
        service.handle(&with_attrs(&["School"])).unwrap();
        assert_eq!(service.cache_len(), 2);
        service.handle(&with_attrs(&["Gender"])).unwrap();
        assert_eq!(service.cache_len(), 2);
        // Evicted keys still answer correctly (rebuild, reported cold).
        let again = service.handle(base).unwrap();
        assert_eq!(
            again.outcome.per_k,
            service.handle(base).unwrap().outcome.per_k
        );
        assert!(service.cache_len() <= 2);
    }

    #[test]
    fn sharded_registration_matches_unsharded_and_keys_separately() {
        let service = fig1_service();
        service.register_dataset_sharded("fig1s", Arc::new(students_fig1()), 3);
        assert_eq!(service.dataset_shards("fig1s").unwrap(), 3);
        assert_eq!(service.dataset_shards("fig1").unwrap(), 1);
        // Every task/engine shape answers identically through the sharded
        // index, the response is keyed (and cached) under the shard spec,
        // and the audit really is sharded.
        for req in mixed_workload() {
            let mut sharded = req.clone();
            sharded.dataset = "fig1s".into();
            let mono = service.handle(&req).unwrap();
            let shard = service.handle(&sharded).unwrap();
            assert_eq!(mono.outcome.per_k, shard.outcome.per_k);
            assert!(shard.cache.key.contains("|shards=3"), "{}", shard.cache.key);
            assert!(!mono.cache.key.contains("shards"), "{}", mono.cache.key);
            assert_eq!(shard.audit.index().shard_count(), 3);
            assert!(service.handle(&sharded).unwrap().cache.hit);
        }
        // Re-registering under a different shard count evicts the cached
        // audits and the next request rebuilds with the new layout.
        service.register_dataset_sharded("fig1s", Arc::new(students_fig1()), 5);
        let mut req = mixed_workload()[0].clone();
        req.dataset = "fig1s".into();
        let resp = service.handle(&req).unwrap();
        assert!(!resp.cache.hit, "stale sharded audit served");
        assert_eq!(resp.audit.index().shard_count(), 5);
        assert!(resp.cache.key.contains("|shards=5"), "{}", resp.cache.key);
        // The registry listing reports the shard spec.
        let listed = service.datasets();
        let entry = listed.iter().find(|d| d.0 == "fig1s").unwrap();
        assert_eq!(entry.4, 5);
        assert_eq!(
            service.dataset_shards("nope").unwrap_err(),
            ServiceError::UnknownDataset("nope".into())
        );
    }

    #[test]
    fn monitor_lifecycle_register_update_snapshot() {
        use rankfair_core::RankingEdit;
        let service = fig1_service();
        let spec = MonitorSpec {
            dataset: "fig1".into(),
            rank_by: "Grade".into(),
            ascending: false,
            attributes: None,
            task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
            config: DetectConfig::new(2, 2, 16),
            engine: Engine::Optimized,
            checkpoint_every: 4,
        };
        let view = service.register_monitor("m1", &spec).unwrap();
        assert_eq!(view.rows, 16);
        assert_eq!(view.reports.len(), 15);
        // Optimized monitors surface their persistent engine state.
        let ck = view.checkpoints.as_ref().expect("optimized keeps state");
        assert!(ck.lower_checkpoints > 0 && ck.stored_nodes > 0);
        assert_eq!(ck.upper_checkpoints, 0, "UnderRep has no upper engine");
        assert_eq!(
            service.monitors(),
            vec![("m1".to_string(), "fig1".to_string(), 16)]
        );
        // Unknown names are typed errors.
        assert_eq!(
            service.monitor_snapshot("nope").unwrap_err(),
            ServiceError::UnknownMonitor("nope".into())
        );
        let mut bad = spec.clone();
        bad.dataset = "nope".into();
        assert_eq!(
            service.register_monitor("m2", &bad).unwrap_err(),
            ServiceError::UnknownDataset("nope".into())
        );
        // An update changes the snapshot and reports a delta.
        let before = service.monitor_snapshot("m1").unwrap();
        let update = service
            .monitor_update(
                "m1",
                &[RankingEdit::ScoreUpdate {
                    row: 8,
                    score: 19.75,
                }],
            )
            .unwrap();
        assert!(update.delta.recomputed.is_some());
        let after = service.monitor_snapshot("m1").unwrap();
        assert_eq!(after.rows, 16);
        // The delta re-audit either seeked into a checkpoint or rebuilt
        // after a full invalidation — both show up in the counters.
        let ck = after.checkpoints.as_ref().unwrap();
        assert!(ck.seeks + ck.cold_builds >= 2);
        if update.delta.total_changes() > 0 {
            assert_ne!(
                rankfair_core::json::reports_json(&before.reports, &before.space).render(),
                rankfair_core::json::reports_json(&after.reports, &after.space).render(),
            );
        }
        // Bad edits surface as typed monitor errors and change nothing.
        assert!(matches!(
            service
                .monitor_update(
                    "m1",
                    &[RankingEdit::ScoreUpdate {
                        row: 999,
                        score: 1.0
                    }]
                )
                .unwrap_err(),
            ServiceError::Monitor(_)
        ));
    }

    #[test]
    fn monitor_update_evicts_and_republishes_the_dataset() {
        use rankfair_core::RankingEdit;
        let service = fig1_service();
        let audit_req = mixed_workload()[0].clone();
        // Warm the audit cache for fig1.
        assert!(!service.handle(&audit_req).unwrap().cache.hit);
        assert!(service.handle(&audit_req).unwrap().cache.hit);
        let spec = MonitorSpec {
            dataset: "fig1".into(),
            rank_by: "Grade".into(),
            ascending: false,
            attributes: None,
            task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2))),
            config: DetectConfig::new(2, 2, 16),
            engine: Engine::Optimized,
            checkpoint_every: rankfair_core::MonitorAudit::DEFAULT_CHECKPOINT_CADENCE,
        };
        service.register_monitor("m1", &spec).unwrap();
        service
            .monitor_update(
                "m1",
                &[RankingEdit::ScoreUpdate {
                    row: 8,
                    score: 19.75,
                }],
            )
            .unwrap();
        // The cached audit for fig1 was evicted and the registry now
        // serves the monitor's evolved snapshot.
        assert_eq!(service.cache_len(), 0);
        let resp = service.handle(&audit_req).unwrap();
        assert!(!resp.cache.hit, "stale audit served after monitor update");
        let listed = service.datasets();
        assert_eq!(listed[0].1, "monitor:m1");
        // The post-edit grade is visible to fresh audits.
        let grade = resp
            .audit
            .dataset()
            .column_by_name("Grade")
            .unwrap()
            .value(8);
        assert_eq!(grade, 19.75);
    }

    #[test]
    fn order_ranking_keys_are_distinguishable() {
        let order = fig1_rank_order();
        let mut reversed = order.clone();
        reversed.reverse();
        let a = RankingSpec::Order(order).describe();
        let b = RankingSpec::Order(reversed).describe();
        assert_ne!(a, b, "equal-length orders must not share a display key");
    }

    #[test]
    fn bucketize_and_csv_registration_work_end_to_end() {
        let dir = std::env::temp_dir().join("rankfair_service_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("student.csv");
        let ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(80, 7));
        rankfair_data::csv::write_csv(&ds, &path, ',').unwrap();

        let service = AuditService::new();
        let (rows, _cols) = service
            .register_csv("students", path.to_str().unwrap(), ',')
            .unwrap();
        assert_eq!(rows, 80);
        assert!(service
            .register_csv("bad", "/definitely/not/here.csv", ',')
            .is_err());

        let req = AuditRequest {
            dataset: "students".into(),
            attributes: Some(vec!["school".into(), "sex".into(), "address".into()]),
            bucketize: vec![("G3".into(), 4)],
            ranking: RankingSpec::ByColumn {
                column: "G3".into(),
                ascending: false,
            },
            task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(3))),
            config: DetectConfig::new(10, 5, 10),
            engine: Engine::Optimized,
        };
        let resp = service.handle(&req).unwrap();
        assert_eq!(resp.reports.len(), 6);
        assert!(!resp.cache.hit);
        assert!(service.handle(&req).unwrap().cache.hit);
        let listed = service.datasets();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, "students");
        assert_eq!(listed[0].2, 80);
    }
}
