//! The JSON wire protocol: one request object per line in, one response
//! object per line out.
//!
//! # Requests
//!
//! Every request line is a JSON object with an optional `id` (echoed
//! verbatim in the response) and an `op` selecting the operation
//! (default `audit`):
//!
//! ```json
//! {"op": "register", "name": "students", "csv": "students.csv", "separator": ","}
//! {"op": "register", "name": "big", "csv": "big.csv", "shards": 8}
//! {"op": "datasets"}
//! {"id": 1, "dataset": "students",
//!  "ranking": {"rank_by": "G3"},
//!  "task": {"type": "under", "measure": {"type": "global", "lower": 10}},
//!  "config": {"tau": 50, "kmin": 10, "kmax": 49},
//!  "engine": "optimized",
//!  "attributes": ["school", "sex"],
//!  "bucketize": {"age": 3}}
//! ```
//!
//! * `ranking` — `{"rank_by": COL, "ascending": BOOL?}` (default
//!   descending) or `{"order": [tuple ids, best first]}`.
//! * `task` — `{"type": "under", "measure": M}` with `M` either
//!   `{"type": "global", "lower": B}` or `{"type": "proportional",
//!   "alpha": X}`; `{"type": "over", "upper": B, "scope":
//!   "specific"|"general"}`; or `{"type": "combined", "lower": B,
//!   "upper": B}`.
//! * bounds `B` — a number (constant), `{"steps": [[k_from, bound], …]}`,
//!   or `{"fraction": X}` (`⌈X·k⌉`).
//! * `config` — `{"tau": N, "kmin": N, "kmax": N, "deadline_s": X?}`.
//! * `register.shards` — optional positive integer (default 1). With
//!   `shards > 1`, audits on the dataset partition its ranked rows into
//!   that many contiguous blocks, index each block separately, and merge
//!   per-shard pattern counts additively at query time; results are
//!   identical to the monolithic index, and the audit-cache key records
//!   the shard count so re-registering with a different spec never serves
//!   a stale layout.
//!
//! # Monitor ops
//!
//! Live monitors track an evolving ranking with delta re-audits:
//!
//! ```json
//! {"op": "register_monitor", "name": "m", "dataset": "students",
//!  "rank_by": "G3", "task": {"type": "combined", "lower": 2, "upper": 6},
//!  "config": {"tau": 20, "kmin": 5, "kmax": 40}, "checkpoint_every": 4}
//! {"op": "update", "monitor": "m", "edits": [
//!   {"edit": "score", "row": 17, "score": 14.5},
//!   {"edit": "insert", "cells": {"school": "GP", "sex": "F", "G3": 12}}]}
//! {"op": "snapshot", "monitor": "m"}
//! ```
//!
//! `register_monitor` and `update` serialize **per resource** (see
//! [`crate::serve`]): earlier requests touching the same monitor or
//! dataset see the pre-mutation state, later lines the post-mutation
//! state, while requests on unrelated resources proceed in parallel. An
//! `update` additionally republishes the monitor's evolved dataset under
//! its dataset name, evicting the cached audits built on the pre-edit
//! data. `snapshot` is a plain read and runs on the worker pool.
//!
//! An admin `{"op": "shutdown"}` asks the server to stop: the stdio
//! server stops reading, the socket server ([`crate::net`]) additionally
//! stops accepting connections; either way in-flight requests drain and
//! their responses flush before the process exits.
//!
//! The protocol is **strict**: unknown members anywhere in a request are
//! rejected (like the CLI's per-command flag specs), so a misspelled
//! optional field fails loudly instead of silently changing results.
//!
//! # Responses
//!
//! Success: `{"id", "ok": true, …}` with the op's payload (an audit
//! response carries `per_k`, `stats`, `wall_ms` and `cache`). Failure:
//! `{"id", "ok": false, "error": {"kind", "message"}}`. Responses are
//! emitted in request order regardless of worker count.

use rankfair_core::json::{delta_report_json, edits_from_json, reports_json};
use rankfair_core::{AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, OverRepScope};
use rankfair_json::{parse, ToJson, Value};

use crate::{
    AuditRequest, AuditResponse, AuditService, MonitorSpec, MonitorView, RankingSpec, ServiceError,
};

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run an audit query.
    Audit {
        /// Client correlation id, echoed in the response.
        id: Option<Value>,
        /// The typed query.
        request: AuditRequest,
    },
    /// Register a CSV-backed dataset.
    Register {
        /// Client correlation id.
        id: Option<Value>,
        /// Name to register under.
        name: String,
        /// CSV path.
        csv: String,
        /// Field separator.
        separator: char,
        /// Shard count for audits on this dataset (`1` = monolithic
        /// index; `> 1` = shard-local indexes merged additively).
        shards: usize,
    },
    /// List registered datasets.
    Datasets {
        /// Client correlation id.
        id: Option<Value>,
    },
    /// Register a live monitor over a dataset.
    RegisterMonitor {
        /// Client correlation id.
        id: Option<Value>,
        /// Name to register the monitor under.
        name: String,
        /// How to build it.
        spec: MonitorSpec,
    },
    /// Apply an edit batch to a monitor (delta re-audit).
    MonitorUpdate {
        /// Client correlation id.
        id: Option<Value>,
        /// The monitor to update.
        monitor: String,
        /// Raw `edits` array — cells can only be resolved against the
        /// monitor's dataset at execution time.
        edits: Value,
    },
    /// Read a monitor's current per-`k` state.
    MonitorSnapshot {
        /// Client correlation id.
        id: Option<Value>,
        /// The monitor to read.
        monitor: String,
    },
    /// Admin op: gracefully stop the server (stop reading/accepting,
    /// drain in-flight requests, flush, close).
    Shutdown {
        /// Client correlation id.
        id: Option<Value>,
    },
}

impl Request {
    /// The request's correlation id, if any.
    pub fn id(&self) -> Option<&Value> {
        match self {
            Request::Audit { id, .. }
            | Request::Register { id, .. }
            | Request::Datasets { id }
            | Request::RegisterMonitor { id, .. }
            | Request::MonitorUpdate { id, .. }
            | Request::MonitorSnapshot { id, .. }
            | Request::Shutdown { id } => id.as_ref(),
        }
    }

    /// Whether executing this request mutates service state. The server
    /// serializes these **per resource**: every previously dispatched
    /// request on the same dataset/monitor lane finishes first (it must
    /// see the pre-mutation state), and the mutation completes before any
    /// later request on that lane runs — requests on other resources
    /// proceed in parallel.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Request::Register { .. }
                | Request::RegisterMonitor { .. }
                | Request::MonitorUpdate { .. }
        )
    }
}

fn bad(msg: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(msg.into())
}

/// Parses one JSONL line into a [`Request`]. On failure, returns the
/// correlation id (when the line was at least valid JSON) together with
/// the error, so the caller can still address its error response.
pub fn parse_line(line: &str) -> Result<Request, (Option<Value>, ServiceError)> {
    let v = parse(line).map_err(|e| (None, bad(format!("invalid JSON: {e}"))))?;
    let id = v.get("id").cloned();
    parse_request(&v).map_err(|e| (id, e))
}

/// Rejects members outside `allowed` — a misspelled optional field
/// (`"asc"` for `"ascending"`, `"deadline"` for `"deadline_s"`) must be
/// an error, not a silently dropped knob that changes results. Mirrors
/// the CLI's per-command flag specs.
fn reject_unknown(v: &Value, allowed: &[&str], context: &str) -> Result<(), ServiceError> {
    let Some(pairs) = v.as_obj() else {
        return Ok(());
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(bad(format!(
                "unknown member `{key}` in {context}; allowed: {}",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn parse_request(v: &Value) -> Result<Request, ServiceError> {
    if v.as_obj().is_none() {
        return Err(bad("request must be a JSON object"));
    }
    let id = v.get("id").cloned();
    match v.get("op").map(|o| o.as_str()) {
        None | Some(Some("audit")) => Ok(Request::Audit {
            id,
            request: audit_request_from_json(v)?,
        }),
        Some(Some("register")) => {
            reject_unknown(
                v,
                &["id", "op", "name", "csv", "separator", "shards"],
                "register",
            )?;
            let name = require_str(v, "name")?.to_string();
            let csv = require_str(v, "csv")?.to_string();
            let separator = match v.get("separator") {
                None => ',',
                Some(s) => {
                    let s = s
                        .as_str()
                        .ok_or_else(|| bad("`separator` must be a one-character string"))?;
                    let mut chars = s.chars();
                    match (chars.next(), chars.next()) {
                        (Some(c), None) => c,
                        _ => return Err(bad("`separator` must be a one-character string")),
                    }
                }
            };
            let shards = match v.get("shards") {
                None => 1,
                Some(s) => s
                    .as_usize()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| bad("`shards` must be a positive integer"))?,
            };
            Ok(Request::Register {
                id,
                name,
                csv,
                separator,
                shards,
            })
        }
        Some(Some("datasets")) => {
            reject_unknown(v, &["id", "op"], "datasets")?;
            Ok(Request::Datasets { id })
        }
        Some(Some("register_monitor")) => {
            reject_unknown(
                v,
                &[
                    "id",
                    "op",
                    "name",
                    "dataset",
                    "rank_by",
                    "ascending",
                    "attributes",
                    "task",
                    "config",
                    "engine",
                    "checkpoint_every",
                ],
                "register_monitor",
            )?;
            let name = require_str(v, "name")?.to_string();
            let spec = MonitorSpec {
                dataset: require_str(v, "dataset")?.to_string(),
                rank_by: require_str(v, "rank_by")?.to_string(),
                ascending: match v.get("ascending") {
                    None => false,
                    Some(a) => a
                        .as_bool()
                        .ok_or_else(|| bad("`ascending` must be a boolean"))?,
                },
                attributes: attributes_from_json(v)?,
                task: task_from_json(v.get("task").ok_or_else(|| bad("`task` is required"))?)?,
                config: config_from_json(
                    v.get("config").ok_or_else(|| bad("`config` is required"))?,
                )?,
                engine: engine_from_json(v)?,
                checkpoint_every: match v.get("checkpoint_every") {
                    None => rankfair_core::MonitorAudit::DEFAULT_CHECKPOINT_CADENCE,
                    Some(c) => c
                        .as_usize()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| bad("`checkpoint_every` must be a positive integer"))?,
                },
            };
            Ok(Request::RegisterMonitor { id, name, spec })
        }
        Some(Some("update")) => {
            reject_unknown(v, &["id", "op", "monitor", "edits"], "update")?;
            let monitor = require_str(v, "monitor")?.to_string();
            let edits = v
                .get("edits")
                .cloned()
                .ok_or_else(|| bad("`edits` (array) is required"))?;
            if edits.as_arr().is_none() {
                return Err(bad("`edits` must be an array"));
            }
            Ok(Request::MonitorUpdate { id, monitor, edits })
        }
        Some(Some("snapshot")) => {
            reject_unknown(v, &["id", "op", "monitor"], "snapshot")?;
            Ok(Request::MonitorSnapshot {
                id,
                monitor: require_str(v, "monitor")?.to_string(),
            })
        }
        Some(Some("shutdown")) => {
            reject_unknown(v, &["id", "op"], "shutdown")?;
            Ok(Request::Shutdown { id })
        }
        Some(Some(other)) => Err(bad(format!(
            "unknown op `{other}` (expected audit, register, datasets, register_monitor, update, snapshot or shutdown)"
        ))),
        Some(None) => Err(bad("`op` must be a string")),
    }
}

fn attributes_from_json(v: &Value) -> Result<Option<Vec<String>>, ServiceError> {
    match v.get("attributes") {
        None => Ok(None),
        Some(a) => {
            let items = a
                .as_arr()
                .ok_or_else(|| bad("`attributes` must be an array of strings"))?;
            let names: Option<Vec<String>> = items
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect();
            Ok(Some(names.ok_or_else(|| {
                bad("`attributes` must be an array of strings")
            })?))
        }
    }
}

fn engine_from_json(v: &Value) -> Result<Engine, ServiceError> {
    match v.get("engine") {
        None => Ok(Engine::Optimized),
        Some(e) => match e.as_str() {
            Some("optimized") => Ok(Engine::Optimized),
            Some("baseline") => Ok(Engine::Baseline),
            _ => Err(bad("`engine` must be \"optimized\" or \"baseline\"")),
        },
    }
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, ServiceError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| bad(format!("`{key}` (string) is required")))
}

fn require_usize(v: &Value, key: &str) -> Result<usize, ServiceError> {
    v.get(key)
        .and_then(Value::as_usize)
        .ok_or_else(|| bad(format!("`{key}` (non-negative integer) is required")))
}

/// Parses the audit fields of a request object into an [`AuditRequest`].
pub fn audit_request_from_json(v: &Value) -> Result<AuditRequest, ServiceError> {
    reject_unknown(
        v,
        &[
            "id",
            "op",
            "dataset",
            "ranking",
            "task",
            "config",
            "engine",
            "attributes",
            "bucketize",
        ],
        "audit request",
    )?;
    let dataset = require_str(v, "dataset")?.to_string();
    let ranking = ranking_from_json(
        v.get("ranking")
            .ok_or_else(|| bad("`ranking` is required"))?,
    )?;
    let task = task_from_json(v.get("task").ok_or_else(|| bad("`task` is required"))?)?;
    let config = config_from_json(v.get("config").ok_or_else(|| bad("`config` is required"))?)?;
    let engine = engine_from_json(v)?;
    let attributes = attributes_from_json(v)?;
    let bucketize = match v.get("bucketize") {
        None => Vec::new(),
        Some(b) => {
            let pairs = b
                .as_obj()
                .ok_or_else(|| bad("`bucketize` must be an object of column → bins"))?;
            pairs
                .iter()
                .map(|(col, bins)| {
                    let bins = bins
                        .as_usize()
                        .filter(|&b| b >= 1)
                        .ok_or_else(|| bad(format!("bucketize `{col}`: bins must be ≥ 1")))?;
                    Ok((col.clone(), bins))
                })
                .collect::<Result<Vec<_>, ServiceError>>()?
        }
    };
    Ok(AuditRequest {
        dataset,
        attributes,
        bucketize,
        ranking,
        task,
        config,
        engine,
    })
}

fn ranking_from_json(v: &Value) -> Result<RankingSpec, ServiceError> {
    // Strictness is per shape: `ascending` only modifies `rank_by`, and
    // mixing `rank_by` with `order` would silently drop one of them.
    if v.get("rank_by").is_some() {
        reject_unknown(v, &["rank_by", "ascending"], "ranking")?;
    } else {
        reject_unknown(v, &["order"], "ranking")?;
    }
    if let Some(col) = v.get("rank_by") {
        let column = col
            .as_str()
            .ok_or_else(|| bad("`rank_by` must be a string"))?
            .to_string();
        let ascending = match v.get("ascending") {
            None => false,
            Some(a) => a
                .as_bool()
                .ok_or_else(|| bad("`ascending` must be a boolean"))?,
        };
        return Ok(RankingSpec::ByColumn { column, ascending });
    }
    if let Some(order) = v.get("order") {
        let items = order
            .as_arr()
            .ok_or_else(|| bad("`order` must be an array of tuple ids"))?;
        let ids: Option<Vec<u32>> = items
            .iter()
            .map(|x| x.as_usize().and_then(|n| u32::try_from(n).ok()))
            .collect();
        return Ok(RankingSpec::Order(ids.ok_or_else(|| {
            bad("`order` must be an array of non-negative integers")
        })?));
    }
    Err(bad("`ranking` needs `rank_by` or `order`"))
}

fn bounds_from_json(v: &Value) -> Result<Bounds, ServiceError> {
    if let Some(n) = v.as_usize() {
        return Ok(Bounds::constant(n));
    }
    reject_unknown(v, &["steps", "fraction"], "bounds")?;
    if let Some(steps) = v.get("steps") {
        let items = steps
            .as_arr()
            .ok_or_else(|| bad("`steps` must be an array of [k_from, bound] pairs"))?;
        let pairs: Option<Vec<(usize, usize)>> = items
            .iter()
            .map(|pair| {
                let p = pair.as_arr()?;
                match p {
                    [k, b] => Some((k.as_usize()?, b.as_usize()?)),
                    _ => None,
                }
            })
            .collect();
        return Ok(Bounds::steps(pairs.ok_or_else(|| {
            bad("`steps` must be an array of [k_from, bound] pairs")
        })?));
    }
    if let Some(f) = v.get("fraction") {
        let f = f
            .as_f64()
            .ok_or_else(|| bad("`fraction` must be a number"))?;
        return Ok(Bounds::LinearFraction(f));
    }
    Err(bad(
        "bounds must be a number, {\"steps\": …} or {\"fraction\": …}",
    ))
}

/// Parses a task object (see module docs for the shape).
pub fn task_from_json(v: &Value) -> Result<AuditTask, ServiceError> {
    // Per-type allowlists: a member the chosen task type never reads
    // (e.g. `scope` on `combined`, `upper` on `under`) must fail loudly,
    // not silently produce a different result set — mirroring the CLI's
    // per-task flag rejection.
    match v.get("type").and_then(Value::as_str) {
        Some("under") => reject_unknown(v, &["type", "measure"], "task (under)")?,
        Some("over") => reject_unknown(v, &["type", "upper", "scope"], "task (over)")?,
        Some("combined") => reject_unknown(v, &["type", "lower", "upper"], "task (combined)")?,
        _ => {}
    }
    let scope = |v: &Value| -> Result<OverRepScope, ServiceError> {
        match v.get("scope").map(|s| s.as_str()) {
            None | Some(Some("specific")) => Ok(OverRepScope::MostSpecific),
            Some(Some("general")) => Ok(OverRepScope::MostGeneral),
            _ => Err(bad("`scope` must be \"specific\" or \"general\"")),
        }
    };
    let bounds_at = |key: &str| -> Result<Bounds, ServiceError> {
        bounds_from_json(
            v.get(key)
                .ok_or_else(|| bad(format!("`{key}` bounds are required")))?,
        )
    };
    match v.get("type").and_then(Value::as_str) {
        Some("under") => {
            let m = v
                .get("measure")
                .ok_or_else(|| bad("`measure` is required for task type `under`"))?;
            match m.get("type").and_then(Value::as_str) {
                Some("global") => reject_unknown(m, &["type", "lower"], "measure (global)")?,
                Some("proportional") | Some("prop") => {
                    reject_unknown(m, &["type", "alpha"], "measure (proportional)")?
                }
                _ => {}
            }
            let measure = match m.get("type").and_then(Value::as_str) {
                Some("global") => BiasMeasure::GlobalLower(bounds_from_json(
                    m.get("lower")
                        .ok_or_else(|| bad("`lower` bounds are required"))?,
                )?),
                Some("proportional") | Some("prop") => {
                    let alpha = m
                        .get("alpha")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| bad("`alpha` (number) is required"))?;
                    BiasMeasure::Proportional { alpha }
                }
                _ => return Err(bad("measure `type` must be \"global\" or \"proportional\"")),
            };
            Ok(AuditTask::UnderRep(measure))
        }
        Some("over") => Ok(AuditTask::OverRep {
            upper: bounds_at("upper")?,
            scope: scope(v)?,
        }),
        Some("combined") => Ok(AuditTask::Combined {
            lower: bounds_at("lower")?,
            upper: bounds_at("upper")?,
        }),
        _ => Err(bad(
            "task `type` must be \"under\", \"over\" or \"combined\"",
        )),
    }
}

fn config_from_json(v: &Value) -> Result<DetectConfig, ServiceError> {
    reject_unknown(v, &["tau", "kmin", "kmax", "deadline_s"], "config")?;
    let tau = require_usize(v, "tau")?;
    let k_min = require_usize(v, "kmin")?;
    let k_max = require_usize(v, "kmax")?;
    // DetectConfig::new panics on a bad range; a wire request must never
    // take the process down.
    if k_min == 0 || k_min > k_max {
        return Err(bad(format!("invalid k range [{k_min}, {k_max}]")));
    }
    let mut cfg = DetectConfig::new(tau, k_min, k_max);
    if let Some(d) = v.get("deadline_s") {
        let secs = d
            .as_f64()
            .ok_or_else(|| bad("`deadline_s` must be a number"))?;
        let d = std::time::Duration::try_from_secs_f64(secs)
            .map_err(|_| bad("`deadline_s` must be a representable non-negative duration"))?;
        cfg = cfg.with_deadline(d);
    }
    Ok(cfg)
}

// --- encoding -----------------------------------------------------------
// (`Bounds` and `AuditTask` encode in rankfair_core::json — the orphan
// rule keeps those impls next to the types.)

impl ToJson for AuditRequest {
    fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            vec![("dataset".to_string(), Value::from(self.dataset.as_str()))];
        let ranking = match &self.ranking {
            RankingSpec::ByColumn { column, ascending } => {
                let mut r = vec![("rank_by".to_string(), Value::from(column.as_str()))];
                if *ascending {
                    r.push(("ascending".to_string(), Value::Bool(true)));
                }
                Value::Obj(r)
            }
            RankingSpec::Order(ids) => Value::object([(
                "order",
                Value::array(ids.iter().map(|&i| Value::from(i as usize)).collect()),
            )]),
        };
        pairs.push(("ranking".to_string(), ranking));
        pairs.push(("task".to_string(), self.task.to_json()));
        let mut config = vec![
            ("tau".to_string(), Value::from(self.config.tau_s)),
            ("kmin".to_string(), Value::from(self.config.k_min)),
            ("kmax".to_string(), Value::from(self.config.k_max)),
        ];
        if let Some(d) = self.config.deadline {
            config.push(("deadline_s".to_string(), Value::from(d.as_secs_f64())));
        }
        pairs.push(("config".to_string(), Value::Obj(config)));
        pairs.push((
            "engine".to_string(),
            Value::from(match self.engine {
                Engine::Optimized => "optimized",
                Engine::Baseline => "baseline",
            }),
        ));
        if let Some(attrs) = &self.attributes {
            pairs.push((
                "attributes".to_string(),
                Value::array(attrs.iter().map(|a| Value::from(a.as_str())).collect()),
            ));
        }
        if !self.bucketize.is_empty() {
            pairs.push((
                "bucketize".to_string(),
                Value::Obj(
                    self.bucketize
                        .iter()
                        .map(|(c, b)| (c.clone(), Value::from(*b)))
                        .collect(),
                ),
            ));
        }
        Value::Obj(pairs)
    }
}

/// The `error` payload of a failure response.
pub fn error_json(e: &ServiceError) -> Value {
    match e {
        // Audit and monitor errors keep their own kind taxonomies from
        // rankfair_core.
        ServiceError::Audit(a) => a.to_json(),
        ServiceError::Monitor(m) => m.to_json(),
        ServiceError::UnknownDataset(_) => Value::object([
            ("kind", Value::from("unknown_dataset")),
            ("message", Value::from(e.to_string())),
        ]),
        ServiceError::UnknownMonitor(_) => Value::object([
            ("kind", Value::from("unknown_monitor")),
            ("message", Value::from(e.to_string())),
        ]),
        ServiceError::Csv(_) => Value::object([
            ("kind", Value::from("csv")),
            ("message", Value::from(e.to_string())),
        ]),
        ServiceError::BadRequest(_) => Value::object([
            ("kind", Value::from("bad_request")),
            ("message", Value::from(e.to_string())),
        ]),
    }
}

impl ToJson for ServiceError {
    fn to_json(&self) -> Value {
        error_json(self)
    }
}

fn envelope(id: Option<&Value>, ok: bool, rest: Vec<(String, Value)>) -> Value {
    let mut pairs = Vec::with_capacity(rest.len() + 2);
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push(("ok".to_string(), Value::Bool(ok)));
    pairs.extend(rest);
    Value::Obj(pairs)
}

/// A failure response line.
pub fn error_response(id: Option<&Value>, e: &ServiceError) -> Value {
    envelope(id, false, vec![("error".to_string(), error_json(e))])
}

/// A successful audit response line. With `strip_timing`, wall-clock
/// fields are zeroed so output is byte-deterministic (golden tests).
pub fn audit_response(id: Option<&Value>, resp: &AuditResponse, strip_timing: bool) -> Value {
    let mut stats = resp.outcome.stats.clone();
    let wall_ms = if strip_timing {
        stats.elapsed = std::time::Duration::ZERO;
        0.0
    } else {
        resp.wall_ms
    };
    envelope(
        id,
        true,
        vec![
            ("dataset".to_string(), Value::from(resp.dataset.as_str())),
            (
                "per_k".to_string(),
                reports_json(&resp.reports, resp.audit.space()),
            ),
            ("stats".to_string(), stats.to_json()),
            ("wall_ms".to_string(), Value::from(wall_ms)),
            (
                "cache".to_string(),
                Value::object([
                    ("hit", Value::from(resp.cache.hit)),
                    ("key", Value::from(resp.cache.key.as_str())),
                ]),
            ),
        ],
    )
}

/// Executes one parsed request against `service` and renders the response
/// line (never fails: errors become `"ok": false` responses).
pub fn execute(service: &AuditService, request: &Request, strip_timing: bool) -> Value {
    match request {
        Request::Audit { id, request } => match service.handle(request) {
            Ok(resp) => audit_response(id.as_ref(), &resp, strip_timing),
            Err(e) => error_response(id.as_ref(), &e),
        },
        Request::Register {
            id,
            name,
            csv,
            separator,
            shards,
        } => match service.register_csv_sharded(name, csv, *separator, *shards) {
            Ok((rows, cols)) => envelope(
                id.as_ref(),
                true,
                vec![
                    ("op".to_string(), Value::from("register")),
                    ("dataset".to_string(), Value::from(name.as_str())),
                    ("rows".to_string(), Value::from(rows)),
                    ("cols".to_string(), Value::from(cols)),
                    ("shards".to_string(), Value::from(*shards)),
                ],
            ),
            Err(e) => error_response(id.as_ref(), &e),
        },
        Request::Datasets { id } => {
            let datasets = service
                .datasets()
                .into_iter()
                .map(|(name, source, rows, cols, shards)| {
                    Value::object([
                        ("name", Value::from(name)),
                        ("source", Value::from(source)),
                        ("rows", Value::from(rows)),
                        ("cols", Value::from(cols)),
                        ("shards", Value::from(shards)),
                    ])
                })
                .collect();
            envelope(
                id.as_ref(),
                true,
                vec![
                    ("op".to_string(), Value::from("datasets")),
                    ("datasets".to_string(), Value::array(datasets)),
                ],
            )
        }
        Request::RegisterMonitor { id, name, spec } => match service.register_monitor(name, spec) {
            Ok(view) => envelope(
                id.as_ref(),
                true,
                vec![
                    ("op".to_string(), Value::from("register_monitor")),
                    ("monitor".to_string(), Value::from(name.as_str())),
                    ("dataset".to_string(), Value::from(view.dataset)),
                    ("rows".to_string(), Value::from(view.rows)),
                    (
                        "per_k".to_string(),
                        reports_json(&view.reports, &view.space),
                    ),
                ],
            ),
            Err(e) => error_response(id.as_ref(), &e),
        },
        Request::MonitorUpdate { id, monitor, edits } => {
            // Cell resolution needs the monitor's dataset: parse against
            // it, then apply. The server holds the monitor's exclusive
            // ordering lane for the whole job, so no other update on this
            // monitor can interleave between the two.
            let result = service
                .with_monitor_dataset(monitor, |ds| edits_from_json(edits, ds))
                .and_then(|parsed| parsed.map_err(bad))
                .and_then(|parsed| service.monitor_update(monitor, &parsed));
            match result {
                Ok(update) => envelope(
                    id.as_ref(),
                    true,
                    vec![
                        ("op".to_string(), Value::from("update")),
                        ("monitor".to_string(), Value::from(monitor.as_str())),
                        ("dataset".to_string(), Value::from(update.dataset)),
                        ("rows".to_string(), Value::from(update.rows)),
                        (
                            "delta".to_string(),
                            delta_report_json(&update.delta, &update.space, strip_timing),
                        ),
                    ],
                ),
                Err(e) => error_response(id.as_ref(), &e),
            }
        }
        Request::MonitorSnapshot { id, monitor } => match service.monitor_snapshot(monitor) {
            Ok(view) => monitor_view_response(id.as_ref(), monitor, &view),
            Err(e) => error_response(id.as_ref(), &e),
        },
        Request::Shutdown { id } => envelope(
            id.as_ref(),
            true,
            vec![("op".to_string(), Value::from("shutdown"))],
        ),
    }
}

fn monitor_view_response(id: Option<&Value>, monitor: &str, view: &MonitorView) -> Value {
    let mut rest = vec![
        ("op".to_string(), Value::from("snapshot")),
        ("monitor".to_string(), Value::from(monitor)),
        ("dataset".to_string(), Value::from(view.dataset.as_str())),
        ("rows".to_string(), Value::from(view.rows)),
        (
            "per_k".to_string(),
            reports_json(&view.reports, &view.space),
        ),
    ];
    // Persistent-engine-state health: live checkpoints per direction,
    // their node footprint, and the seek/build/replay counters. All
    // deterministic (no wall clocks), so golden transcripts stay
    // byte-stable. Absent for baseline-engine monitors.
    if let Some(ck) = &view.checkpoints {
        rest.push(("checkpoints".to_string(), ck.to_json()));
    }
    envelope(id, true, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_request_round_trips_through_json() {
        let line = concat!(
            r#"{"id": 7, "dataset": "students", "#,
            r#""ranking": {"rank_by": "G3"}, "#,
            r#""task": {"type": "combined", "lower": 3, "upper": {"steps": [[10, 6], [20, 12]]}}, "#,
            r#""config": {"tau": 20, "kmin": 5, "kmax": 10, "deadline_s": 2.5}, "#,
            r#""engine": "baseline", "#,
            r#""attributes": ["school", "sex"], "bucketize": {"age": 3}}"#,
        );
        let parsed = parse_line(line).unwrap();
        let Request::Audit { id, request } = parsed else {
            panic!("expected audit request");
        };
        assert_eq!(id, Some(Value::Num(7.0)));
        assert_eq!(request.dataset, "students");
        assert_eq!(request.engine, Engine::Baseline);
        assert_eq!(request.config.tau_s, 20);
        assert_eq!(
            request.config.deadline,
            Some(std::time::Duration::from_secs_f64(2.5))
        );
        assert_eq!(request.bucketize, vec![("age".to_string(), 3)]);
        assert!(matches!(request.task, AuditTask::Combined { .. }));
        // Encode → parse again: semantically identical request.
        let encoded = request.to_json().render();
        let Request::Audit { request: again, .. } = parse_line(&encoded).unwrap() else {
            panic!("expected audit request");
        };
        assert_eq!(format!("{:?}", again), format!("{:?}", request));
        assert_eq!(again.cache_key(), request.cache_key());
    }

    #[test]
    fn register_with_shards_parses_and_defaults() {
        let r = parse_line(r#"{"op": "register", "name": "x", "csv": "y", "shards": 4}"#).unwrap();
        let Request::Register {
            shards, separator, ..
        } = r
        else {
            panic!("expected register request");
        };
        assert_eq!(shards, 4);
        assert_eq!(separator, ',');
        let r = parse_line(r#"{"op": "register", "name": "x", "csv": "y"}"#).unwrap();
        let Request::Register { shards, .. } = r else {
            panic!("expected register request");
        };
        assert_eq!(shards, 1);
        // Zero, negative and fractional shard counts are rejected.
        for bad in [
            r#"{"op": "register", "name": "x", "csv": "y", "shards": 0}"#,
            r#"{"op": "register", "name": "x", "csv": "y", "shards": -2}"#,
            r#"{"op": "register", "name": "x", "csv": "y", "shards": 2.5}"#,
            r#"{"op": "register", "name": "x", "csv": "y", "shards": "four"}"#,
        ] {
            assert!(parse_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn register_monitor_checkpoint_every_parses_strictly() {
        let base = concat!(
            r#"{"op": "register_monitor", "name": "m", "dataset": "d", "rank_by": "s", "#,
            r#""task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}"#,
        );
        let r = parse_line(&format!(r#"{base}, "checkpoint_every": 3}}"#)).unwrap();
        let Request::RegisterMonitor { spec, .. } = r else {
            panic!("expected register_monitor request");
        };
        assert_eq!(spec.checkpoint_every, 3);
        // Absent → the monitor's default cadence.
        let r = parse_line(&format!("{base}}}")).unwrap();
        let Request::RegisterMonitor { spec, .. } = r else {
            panic!("expected register_monitor request");
        };
        assert_eq!(
            spec.checkpoint_every,
            rankfair_core::MonitorAudit::DEFAULT_CHECKPOINT_CADENCE
        );
        // Zero, negative, fractional and non-numeric cadences are
        // rejected in-band, not clamped.
        for bad in [
            r#""checkpoint_every": 0"#,
            r#""checkpoint_every": -3"#,
            r#""checkpoint_every": 2.5"#,
            r#""checkpoint_every": "eight""#,
        ] {
            let line = format!("{base}, {bad}}}");
            assert!(parse_line(&line).is_err(), "{line}");
        }
    }

    #[test]
    fn every_task_shape_parses() {
        for (json, want) in [
            (
                r#"{"type": "under", "measure": {"type": "global", "lower": 5}}"#,
                "UnderRep(GlobalLower(Constant(5)))",
            ),
            (
                r#"{"type": "under", "measure": {"type": "proportional", "alpha": 0.8}}"#,
                "UnderRep(Proportional { alpha: 0.8 })",
            ),
            (
                r#"{"type": "over", "upper": {"fraction": 0.5}, "scope": "general"}"#,
                "OverRep { upper: LinearFraction(0.5), scope: MostGeneral }",
            ),
            (
                r#"{"type": "over", "upper": 9}"#,
                "OverRep { upper: Constant(9), scope: MostSpecific }",
            ),
        ] {
            let task = task_from_json(&parse(json).unwrap()).unwrap();
            assert_eq!(format!("{task:?}"), want);
            // Encoding round-trips.
            let again = task_from_json(&task.to_json()).unwrap();
            assert_eq!(format!("{again:?}"), want);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_ids_preserved() {
        // Invalid JSON: no id recoverable.
        let (id, e) = parse_line("{nope").unwrap_err();
        assert!(id.is_none());
        assert!(e.to_string().contains("invalid JSON"));
        // Valid JSON, bad request: id survives for the error response.
        let (id, e) = parse_line(r#"{"id": "q1", "dataset": "x"}"#).unwrap_err();
        assert_eq!(id, Some(Value::from("q1")));
        assert!(e.to_string().contains("ranking"));
        let err_line = error_response(id.as_ref(), &e).render();
        assert!(
            err_line.starts_with(r#"{"id":"q1","ok":false"#),
            "{err_line}"
        );
        // Assorted shape errors.
        for bad_line in [
            r#"[1,2,3]"#,
            r#"{"op": "frobnicate"}"#,
            r#"{"op": "register", "name": "x"}"#,
            r#"{"op": "register", "name": "x", "csv": "y", "separator": "ab"}"#,
            r#"{"dataset": "d", "ranking": {}, "task": {"type": "under"}, "config": {}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "sideways"}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 0, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 5, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"order": [0, -1]}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}, "engine": "quantum"}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}, "bucketize": {"age": 0}}"#,
            // Unknown/misspelled members are rejected, never silently
            // dropped — a typoed knob must not change results.
            r#"{"dataset": "d", "ranking": {"rank_by": "c", "asc": true}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            // Members inapplicable to the chosen shape are rejected too.
            r#"{"dataset": "d", "ranking": {"rank_by": "c", "order": [0, 1]}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"order": [0, 1], "ascending": true}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "combined", "lower": 1, "upper": 2, "scope": "general"}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "under", "measure": {"type": "global", "lower": 1}, "upper": 5}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "under", "measure": {"type": "global", "lower": 1, "alpha": 0.5}}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "under", "measure": {"type": "proportional", "alpha": 0.5, "lower": 1}}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2, "deadline": 5}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2, "scopes": "general"}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "under", "measure": {"type": "proportional", "alpha": 0.8, "aplha": 1}}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": {"fraction": 0.5, "steep": 1}}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"dataset": "d", "extra": 1, "ranking": {"rank_by": "c"}, "task": {"type": "over", "upper": 2}, "config": {"tau": 1, "kmin": 1, "kmax": 2}}"#,
            r#"{"op": "register", "name": "x", "csv": "y", "separ": ";"}"#,
            r#"{"op": "datasets", "verbose": true}"#,
        ] {
            assert!(parse_line(bad_line).is_err(), "accepted {bad_line}");
        }
    }
}
